"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's evaluation
section: it simulates the full experiment (timed by pytest-benchmark),
prints the same rows/series the paper reports, and asserts the result
shape.  Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables.

"""

from repro.workloads import POLYBENCH

WORKLOAD_NAMES = list(POLYBENCH)

#: Paper reference values used in assertions/printouts.
PAPER_SPEEDUPS = {
    "CPU-DRAM": 1.5,
    "ELP2IM": 3.6,
    "FELIX": 8.7,
    "CORUSCANT": 15.6,
    "StPIM-e": 12.7,
    "StPIM": 39.1,
}
PAPER_ENERGY_VS_STPIM = {
    "CPU-DRAM": 58.4,
    "ELP2IM": 11.7,
    "FELIX": 3.5,
    "CORUSCANT": 2.8,
    "StPIM-e": 1.6,
}


def average_speedup(results, platform, baseline="CPU-RM"):
    ratios = [
        results[baseline][w].time_ns / results[platform][w].time_ns
        for w in WORKLOAD_NAMES
    ]
    return sum(ratios) / len(ratios)


def run_once(benchmark, func):
    """Time one full experiment run (simulations are deterministic)."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


def compile_cached(spec, device=None, seed=7):
    """Compile a workload's trace through the shared trace cache.

    First run of a benchmark session lowers and stores; re-runs load
    the compiled trace (see ``repro-streampim cache stats``).  Honours
    ``$REPRO_STREAMPIM_CACHE_DIR``.
    """
    from repro.core.compile import compile_workload

    return compile_workload(spec, device, seed=seed)
