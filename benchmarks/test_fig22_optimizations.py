"""Fig. 22: the distribute and unblock optimisations.

Paper series (normalised to no optimisation): distribute 7.1x, unblock
199.7x.  Shape contract: base << distribute << unblock, with distribute
an order-of-magnitude gain and unblock near two-hundred-fold.
"""

from conftest import WORKLOAD_NAMES, run_once

from repro.analysis.report import format_table
from repro.baselines.stpim import StreamPIMPlatform
from repro.core.device import StreamPIMConfig
from repro.core.scheduler import SchedulerPolicy
from repro.workloads import POLYBENCH

PAPER = {
    SchedulerPolicy.BASE: 1.0,
    SchedulerPolicy.DISTRIBUTE: 7.1,
    SchedulerPolicy.UNBLOCK: 199.7,
}


def _sweep():
    out = {}
    for policy in SchedulerPolicy:
        platform = StreamPIMPlatform(StreamPIMConfig(scheduler_policy=policy))
        out[policy] = {
            w: platform.run(POLYBENCH[w]).time_ns for w in WORKLOAD_NAMES
        }
    return out


def test_fig22_optimizations(benchmark):
    times = run_once(benchmark, _sweep)

    base = times[SchedulerPolicy.BASE]
    gains = {
        policy: sum(base[w] / times[policy][w] for w in WORKLOAD_NAMES)
        / len(WORKLOAD_NAMES)
        for policy in SchedulerPolicy
    }
    print()
    print("Fig. 22 — optimisation gains over base")
    print(
        format_table(
            ["policy", "speedup", "paper"],
            [[p.value, gains[p], PAPER[p]] for p in SchedulerPolicy],
        )
    )
    for policy, gain in gains.items():
        benchmark.extra_info[f"gain_{policy.value}"] = round(gain, 1)

    assert gains[SchedulerPolicy.BASE] == 1.0
    assert 4.0 < gains[SchedulerPolicy.DISTRIBUTE] < 25.0
    assert abs(gains[SchedulerPolicy.UNBLOCK] - 199.7) / 199.7 < 0.3
    assert gains[SchedulerPolicy.DISTRIBUTE] < gains[SchedulerPolicy.UNBLOCK]
