"""Table IV: #PIM-VPC and #move-VPC of every PolyBench workload.

Regenerates the VPC counts the paper's trace generator produced, using
the counting convention recovered from the table (one delivery TRAN per
PIM VPC, one collection TRAN per non-co-located result).  Shape
contract: every #PIM-VPC within 15% of the paper, every #move-VPC within
35% (the residual deviations are documented in EXPERIMENTS.md).
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.workloads import POLYBENCH


def _counts():
    return {
        name: (spec.vpc_counts(), spec.paper_pim_vpcs, spec.paper_move_vpcs)
        for name, spec in POLYBENCH.items()
    }


def test_table4_vpc_counts(benchmark):
    counts = run_once(benchmark, _counts)

    print()
    print("Table IV — VPC counts (measured vs paper)")
    rows = []
    for name, ((pim, move), paper_pim, paper_move) in counts.items():
        rows.append(
            [
                name,
                f"{pim:.3g}",
                f"{paper_pim:.3g}",
                f"{(pim - paper_pim) / paper_pim:+.1%}",
                f"{move:.3g}",
                f"{paper_move:.3g}",
                f"{(move - paper_move) / paper_move:+.1%}",
            ]
        )
    print(
        format_table(
            ["workload", "#PIM", "paper", "dev", "#move", "paper", "dev"],
            rows,
        )
    )

    for name, ((pim, move), paper_pim, paper_move) in counts.items():
        assert abs(pim - paper_pim) / paper_pim < 0.15, name
        assert abs(move - paper_move) / paper_move < 0.35, name
    # Exact reproductions under the recovered convention.
    assert counts["atax"][0][0] == 4000
    assert counts["mvt"][0] == (8000, 16000)
