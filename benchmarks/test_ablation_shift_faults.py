"""Ablation: RM-bus shift-fault mitigation (section III-D, challenge 3).

The segmented bus bounds every shift to one segment and checks each hop
against the segment's guard domains; a naive design shifting data the
full wire length in one operation accumulates over/under-shift faults
with no mid-flight detection.  This ablation quantifies the undetected
fault probability of a 2000-word transfer for both designs across the
Table V segment sizes.
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.core.rmbus import RMBusConfig
from repro.rm.faults import ShiftFaultModel

SEGMENTS = (64, 256, 512, 1024)
WORDS = 2000


def _sweep():
    model = ShiftFaultModel()
    out = {}
    for segment in SEGMENTS:
        bus = RMBusConfig(segment_domains=segment)
        out[segment] = (
            model.shift_fault_probability(segment),
            model.segmented_transfer_fault(bus, WORDS),
            model.monolithic_transfer_fault(bus, WORDS),
            model.mitigation_factor(bus, WORDS),
        )
    return out


def test_ablation_shift_faults(benchmark):
    sweep = run_once(benchmark, _sweep)

    rows = [
        [
            segment,
            f"{per_shift:.2e}",
            f"{segmented:.2e}",
            f"{monolithic:.2e}",
            f"{factor:.1f}x",
        ]
        for segment, (per_shift, segmented, monolithic, factor) in sweep.items()
    ]
    print()
    print(
        f"Section III-D — undetected fault probability, {WORDS}-word "
        "transfer"
    )
    print(
        format_table(
            [
                "segment",
                "per-shift",
                "segmented bus",
                "monolithic shift",
                "mitigation",
            ],
            rows,
        )
    )
    benchmark.extra_info["mitigation_1024"] = round(sweep[1024][3], 1)

    for segment, (per_shift, segmented, monolithic, factor) in sweep.items():
        # Bounded shifts cut per-operation risk...
        assert per_shift < ShiftFaultModel().shift_fault_probability(4096)
        # ...and with guard detection the segmented transfer is far more
        # reliable than the monolithic design at every segment size.
        assert segmented < monolithic
        assert factor > 10
        # Reliability never becomes the binding constraint among the
        # Table V sizes.
        assert segmented < 0.02
