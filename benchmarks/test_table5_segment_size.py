"""Table V: RM-bus segment-size sensitivity.

Paper: shrinking the segment from 1024 to 64 domains costs +2.33%
execution time on average and changes energy by less than ~0.1%.  Shape
contract: the time overhead is small and monotone in 1/segment; the
energy stays nearly flat (slightly cheaper for small segments).
"""

from conftest import WORKLOAD_NAMES, run_once

from repro.analysis.report import format_table
from repro.baselines.stpim import StreamPIMPlatform
from repro.core.device import StreamPIMConfig
from repro.core.rmbus import RMBusConfig
from repro.workloads import POLYBENCH

SEGMENTS = (64, 256, 512, 1024)
PAPER_TIME = {64: "+2.33%", 256: "+0.58%", 512: "+0.29%", 1024: "0%"}


def _sweep():
    out = {}
    for segment in SEGMENTS:
        platform = StreamPIMPlatform(
            StreamPIMConfig(bus=RMBusConfig(segment_domains=segment))
        )
        stats = [platform.run(POLYBENCH[w]) for w in WORKLOAD_NAMES]
        out[segment] = (
            sum(s.time_ns for s in stats),
            sum(s.energy.total_pj for s in stats),
        )
    return out


def test_table5_segment_size(benchmark):
    sweep = run_once(benchmark, _sweep)

    t_ref, e_ref = sweep[1024]
    rows = []
    for segment in SEGMENTS:
        t, e = sweep[segment]
        rows.append(
            [
                segment,
                f"{t / t_ref - 1.0:+.2%}",
                PAPER_TIME[segment],
                f"{e / e_ref - 1.0:+.3%}",
            ]
        )
        benchmark.extra_info[f"time_overhead_{segment}"] = round(
            t / t_ref - 1.0, 4
        )
    print()
    print("Table V — bus segment-size sensitivity (vs 1024)")
    print(
        format_table(
            ["segment", "exec time", "paper", "energy"], rows
        )
    )

    overhead = {s: sweep[s][0] / t_ref - 1.0 for s in SEGMENTS}
    energy_delta = {s: sweep[s][1] / e_ref - 1.0 for s in SEGMENTS}
    # Time: small, monotone overhead for smaller segments.
    assert 0.0 <= overhead[512] <= overhead[256] <= overhead[64] < 0.05
    # Energy: nearly flat, marginally cheaper for small segments.
    for segment in (64, 256, 512):
        assert -0.01 < energy_delta[segment] <= 0.0
