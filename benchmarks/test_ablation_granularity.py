"""Ablation: host-interface command granularity (section IV-A).

The design-choice analysis behind the VPC: scalar commands explode to
O(n^3) per matrix multiplication (the paper's worst case), matrix
commands collapse to O(1) but force the device to manage Omega(n^2)
operand units per command, and vector granularity sits in between with
O(n^2) commands and a simple decoder — the trade-off StreamPIM adopts.
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.isa.granularity import (
    CommandGranularity,
    compare_granularities,
)
from repro.workloads import POLYBENCH


def _sweep():
    return {
        name: compare_granularities(POLYBENCH[name])
        for name in ("gemm", "atax")
    }


def test_ablation_interface_granularity(benchmark):
    profiles = run_once(benchmark, _sweep)

    print()
    print("Section IV-A — command-granularity trade-off")
    for name, by_granularity in profiles.items():
        rows = [
            [
                g.value,
                f"{p.commands:.3g}",
                f"{p.traffic_bytes / 1e6:.2f}",
                f"{p.link_time_ns / 1e6:.2f}",
                f"{p.max_units_per_command:,}",
            ]
            for g, p in by_granularity.items()
        ]
        print(f"-- {name}")
        print(
            format_table(
                [
                    "granularity",
                    "commands",
                    "traffic (MB)",
                    "link time (ms)",
                    "units/cmd",
                ],
                rows,
            )
        )

    gemm = profiles["gemm"]
    scalar = gemm[CommandGranularity.SCALAR]
    vector = gemm[CommandGranularity.VECTOR]
    matrix = gemm[CommandGranularity.MATRIX]
    benchmark.extra_info["gemm_vector_commands"] = vector.commands

    # The paper's O(n^3) vs O(n^2) argument: scalar is ~n times vector.
    assert scalar.commands > 1000 * vector.commands
    # Vector keeps the device-side unit count per command modest while
    # matrix granularity forces Omega(n^2) management.
    assert matrix.max_units_per_command > 100 * vector.max_units_per_command
    # And the link traffic at vector granularity stays manageable
    # relative to scalar granularity.
    assert vector.traffic_bytes < scalar.traffic_bytes / 1000
