"""Fig. 23: end-to-end DNN inference speed-up vs CPU-DRAM.

The matrix operations offload to the PIM platforms; nonlinear layers run
on the CPU.  Paper: MLP 54.77x (StPIM), 1.86x over CORUSCANT; BERT 4.49x
(StPIM), 1.97x over CORUSCANT.  Shape contract: StPIM wins on both
networks; MLP's speed-up dwarfs BERT's (whose nonlinear layers cap it);
BERT's absolute speed-up lands near the paper's.
"""

from conftest import run_once

from repro.analysis.endtoend import end_to_end_speedup
from repro.analysis.report import format_table
from repro.baselines import default_platforms
from repro.workloads import DNN_WORKLOADS

PLATFORMS = ("StPIM", "StPIM-e", "CORUSCANT", "FELIX", "ELP2IM")
PAPER = {("mlp", "StPIM"): 54.77, ("bert", "StPIM"): 4.49}


def _sweep():
    platforms = default_platforms()
    cpu = platforms["CPU-DRAM"]
    out = {}
    for wname, spec in DNN_WORKLOADS.items():
        cpu_stats = cpu.run(spec)
        out[wname] = {
            p: end_to_end_speedup(
                platforms[p], cpu, spec, cpu_stats=cpu_stats
            )
            for p in PLATFORMS
        }
    return out


def test_fig23_dnn(benchmark):
    results = run_once(benchmark, _sweep)

    print()
    print("Fig. 23 — end-to-end DNN speed-up vs CPU-DRAM")
    for wname in DNN_WORKLOADS:
        rows = [
            [
                p,
                results[wname][p].speedup_vs_cpu,
                str(PAPER.get((wname, p), "-")),
            ]
            for p in PLATFORMS
        ]
        print(f"-- {wname}")
        print(format_table(["platform", "e2e speedup", "paper"], rows))
        benchmark.extra_info[f"{wname}_stpim"] = round(
            results[wname]["StPIM"].speedup_vs_cpu, 2
        )

    mlp = results["mlp"]
    bert = results["bert"]
    # StPIM wins on both networks.
    for wname, block in results.items():
        assert max(
            block.values(), key=lambda r: r.speedup_vs_cpu
        ).platform == "StPIM", wname
    # MLP's nonlinear share is tiny, so its speed-up dwarfs BERT's.
    assert mlp["StPIM"].speedup_vs_cpu > 3 * bert["StPIM"].speedup_vs_cpu
    # BERT lands near the paper's 4.49x.
    assert abs(bert["StPIM"].speedup_vs_cpu - 4.49) / 4.49 < 0.25
    # StPIM over CORUSCANT near the paper's 1.86x on MLP.
    ratio = mlp["StPIM"].speedup_vs_cpu / mlp["CORUSCANT"].speedup_vs_cpu
    assert abs(ratio - 1.86) / 1.86 < 0.4
