"""Fig. 4: execution-time and energy breakdown of CORUSCANT operations.

The analysis that motivates StreamPIM: in CORUSCANT, RM writes take 51%
of a scalar operation's time (computation only 30.1%), and the
arithmetic units consume only 29.1% of the energy — the rest is
electromagnetic conversion.
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.baselines import CoruscantPlatform


def _profiles():
    platform = CoruscantPlatform()
    return {
        kind: (
            platform.op_time_ns(kind),
            platform.op_energy_pj(kind),
        )
        for kind in ("mul", "add")
    }


def test_fig04_coruscant_breakdown(benchmark):
    profiles = run_once(benchmark, _profiles)

    print()
    print("Fig. 4 — CORUSCANT per-operation breakdowns")
    time_rows, energy_rows = [], []
    for kind, (time, energy) in profiles.items():
        tf = time.fractions()
        ef = energy.fractions()
        time_rows.append(
            [
                kind,
                f"{tf['read']:.1%}",
                f"{tf['write']:.1%}",
                f"{tf['shift']:.1%}",
                f"{tf['process']:.1%}",
            ]
        )
        energy_rows.append(
            [
                kind,
                f"{ef['read']:.1%}",
                f"{ef['write']:.1%}",
                f"{ef['shift']:.1%}",
                f"{ef['compute']:.1%}",
            ]
        )
    print("(a) execution time   [paper: write 51.0%, compute 30.1%]")
    print(
        format_table(["op", "read", "write", "shift", "compute"], time_rows)
    )
    print("(b) energy           [paper: arithmetic only 29.1%]")
    print(
        format_table(["op", "read", "write", "shift", "compute"], energy_rows)
    )

    mul_time = profiles["mul"][0].fractions()
    mul_energy = profiles["mul"][1].fractions()
    benchmark.extra_info["mul_write_time_share"] = round(
        mul_time["write"], 3
    )
    # Shape: writes dominate time (paper 51%), compute near 30%.
    assert abs(mul_time["write"] - 0.51) < 0.06
    assert abs(mul_time["process"] - 0.301) < 0.06
    # Energy: arithmetic is a minority share (paper 29.1%).
    assert mul_energy["compute"] < 0.35
    assert mul_energy["write"] > mul_energy["compute"]
