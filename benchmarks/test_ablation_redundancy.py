"""Ablation: error-tolerance supports (section VI redundancy design).

Quantifies the reliability-vs-overhead trade of the redundancy supports
the paper points to: guard-domain retry on the bus and TMR processors.
Shape contract: each step of protection cuts the undetected fault rate
by orders of magnitude while time and area overheads stay under 1%.
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.core.redundancy import (
    RedundancyAnalysis,
    RedundancyConfig,
    RedundancyMode,
)

WORDS = 2000


def _sweep():
    return {
        mode: RedundancyAnalysis(RedundancyConfig(mode=mode)).report(WORDS)
        for mode in RedundancyMode
    }


def test_ablation_redundancy(benchmark):
    reports = run_once(benchmark, _sweep)

    rows = [
        [
            mode.value,
            f"{r.undetected_transfer_fault:.2e}",
            f"{r.residual_compute_fault:.2e}",
            f"{r.expected_time_overhead:.3%}",
            f"{r.area_overhead:.3%}",
        ]
        for mode, r in reports.items()
    ]
    print()
    print(f"Section VI — redundancy supports ({WORDS}-word transfers)")
    print(
        format_table(
            [
                "mode",
                "transfer fault",
                "compute fault",
                "time overhead",
                "area overhead",
            ],
            rows,
        )
    )
    tmr = reports[RedundancyMode.GUARD_RETRY_TMR]
    benchmark.extra_info["tmr_total_undetected"] = tmr.total_undetected

    none = reports[RedundancyMode.NONE]
    guard = reports[RedundancyMode.GUARD_RETRY]
    # Guard retry: >10x fewer undetected transfer faults, ~free.
    assert guard.undetected_transfer_fault < none.undetected_transfer_fault / 10
    assert guard.expected_time_overhead < 0.01
    # TMR: crushes compute upsets at sub-1% area (the processor is tiny).
    assert tmr.residual_compute_fault < guard.residual_compute_fault / 1000
    assert tmr.area_overhead < 0.01
    assert tmr.total_undetected < none.total_undetected
