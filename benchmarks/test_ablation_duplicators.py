"""Ablation: in-processor duplicator count (Table III design choice).

An n-bit multiplication needs n duplications of one operand; the
duplication initiation interval ceil(word_bits / duplicators) is the
dot-product pipeline's bottleneck stage.  The paper's configuration
integrates two duplicators "to duplicate different parts of a vector
simultaneously"; this ablation shows why: one duplicator doubles the
interval, while scaling past the point where duplication stops being
the bottleneck yields nothing.
"""

from conftest import WORKLOAD_NAMES, run_once

from repro.analysis.report import format_table
from repro.baselines.stpim import StreamPIMPlatform
from repro.core.device import StreamPIMConfig
from repro.core.processor import RMProcessorConfig
from repro.workloads import POLYBENCH

DUPLICATORS = (1, 2, 4, 8, 16)


def _sweep():
    out = {}
    for count in DUPLICATORS:
        platform = StreamPIMPlatform(
            StreamPIMConfig(
                processor=RMProcessorConfig(duplicators=count)
            )
        )
        out[count] = {
            w: platform.run(POLYBENCH[w]).time_ns for w in WORKLOAD_NAMES
        }
    return out


def test_ablation_duplicator_count(benchmark):
    times = run_once(benchmark, _sweep)

    base = times[1]
    gains = {
        count: sum(base[w] / times[count][w] for w in WORKLOAD_NAMES)
        / len(WORKLOAD_NAMES)
        for count in DUPLICATORS
    }
    intervals = {
        count: RMProcessorConfig(duplicators=count).duplication_interval
        for count in DUPLICATORS
    }
    print()
    print("Ablation — duplicator count (speedup vs 1 duplicator)")
    print(
        format_table(
            ["duplicators", "dot II (cycles)", "speedup"],
            [[c, intervals[c], gains[c]] for c in DUPLICATORS],
        )
    )
    for count, gain in gains.items():
        benchmark.extra_info[f"gain_{count}"] = round(gain, 2)

    # More duplicators never hurt, and the paper's choice of 2 already
    # buys a large share of the achievable gain.
    ordered = [gains[c] for c in DUPLICATORS]
    assert all(b >= a - 1e-9 for a, b in zip(ordered, ordered[1:]))
    assert gains[2] > 1.4
    # Diminishing returns set in once duplication stops being the
    # pipeline bottleneck (transfer/prep bind instead).
    assert gains[16] - gains[8] < 0.35 * (gains[2] - gains[1])