"""Fig. 20: energy-cost breakdown of CORUSCANT vs StPIM.

Shape contract: CORUSCANT's energy is dominated by electromagnetic
conversion (paper: 86% transfer on average), while StPIM — moving data
purely by shift operations — reduces the transfer fraction to roughly
30%, with the RM processor dominating instead.
"""

from conftest import WORKLOAD_NAMES, run_once

from repro.analysis.report import format_table
from repro.baselines import CoruscantPlatform, StreamPIMPlatform
from repro.workloads import POLYBENCH


def _sweep():
    coruscant = CoruscantPlatform()
    stpim = StreamPIMPlatform()
    return {
        w: {
            "StPIM": stpim.run(POLYBENCH[w]),
            "CORUSCANT": coruscant.run(POLYBENCH[w]),
        }
        for w in WORKLOAD_NAMES
    }


def test_fig20_energy_breakdown(benchmark):
    results = run_once(benchmark, _sweep)

    print()
    print("Fig. 20 — energy breakdown (transfer vs compute), vs StPIM")
    rows = []
    coruscant_shares, stpim_shares = [], []
    for w in WORKLOAD_NAMES:
        s = results[w]["StPIM"].energy
        c = results[w]["CORUSCANT"].energy
        rows.append(
            [
                w,
                c.total_pj / s.total_pj,
                c.transfer_pj / c.total_pj,
                s.transfer_pj / s.total_pj,
            ]
        )
        coruscant_shares.append(c.transfer_pj / c.total_pj)
        stpim_shares.append(s.transfer_pj / s.total_pj)
    print(
        format_table(
            [
                "workload",
                "CORUSCANT/StPIM",
                "CORUSCANT transfer",
                "StPIM transfer",
            ],
            rows,
        )
    )
    coruscant_avg = sum(coruscant_shares) / len(coruscant_shares)
    stpim_avg = sum(stpim_shares) / len(stpim_shares)
    print(
        f"\naverages: CORUSCANT transfer {coruscant_avg:.1%} (paper 86%), "
        f"StPIM transfer {stpim_avg:.1%} (paper ~30%)"
    )
    benchmark.extra_info["coruscant_transfer_energy"] = round(coruscant_avg, 3)
    benchmark.extra_info["stpim_transfer_energy"] = round(stpim_avg, 3)

    assert abs(coruscant_avg - 0.86) < 0.08
    assert stpim_avg < 0.55
    assert stpim_avg < coruscant_avg
