"""Fig. 3: execution-time breakdown on CPU and GPU platforms.

The motivating observation of section II-A: on the small (matrix-vector)
kernels, memory access takes 47.6% of CPU-RM execution time, and
host-device data transfer takes up to ~90% on a discrete GPU.
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.baselines import CpuRM, GpuPlatform
from repro.workloads import POLYBENCH, SMALL_KERNELS


def _sweep():
    cpu = CpuRM()
    gpu = GpuPlatform()
    out = {}
    for name in SMALL_KERNELS:
        spec = POLYBENCH[name]
        stats = cpu.run(spec)
        fractions = stats.time_breakdown.fractions()
        out[name] = {
            "cpu_mem": fractions["read"] + fractions["write"],
            "cpu_compute": fractions["process"],
            "gpu_transfer": gpu.transfer_fraction(spec),
        }
    return out


def test_fig03_cpu_gpu_breakdown(benchmark):
    shares = run_once(benchmark, _sweep)

    rows = [
        [
            name,
            f"{s['cpu_mem']:.1%}",
            f"{s['cpu_compute']:.1%}",
            f"{s['gpu_transfer']:.1%}",
        ]
        for name, s in shares.items()
    ]
    print()
    print("Fig. 3 — time breakdown on CPU-RM / GPU (small kernels)")
    print(
        format_table(
            ["workload", "CPU mem", "CPU compute", "GPU transfer"], rows
        )
    )
    cpu_avg = sum(s["cpu_mem"] for s in shares.values()) / len(shares)
    gpu_avg = sum(s["gpu_transfer"] for s in shares.values()) / len(shares)
    print(
        f"\naverages: CPU mem {cpu_avg:.1%} (paper 47.6%), "
        f"GPU transfer {gpu_avg:.1%} (paper ~90%)"
    )
    benchmark.extra_info["cpu_mem_share"] = round(cpu_avg, 3)
    benchmark.extra_info["gpu_transfer_share"] = round(gpu_avg, 3)

    assert abs(cpu_avg - 0.476) < 0.05
    assert gpu_avg > 0.75
