"""Fig. 21: StPIM performance vs PIM subarray count.

Paper series (normalised to 128 subarrays): 1x / 1.74x / 3.0x / 3.2x for
128 / 256 / 512 / 1024 subarrays, saturating as data-preparation traffic
grows with the broadcast fan-out while per-subarray compute shrinks.
"""

from conftest import WORKLOAD_NAMES, run_once

from repro.analysis.report import format_table
from repro.baselines.stpim import StreamPIMPlatform
from repro.core.device import StreamPIMConfig
from repro.rm.address import DeviceGeometry
from repro.workloads import POLYBENCH

COUNTS = (128, 256, 512, 1024)
PAPER = {128: 1.0, 256: 1.74, 512: 3.0, 1024: 3.2}


def _sweep():
    out = {}
    for count in COUNTS:
        geometry = DeviceGeometry().with_pim_subarrays(count)
        platform = StreamPIMPlatform(StreamPIMConfig(geometry=geometry))
        out[count] = {w: platform.run(POLYBENCH[w]).time_ns for w in WORKLOAD_NAMES}
    return out


def test_fig21_subarray_scaling(benchmark):
    times = run_once(benchmark, _sweep)

    gains = {
        count: sum(
            times[128][w] / times[count][w] for w in WORKLOAD_NAMES
        )
        / len(WORKLOAD_NAMES)
        for count in COUNTS
    }
    print()
    print("Fig. 21 — performance vs PIM subarray count (vs 128)")
    print(
        format_table(
            ["subarrays", "speedup", "paper"],
            [[c, gains[c], PAPER[c]] for c in COUNTS],
        )
    )
    for count, gain in gains.items():
        benchmark.extra_info[f"gain_{count}"] = round(gain, 2)

    # Shape: monotone gains up to 512, saturation at 1024.
    assert 1.0 < gains[256] < gains[512]
    assert abs(gains[256] - PAPER[256]) / PAPER[256] < 0.25
    assert abs(gains[512] - PAPER[512]) / PAPER[512] < 0.35
    assert gains[1024] < 1.35 * gains[512]
