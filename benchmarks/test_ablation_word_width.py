"""Ablation: datapath word width (performance vs numerical fidelity).

The paper fixes the datapath at 8 bits.  Width is a first-order design
choice: the dot-product initiation interval is ceil(bits / duplicators)
cycles, so narrower words run faster — but quantising real-valued data
onto fewer bits costs accuracy.  This ablation sweeps 4/8/16-bit
datapaths, measuring PolyBench performance on one axis and the
quantised-matmul error (from ``repro.workloads.quantize``) on the other,
showing why 8 bits is the sweet spot the paper picked.
"""

import numpy as np
from conftest import run_once

from repro.analysis.report import format_table
from repro.baselines.stpim import StreamPIMPlatform
from repro.core.device import StreamPIMConfig
from repro.core.processor import RMProcessorConfig
from repro.core.rmbus import RMBusConfig
from repro.workloads import POLYBENCH
from repro.workloads.quantize import quantization_error

WIDTHS = (4, 8, 16)
KERNELS = ("gemm", "atax", "mvt")


def _config(bits: int) -> StreamPIMConfig:
    return StreamPIMConfig(
        processor=RMProcessorConfig(
            word_bits=bits, accumulator_bits=max(32, 4 * bits)
        ),
        bus=RMBusConfig(width_wires=bits, word_bits=bits),
    )


def _sweep():
    rng = np.random.default_rng(23)
    a = rng.normal(size=(64, 64))
    b = rng.normal(size=(64, 64))
    out = {}
    for bits in WIDTHS:
        platform = StreamPIMPlatform(_config(bits))
        times = {
            name: platform.run(POLYBENCH[name]).time_ns for name in KERNELS
        }
        error, _ = quantization_error(a, b, bits=bits)
        interval = RMProcessorConfig(
            word_bits=bits, accumulator_bits=max(32, 4 * bits)
        ).duplication_interval
        out[bits] = (times, error, interval)
    return out


def test_ablation_word_width(benchmark):
    sweep = run_once(benchmark, _sweep)

    reference, _, _ = sweep[8]
    rows = []
    for bits, (times, error, interval) in sweep.items():
        speedup = sum(
            reference[name] / times[name] for name in KERNELS
        ) / len(KERNELS)
        rows.append([bits, interval, speedup, f"{error:.4f}"])
    print()
    print("Ablation — datapath word width (vs the paper's 8 bits)")
    print(
        format_table(
            ["bits", "dot II (cycles)", "speedup vs 8-bit", "matmul error"],
            rows,
        )
    )
    benchmark.extra_info["speedup_4bit"] = rows[0][2]

    times4, err4, _ = sweep[4]
    times8, err8, _ = sweep[8]
    times16, err16, _ = sweep[16]
    # Narrower words run faster...
    for name in KERNELS:
        assert times4[name] < times8[name] < times16[name]
    # ...but cost accuracy, and 16 bits buys little fidelity for 2x time.
    assert err4 > 3 * err8
    assert err16 < err8
    assert err8 < 0.05  # 8-bit quantisation already adequate
