"""Section V-F: per-gate energy vs fabrication process.

Paper: "the energy cost per gate will drop from 20 pJ to 0.0008 pJ when
the domain scale shrinks from 1.0 um to 32 nm" — a cubic scaling law —
and at 32 nm the ADD and MUL operation energies are 0.03 pJ and 0.18 pJ.
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.rm.timing import DEFAULT_TIMING, energy_per_gate_pj

PROCESSES_NM = (1000, 500, 250, 130, 65, 32)


def _sweep():
    return {nm: energy_per_gate_pj(nm) for nm in PROCESSES_NM}


def test_fabrication_process(benchmark):
    energies = run_once(benchmark, _sweep)

    rows = [[nm, f"{e:.6f}"] for nm, e in energies.items()]
    print()
    print("Section V-F — energy per gate vs fabrication process")
    print(format_table(["process (nm)", "pJ/gate"], rows))
    print(
        f"\nTable III op energies at 32 nm: ADD "
        f"{DEFAULT_TIMING.pim_add_pj} pJ, MUL {DEFAULT_TIMING.pim_mul_pj} pJ"
    )
    benchmark.extra_info["gate_pj_32nm"] = energies[32]

    # The paper's two anchor points.
    assert abs(energies[1000] - 20.0) < 1e-9
    assert abs(energies[32] - 0.0008) / 0.0008 < 0.25
    # Monotone decrease with shrinking process.
    values = [energies[nm] for nm in PROCESSES_NM]
    assert values == sorted(values, reverse=True)
    # Cubic law: halving the feature size cuts energy 8x.
    assert energies[500] * 8 == energies[1000]
