"""Section V-G: area overhead breakdown by domain counting.

Paper figures: RM bus 1.8% and RM processor 0.1% of the total device
area; transfer tracks 3.1% of the (PIM) bank area; control logic ~1.0%.
"""

from conftest import run_once

from repro.analysis.area import AreaModel
from repro.analysis.report import format_table


def _breakdown():
    model = AreaModel()
    return model, model.breakdown()


def test_area_overheads(benchmark):
    model, breakdown = run_once(benchmark, _breakdown)

    rows = [
        ["RM bus", f"{breakdown.fraction('bus'):.2%}", "1.8%"],
        ["RM processor", f"{breakdown.fraction('processor'):.2%}", "0.1%"],
        [
            "transfer tracks (of PIM bank)",
            f"{model.transfer_fraction_of_pim_bank_area():.2%}",
            "3.1%",
        ],
        ["control logic", f"{breakdown.fraction('control'):.2%}", "~1.0%"],
        ["memory mats", f"{breakdown.fraction('mat'):.2%}", "-"],
    ]
    print()
    print("Section V-G — area overheads")
    print(format_table(["component", "measured", "paper"], rows))
    benchmark.extra_info["bus_fraction"] = round(breakdown.fraction("bus"), 4)

    assert abs(breakdown.fraction("bus") - 0.018) < 0.01
    assert abs(breakdown.fraction("processor") - 0.001) < 0.001
    assert abs(model.transfer_fraction_of_pim_bank_area() - 0.031) < 0.01
    assert abs(breakdown.fraction("control") - 0.01) < 0.005
