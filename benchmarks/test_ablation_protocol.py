"""Ablation: the asynchronous VPC send-response protocol (section IV-B).

The paper adopts an asynchronous send-response command style so the
device can "execute VPCs on different banks simultaneously".  This
ablation drives the same VPC stream through the protocol simulator with
1 and 8 concurrent banks, and with shallow vs deep VPC queues, showing
the multibank overlap and the flow-control behaviour.
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.core.host_interface import HostProtocolConfig, HostProtocolSimulator
from repro.isa.trace import VPCTrace
from repro.isa.vpc import VPC
from repro.rm.address import AddressMap


def _trace():
    amap = AddressMap()
    bases = [amap.subarray_base(b, 0) for b in range(8)]
    return VPCTrace(
        [
            VPC.mul(
                bases[i % 8], bases[i % 8] + 512, bases[i % 8] + 1024, 128
            )
            for i in range(240)
        ]
    )


def _sweep():
    trace = _trace()
    out = {}
    for banks, depth in ((1, 64), (2, 64), (4, 64), (8, 64), (8, 4)):
        stats = HostProtocolSimulator(
            HostProtocolConfig(banks=banks, queue_depth=depth)
        ).simulate(trace)
        out[(banks, depth)] = stats
    return out


def test_ablation_async_protocol(benchmark):
    results = run_once(benchmark, _sweep)

    base = results[(1, 64)].total_ns
    rows = [
        [
            banks,
            depth,
            base / stats.total_ns,
            f"{stats.bank_utilisation:.0%}",
            stats.peak_queue,
            f"{stats.host_stall_ns / 1e3:.1f}",
        ]
        for (banks, depth), stats in results.items()
    ]
    print()
    print("Section IV-B — asynchronous send-response protocol")
    print(
        format_table(
            [
                "banks",
                "queue",
                "speedup vs 1 bank",
                "bank util",
                "peak queue",
                "stalls (us)",
            ],
            rows,
        )
    )
    benchmark.extra_info["speedup_8_banks"] = round(
        base / results[(8, 64)].total_ns, 2
    )

    # Multibank overlap approaches linear for a bank-balanced stream.
    assert base / results[(8, 64)].total_ns > 5.0
    assert (
        base / results[(4, 64)].total_ns
        > base / results[(2, 64)].total_ns
        > 1.5
    )
    # A shallow queue forces host stalls but still completes correctly.
    shallow = results[(8, 4)]
    assert shallow.responses == shallow.commands
    assert shallow.peak_queue <= 4
