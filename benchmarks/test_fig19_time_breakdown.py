"""Fig. 19: execution-time breakdown of CORUSCANT vs StPIM.

The paper splits time into exclusive Read/Write/Shift, exclusive
Process, and Overlapped, normalised to StPIM.  Shape contract: CORUSCANT
is transfer-dominated (paper: 81.8% average) while StPIM's exclusive
transfer time falls below ~1% — the pipelined RM bus hides it.
"""

from conftest import WORKLOAD_NAMES, run_once

from repro.analysis.report import format_breakdown_table
from repro.baselines import CoruscantPlatform, StreamPIMPlatform
from repro.workloads import POLYBENCH


def _sweep():
    coruscant = CoruscantPlatform()
    stpim = StreamPIMPlatform()
    return {
        w: {
            "StPIM": stpim.run(POLYBENCH[w]),
            "CORUSCANT": coruscant.run(POLYBENCH[w]),
        }
        for w in WORKLOAD_NAMES
    }


def test_fig19_time_breakdown(benchmark):
    results = run_once(benchmark, _sweep)

    print()
    print("Fig. 19 — execution-time breakdown, normalised to StPIM")
    coruscant_shares = []
    stpim_shares = []
    for w in WORKLOAD_NAMES:
        print(f"-- {w}")
        print(
            format_breakdown_table(
                {
                    "StPIM": results[w]["StPIM"].time_breakdown,
                    "CORUSCANT": results[w]["CORUSCANT"].time_breakdown,
                },
                normalise_to="StPIM",
            )
        )
        c = results[w]["CORUSCANT"].time_breakdown
        s = results[w]["StPIM"].time_breakdown
        coruscant_shares.append(c.transfer_ns / c.total_ns)
        stpim_shares.append(s.transfer_ns / s.total_ns)

    coruscant_avg = sum(coruscant_shares) / len(coruscant_shares)
    stpim_avg = sum(stpim_shares) / len(stpim_shares)
    print(
        f"\nexclusive transfer share: CORUSCANT {coruscant_avg:.1%} "
        f"(paper 81.8%), StPIM {stpim_avg:.2%} (paper <1%)"
    )
    benchmark.extra_info["coruscant_transfer_share"] = round(coruscant_avg, 3)
    benchmark.extra_info["stpim_transfer_share"] = round(stpim_avg, 4)

    assert coruscant_avg > 0.6
    assert stpim_avg < 0.02
    for w in WORKLOAD_NAMES:
        assert (
            results[w]["CORUSCANT"].time_ns > results[w]["StPIM"].time_ns
        )
