"""Fig. 18: energy consumption of every platform, normalised to StPIM.

Shape contract: StPIM uses the least energy everywhere; the averages
land near the paper's (CPU-DRAM 58.4x, ELP2IM 11.7x, FELIX 3.5x,
CORUSCANT 2.8x, StPIM-e 1.6x); and the two CPU platforms consume similar
energy ("the energy consumption of DRAM-based architectures is close to
RM-based architectures").
"""

from conftest import PAPER_ENERGY_VS_STPIM, WORKLOAD_NAMES, run_once

from repro.analysis.report import format_table
from repro.baselines import default_platforms
from repro.workloads import POLYBENCH


def _sweep():
    platforms = default_platforms()
    return {
        name: {w: platform.run(POLYBENCH[w]) for w in WORKLOAD_NAMES}
        for name, platform in platforms.items()
    }


def _energy_ratio(results, platform):
    ratios = [
        results[platform][w].energy.total_pj
        / results["StPIM"][w].energy.total_pj
        for w in WORKLOAD_NAMES
    ]
    return sum(ratios) / len(ratios)


def test_fig18_energy(benchmark):
    results = run_once(benchmark, _sweep)

    print()
    print("Fig. 18 — energy normalised to StPIM (paper in parentheses)")
    rows = []
    for platform in results:
        measured = _energy_ratio(results, platform)
        paper = PAPER_ENERGY_VS_STPIM.get(platform, "-")
        rows.append([platform, measured, str(paper)])
        benchmark.extra_info[f"energy_vs_stpim_{platform}"] = round(
            measured, 2
        )
    print(format_table(["platform", "energy / StPIM", "paper"], rows))

    ratios = {p: _energy_ratio(results, p) for p in results}
    # StPIM is the most energy-efficient platform on every workload.
    for platform in results:
        if platform == "StPIM":
            continue
        for w in WORKLOAD_NAMES:
            assert (
                results[platform][w].energy.total_pj
                > results["StPIM"][w].energy.total_pj
            )
    # CPU-RM and CPU-DRAM are close (Fig. 18's observation).
    assert abs(ratios["CPU-RM"] - ratios["CPU-DRAM"]) / ratios["CPU-DRAM"] < 0.15
    # Rough magnitudes.
    assert abs(ratios["CPU-DRAM"] - 58.4) / 58.4 < 0.25
    assert ratios["ELP2IM"] > ratios["FELIX"] > ratios["CORUSCANT"] > 1.0
