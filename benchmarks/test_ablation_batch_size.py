"""Ablation: DNN batch size (extending the Fig. 23 experiment).

A naive row-resident mapping would leave most PIM subarrays idle at
small batches (a batch-1 layer has one activation row).  StreamPIM's
layout optimisation flips the orientation — the *weight* matrix's
columns become the resident side — so the subarray pool stays saturated
at every batch size.  This ablation sweeps the MLP batch and shows the
resulting batch-insensitivity: end-to-end speed-up over CPU-DRAM is
nearly flat from batch 1 to 1024 while the simulated matrix time scales
linearly with the work.
"""

from conftest import run_once

from repro.analysis.endtoend import end_to_end_speedup
from repro.analysis.report import format_table
from repro.baselines import CpuDRAM, StreamPIMPlatform
from repro.workloads.dnn import MLPShape, mlp_spec

BATCHES = (1, 8, 64, 256, 1024)


def _sweep():
    stpim = StreamPIMPlatform()
    cpu = CpuDRAM()
    out = {}
    for batch in BATCHES:
        spec = mlp_spec(MLPShape(batch=batch))
        out[batch] = end_to_end_speedup(stpim, cpu, spec)
    return out


def test_ablation_batch_size(benchmark):
    results = run_once(benchmark, _sweep)

    rows = [
        [
            batch,
            result.matrix_ns / 1e6,
            result.speedup_vs_cpu,
        ]
        for batch, result in results.items()
    ]
    print()
    print("Ablation — MLP batch size (end-to-end speed-up vs CPU-DRAM)")
    print(
        format_table(
            ["batch", "StPIM matrix time (ms)", "e2e speedup"], rows
        )
    )
    speedups = {b: r.speedup_vs_cpu for b, r in results.items()}
    benchmark.extra_info["speedup_batch_64"] = round(speedups[64], 2)

    # StPIM wins at every batch size.
    assert all(s > 1.0 for s in speedups.values())
    # The orientation optimisation keeps the pool saturated: the
    # speed-up varies by less than 30% across three orders of magnitude
    # of batch size.
    assert max(speedups.values()) < 1.3 * min(speedups.values())
    # Work still scales: the matrix time grows roughly linearly.
    t1 = results[1].matrix_ns
    t1024 = results[1024].matrix_ns
    assert 300 < t1024 / t1 < 2000
