"""Fig. 17: speed-up of every platform over CPU-RM, per workload.

Regenerates the full platform x workload matrix of the paper's headline
figure and prints the speed-up rows.  Shape contract: the platform
ordering holds and the averages land near the paper's (CPU-DRAM 1.5x,
ELP2IM 3.6x, FELIX 8.7x, CORUSCANT 15.6x, StPIM-e 12.7x, StPIM 39.1x).
"""

from conftest import PAPER_SPEEDUPS, WORKLOAD_NAMES, average_speedup, run_once

from repro.analysis.report import format_speedup_table
from repro.baselines import default_platforms
from repro.workloads import POLYBENCH


def _sweep():
    platforms = default_platforms()
    return {
        name: {w: platform.run(POLYBENCH[w]) for w in WORKLOAD_NAMES}
        for name, platform in platforms.items()
    }


def test_fig17_overall_performance(benchmark):
    results = run_once(benchmark, _sweep)

    print()
    print("Fig. 17 — speed-up over CPU-RM (paper averages in parentheses)")
    print(format_speedup_table(results, "CPU-RM", WORKLOAD_NAMES))
    for platform, paper in PAPER_SPEEDUPS.items():
        measured = average_speedup(results, platform)
        print(f"  {platform:10s} avg {measured:6.2f}  (paper {paper})")
        benchmark.extra_info[f"avg_speedup_{platform}"] = round(measured, 2)

    # Shape: ordering and rough magnitudes.
    averages = {
        p: average_speedup(results, p) for p in PAPER_SPEEDUPS
    }
    assert (
        averages["CPU-DRAM"]
        < averages["ELP2IM"]
        < averages["FELIX"]
        < averages["CORUSCANT"]
        < averages["StPIM"]
    )
    assert abs(averages["StPIM"] - 39.1) / 39.1 < 0.25
    assert abs(averages["StPIM-e"] - 12.7) / 12.7 < 0.25
