"""Validation: analytic vs event-driven execution modes.

The paper-scale results come from the analytic (round-composition) mode;
this benchmark replays reduced-scale kernels through the event-driven
engine — per-VPC dispatch, per-subarray blocking, real data movement —
and reports the agreement: identical functional results, identical VPC
counts, and timing within a small factor.
"""

from conftest import compile_cached, run_once

from repro.analysis.report import format_table
from repro.core.device import StreamPIMConfig, StreamPIMDevice
from repro.core.rmbus import RMBusConfig
from repro.rm.address import DeviceGeometry
from repro.rm.bank import BankConfig
from repro.rm.mat import MatConfig
from repro.rm.subarray import SubarrayConfig
from repro.workloads import polybench_workload

KERNELS = ("gemm", "atax", "bicg", "mvt")
SCALE = 0.004


def _config():
    mat = MatConfig(
        save_tracks=16,
        transfer_tracks=16,
        domains_per_track=64,
        word_bits=8,
        ports_per_track=2,
    )
    geometry = DeviceGeometry(
        banks=2,
        pim_banks=1,
        bank=BankConfig(
            subarrays=8,
            subarray=SubarrayConfig(mats=2, pim_mats=1, mat=mat),
            pim_bank=True,
        ),
    )
    bus = RMBusConfig(
        segment_domains=16, length_domains=64, width_wires=8, word_bits=8
    )
    return StreamPIMConfig(geometry=geometry, bus=bus)


def _sweep():
    out = {}
    for name in KERNELS:
        spec = polybench_workload(name, scale=SCALE)
        analytic_device = StreamPIMDevice(_config())
        task = spec.build_task(analytic_device, seed=3)
        analytic = task.run(functional=True)

        event_device = StreamPIMDevice(_config())
        compiled = compile_cached(spec, event_device, seed=3)
        event_task, trace = compiled.task, compiled.trace
        event_task.materialize(event_device)
        event_stats = event_device.execute_trace(trace)
        event_results = event_task.fetch_results(event_device)

        outputs = {op.output for op in event_task._operations}
        functional_match = all(
            (event_results[o] == analytic.results[o]).all() for o in outputs
        )
        out[name] = {
            "analytic_ns": analytic.time_ns,
            "event_ns": event_stats.time_ns,
            "counts_match": (
                trace.stats.pim_vpcs == analytic.counts.pim_vpcs
                and trace.stats.move_vpcs == analytic.counts.move_vpcs
            ),
            "functional_match": functional_match,
        }
    return out


def test_validation_modes(benchmark):
    results = run_once(benchmark, _sweep)

    rows = [
        [
            name,
            r["analytic_ns"] / 1e3,
            r["event_ns"] / 1e3,
            r["event_ns"] / r["analytic_ns"],
            "yes" if r["counts_match"] else "NO",
            "yes" if r["functional_match"] else "NO",
        ]
        for name, r in results.items()
    ]
    print()
    print(
        f"Mode validation — kernels at scale {SCALE} "
        "(analytic vs event-driven)"
    )
    print(
        format_table(
            [
                "kernel",
                "analytic (us)",
                "event (us)",
                "ratio",
                "counts",
                "results",
            ],
            rows,
        )
    )

    for name, r in results.items():
        assert r["functional_match"], name
        assert r["counts_match"], name
        ratio = r["event_ns"] / r["analytic_ns"]
        assert 1 / 5 < ratio < 5, (name, ratio)
