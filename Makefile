# StreamPIM reproduction — common tasks.

PYTHON ?= python

.PHONY: install test lint check check-deep faults-smoke profile-smoke serve-smoke serve-throughput bench bench-perf bench-compile bench-deep bench-stream bench-predict figures docs examples clean

# Extra flags for bench-perf, e.g. BENCH_FLAGS="--vpcs 20000 --min-speedup 5"
BENCH_FLAGS ?=
# Extra flags for bench-compile, e.g.
# COMPILE_BENCH_FLAGS="--compile-scale 0.05 --min-cache-speedup 1.0"
COMPILE_BENCH_FLAGS ?= --min-compile-speedup 5 --min-cache-speedup 20
# Extra flags for bench-stream, e.g.
# STREAM_BENCH_FLAGS="--stream-scale 0.05 --min-stream-speedup 1.0"
STREAM_BENCH_FLAGS ?= --min-stream-speedup 1.15
# Extra flags for bench-predict, e.g.
# PREDICT_BENCH_FLAGS="--timing-points 8 --min-speedup 50"
PREDICT_BENCH_FLAGS ?=

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) -m repro.cli lint

check:
	$(PYTHON) -m repro.cli check --all-workloads --strict --scale 0.01

# Per-VPC rules plus the whole-trace dataflow pass (SPV008-SPV012).
check-deep:
	$(PYTHON) -m repro.cli check --all-workloads --deep --strict --scale 0.01

faults-smoke:
	$(PYTHON) -m repro.cli faults campaign gemm --scale 0.01 --runs 16 \
		--p-per-step 2e-6 -o FAULTS_campaign.json

profile-smoke:
	$(PYTHON) -m repro.cli profile gemm --scale 0.05 -o trace.json
	$(PYTHON) tools/bench_trace_exec.py --vpcs 100000 \
		--min-speedup 1.0 --max-obs-overhead 5

# Resilience gate for the serving layer (docs/serving.md): baseline
# load plus a chaos pass with 2 forced worker kills and slow-request
# injection; asserts exactly-once responses, deadline adherence,
# bit-identity with one-shot runs, and a clean drain.
serve-smoke:
	$(PYTHON) tools/bench_serve.py --chaos --requests 60 --threads 6 \
		--crashes 2 --slow-fraction 0.08 $(SERVE_BENCH_FLAGS)

# Batching + fairness gate (docs/serving.md): batched throughput must
# reach 1.5x the unbatched baseline at equal workers with bit-identical
# per-request results, and a 10:1 two-tenant mix must be served with a
# Jain index >= 0.9 while both tenants are backlogged.
serve-throughput:
	$(PYTHON) tools/bench_serve.py --sustained --requests 90 --workers 2 \
		$(SERVE_BENCH_FLAGS)

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-perf:
	$(PYTHON) tools/bench_trace_exec.py $(BENCH_FLAGS)

bench-compile:
	$(PYTHON) tools/bench_trace_exec.py --compile $(COMPILE_BENCH_FLAGS)

# Cold end-to-end (lowering + functional vector execution) phased vs
# streamed on the fig17 set; streamed must win by the floor and stay
# bit-identical.
bench-stream:
	$(PYTHON) tools/bench_trace_exec.py --stream $(STREAM_BENCH_FLAGS)

# Deep analysis of ~93k-VPC gemm must stay well under one functional
# vector-engine execution (and under an absolute wall-clock budget).
bench-deep:
	$(PYTHON) tools/bench_trace_exec.py --deep $(DEEP_BENCH_FLAGS)

# Closed-form predictor gates (docs/modeling.md): the full workload
# calibration must stay inside the per-class time bounds (3%/8%/10%)
# and a 32-point analytic timing sweep must beat re-simulating every
# point by >= 100x.
bench-predict:
	$(PYTHON) tools/bench_predict.py $(PREDICT_BENCH_FLAGS)

figures:
	$(PYTHON) examples/paper_figures.py

docs:
	$(PYTHON) tools/gen_api_docs.py

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
