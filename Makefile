# StreamPIM reproduction — common tasks.

PYTHON ?= python

.PHONY: install test lint check bench figures docs examples clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) -m repro.cli lint

check:
	$(PYTHON) -m repro.cli check --all-workloads --strict --scale 0.01

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

figures:
	$(PYTHON) examples/paper_figures.py

docs:
	$(PYTHON) tools/gen_api_docs.py

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
