"""Minimal discrete-event simulation engine.

Callback-based: events are (time, callback) pairs kept in a heap; running
the engine pops events in time order (FIFO among equal timestamps) and
invokes the callbacks, which may schedule further events.  A
:class:`Resource` models an exclusive unit (a subarray, a bus, a
processor) as a "busy until" ledger, the standard technique for
cycle-level memory-system simulation at command granularity.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


@dataclass(order=True)
class Event:
    """One scheduled callback; ordering is (time, sequence number)."""

    time: float
    order: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    # Backrefs for O(1) live-event accounting: the owning engine and
    # whether the event already ran (a cancel after execution must not
    # decrement the live counter).
    _engine: Optional["Engine"] = field(
        default=None, compare=False, repr=False
    )
    _consumed: bool = field(default=False, compare=False, repr=False)

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            if self._engine is not None and not self._consumed:
                self._engine._live -= 1


class Engine:
    """Discrete-event loop with a monotonically advancing clock (ns)."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._counter = itertools.count()
        self._live = 0
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        event = Event(time, next(self._counter), callback, _engine=self)
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue (optionally stopping at time ``until``).

        Returns:
            The simulation clock after the run.
        """
        while self._queue:
            if until is not None and self._queue[0].time > until:
                # Clamp, never rewind: run(until=t) with t already in
                # the past must leave the monotone clock untouched — a
                # rewound clock corrupts every timestamped span emitted
                # downstream.
                self.now = max(self.now, until)
                return self.now
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            event._consumed = True
            self._live -= 1
            self.now = event.time
            self.events_processed += 1
            event.callback()
        return self.now

    def step(self) -> bool:
        """Process a single event; returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            event._consumed = True
            self._live -= 1
            self.now = event.time
            self.events_processed += 1
            event.callback()
            return True
        return False

    @property
    def pending(self) -> int:
        """Live (scheduled, not yet run, not cancelled) events — O(1)."""
        return self._live


class Resource:
    """An exclusive unit with a busy-until ledger and utilisation stats."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.acquisitions = 0

    def earliest_start(self, now: float) -> float:
        return max(now, self.busy_until)

    def acquire(self, now: float, duration: float) -> Tuple[float, float]:
        """Reserve the resource for ``duration`` starting no earlier than
        ``now``.

        Returns:
            ``(start, finish)`` of the granted reservation.
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        start = self.earliest_start(now)
        finish = start + duration
        self.busy_until = finish
        self.busy_time += duration
        self.acquisitions += 1
        return start, finish

    #: Relative slack for float accumulation drift before a busy/elapsed
    #: ratio above 1.0 is treated as double-booking.
    _OVERBOOK_TOLERANCE = 1e-9

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the resource spent busy.

        Returns the raw busy/elapsed ratio.  A ratio above 1.0 (beyond
        float-accumulation slack) means the ledger booked more busy
        time than wall-clock passed — an accounting bug that a display
        clamp would silently mask — so it raises instead.
        """
        if elapsed <= 0:
            return 0.0
        ratio = self.busy_time / elapsed
        if ratio > 1.0 + self._OVERBOOK_TOLERANCE:
            raise ValueError(
                f"resource {self.name!r} over-accounted: busy "
                f"{self.busy_time} ns exceeds elapsed {elapsed} ns "
                f"(utilisation {ratio:.6f})"
            )
        return ratio
