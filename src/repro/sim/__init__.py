"""Discrete-event simulation engine and statistics accounting.

Provides the event queue that drives VPC execution across banks and
subarrays, the pipeline cycle algebra used by the RM processor and RM
bus models, and the time/energy breakdown containers that regenerate the
paper's breakdown figures.
"""

from repro.sim.engine import Engine, Event, Resource
from repro.sim.pipeline import PipelineModel, PipelineStage
from repro.sim.stats import TimeBreakdown, EnergyBreakdown, RunStats
from repro.sim.vector_exec import execute_columnar, sweep_spans

__all__ = [
    "Engine",
    "Event",
    "Resource",
    "PipelineModel",
    "PipelineStage",
    "TimeBreakdown",
    "EnergyBreakdown",
    "RunStats",
    "execute_columnar",
    "sweep_spans",
]
