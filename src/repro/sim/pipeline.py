"""Pipeline cycle algebra.

Both the RM processor (Fig. 11) and the segmented RM bus (Fig. 12) are
pipelines: after a fill period, one item completes every initiation
interval.  This module provides the shared algebra:

    latency(n) = fill + (n - 1) * II        for n >= 1 items

where ``fill`` is the sum of stage depths (cycles for the first item to
traverse every stage) and ``II`` is the slowest stage's per-item cycle
count.  The same formula gives the bus transfer time with ``fill`` =
number of segments between source and destination and ``II`` = 1 (one
segment advance per cycle per data/empty segment pair).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PipelineStage:
    """One pipeline stage.

    Attributes:
        name: stage label (for breakdown reporting).
        depth: cycles for one item to traverse the stage.
        interval: cycles between successive items entering the stage
            (the stage's local initiation interval).
    """

    name: str
    depth: int
    interval: int = 1

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"stage depth must be >= 1, got {self.depth}")
        if self.interval < 1:
            raise ValueError(
                f"stage interval must be >= 1, got {self.interval}"
            )


@dataclass(frozen=True)
class PipelineModel:
    """A linear pipeline of stages."""

    stages: Sequence[PipelineStage]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("a pipeline needs at least one stage")

    @property
    def fill_cycles(self) -> int:
        """Cycles for the first item to emerge (sum of stage depths)."""
        return sum(stage.depth for stage in self.stages)

    @property
    def initiation_interval(self) -> int:
        """Cycles between successive completions in steady state."""
        return max(stage.interval for stage in self.stages)

    def latency_cycles(self, n_items: int) -> int:
        """Total cycles to push ``n_items`` through the pipeline."""
        if n_items < 0:
            raise ValueError(f"n_items must be non-negative, got {n_items}")
        if n_items == 0:
            return 0
        return self.fill_cycles + (n_items - 1) * self.initiation_interval

    def bottleneck(self) -> PipelineStage:
        """The stage that sets the initiation interval."""
        return max(self.stages, key=lambda s: s.interval)

    def without(self, *names: str) -> "PipelineModel":
        """A copy with the named stages bypassed.

        Models the paper's operation-specific bypasses: scalar addition
        skips stages 1-3; scalar multiplication skips the circle adder.
        """
        remaining = [s for s in self.stages if s.name not in names]
        if not remaining:
            raise ValueError("cannot bypass every stage")
        return PipelineModel(tuple(remaining))
