"""Typed runtime faults surfaced by the trace engines.

Static problems in a trace file raise
:class:`~repro.isa.trace.TraceFormatError` with a byte offset or line
number; *dynamic* problems discovered while executing the trace — a
shift that escapes the nanowire model, an injected fault the recovery
policy decides to surface, a retry budget that runs out — raise
:class:`SimulationFault` with the same locating convention so tooling
can point at the offending command in the stored trace.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.encoding import VPC_ENCODED_BYTES
from repro.isa.trace import _BINARY_MAGIC


def trace_byte_offset(index: int) -> int:
    """Byte offset of command ``index`` in the binary trace encoding.

    Mirrors the offsets :class:`~repro.isa.trace.TraceFormatError`
    reports for malformed binary traces, so dynamic faults and static
    format errors locate commands the same way.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    return len(_BINARY_MAGIC) + index * VPC_ENCODED_BYTES


class SimulationFault(RuntimeError):
    """A fault raised during event-mode trace execution.

    Attributes:
        index: trace position (VPC index) of the faulting command.
        offset: byte offset of that command in the binary encoding
            (same convention as :class:`~repro.isa.trace.TraceFormatError`).
        line: 1-based line number in the text encoding (one command per
            line, no header).
    """

    def __init__(
        self,
        message: str,
        index: Optional[int] = None,
        offset: Optional[int] = None,
    ) -> None:
        where = ""
        if index is not None:
            where = f" at vpc #{index}"
            if offset is None:
                offset = trace_byte_offset(index)
            where += f" (byte offset {offset}, line {index + 1})"
        super().__init__(message + where)
        self.index = index
        self.offset = offset
        self.line = None if index is None else index + 1
