"""Time/energy breakdown containers.

The paper reports execution time split into exclusive Read / Write /
Shift / Process components plus an Overlapped part (Fig. 19), and energy
split into data-transfer vs compute (Figs. 4, 18, 20).  These containers
accumulate those components and normalise them for reporting.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Dict, Mapping


_TIME_CATEGORIES = (
    "read", "write", "shift", "process", "overlapped", "recovery"
)
_ENERGY_CATEGORIES = ("read", "write", "shift", "compute", "recovery")


@dataclass
class TimeBreakdown:
    """Execution time split by exclusive category (all in ns).

    ``recovery_ns`` is the time spent re-shifting after guard domains
    detect a misaligned hop (fault-injection campaigns,
    :mod:`repro.resilience`); fault-free runs leave it at zero.
    """

    read_ns: float = 0.0
    write_ns: float = 0.0
    shift_ns: float = 0.0
    process_ns: float = 0.0
    overlapped_ns: float = 0.0
    recovery_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        return (
            self.read_ns
            + self.write_ns
            + self.shift_ns
            + self.process_ns
            + self.overlapped_ns
            + self.recovery_ns
        )

    @property
    def transfer_ns(self) -> float:
        """Exclusive (non-overlapped) data-transfer time."""
        return self.read_ns + self.write_ns + self.shift_ns

    def add(self, category: str, duration_ns: float) -> None:
        if duration_ns < 0:
            raise ValueError(
                f"duration must be non-negative, got {duration_ns}"
            )
        if category not in _TIME_CATEGORIES:
            raise ValueError(
                f"category must be one of {_TIME_CATEGORIES}, got {category!r}"
            )
        setattr(
            self, f"{category}_ns", getattr(self, f"{category}_ns") + duration_ns
        )

    def merge(self, other: "TimeBreakdown") -> None:
        self.read_ns += other.read_ns
        self.write_ns += other.write_ns
        self.shift_ns += other.shift_ns
        self.process_ns += other.process_ns
        self.overlapped_ns += other.overlapped_ns
        self.recovery_ns += other.recovery_ns

    def fractions(self) -> Dict[str, float]:
        """Normalised shares of the total (empty breakdown -> all zeros)."""
        total = self.total_ns
        if total <= 0:
            return {name: 0.0 for name in _TIME_CATEGORIES}
        return {
            "read": self.read_ns / total,
            "write": self.write_ns / total,
            "shift": self.shift_ns / total,
            "process": self.process_ns / total,
            "overlapped": self.overlapped_ns / total,
            "recovery": self.recovery_ns / total,
        }

    def scaled(self, factor: float) -> "TimeBreakdown":
        """A copy with every component multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return TimeBreakdown(
            read_ns=self.read_ns * factor,
            write_ns=self.write_ns * factor,
            shift_ns=self.shift_ns * factor,
            process_ns=self.process_ns * factor,
            overlapped_ns=self.overlapped_ns * factor,
            recovery_ns=self.recovery_ns * factor,
        )


@dataclass
class EnergyBreakdown:
    """Energy split by category (all in pJ).

    ``recovery_pj`` covers re-shift energy spent repairing detected
    misalignments (see :mod:`repro.resilience`); zero on fault-free runs.
    """

    read_pj: float = 0.0
    write_pj: float = 0.0
    shift_pj: float = 0.0
    compute_pj: float = 0.0
    recovery_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (
            self.read_pj
            + self.write_pj
            + self.shift_pj
            + self.compute_pj
            + self.recovery_pj
        )

    @property
    def transfer_pj(self) -> float:
        return self.read_pj + self.write_pj + self.shift_pj

    def add(self, category: str, energy_pj: float) -> None:
        if energy_pj < 0:
            raise ValueError(f"energy must be non-negative, got {energy_pj}")
        if category not in _ENERGY_CATEGORIES:
            raise ValueError(
                f"category must be one of {_ENERGY_CATEGORIES}, "
                f"got {category!r}"
            )
        setattr(
            self, f"{category}_pj", getattr(self, f"{category}_pj") + energy_pj
        )

    def merge(self, other: "EnergyBreakdown") -> None:
        self.read_pj += other.read_pj
        self.write_pj += other.write_pj
        self.shift_pj += other.shift_pj
        self.compute_pj += other.compute_pj
        self.recovery_pj += other.recovery_pj

    def fractions(self) -> Dict[str, float]:
        total = self.total_pj
        if total <= 0:
            return {name: 0.0 for name in _ENERGY_CATEGORIES}
        return {
            "read": self.read_pj / total,
            "write": self.write_pj / total,
            "shift": self.shift_pj / total,
            "compute": self.compute_pj / total,
            "recovery": self.recovery_pj / total,
        }

    def scaled(self, factor: float) -> "EnergyBreakdown":
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return EnergyBreakdown(
            read_pj=self.read_pj * factor,
            write_pj=self.write_pj * factor,
            shift_pj=self.shift_pj * factor,
            compute_pj=self.compute_pj * factor,
            recovery_pj=self.recovery_pj * factor,
        )


@dataclass
class RunStats:
    """Complete result of one simulated run on any platform.

    Attributes:
        platform: platform label ("StPIM", "CORUSCANT", ...).
        workload: workload label ("gemm", "mlp", ...).
        time_ns: end-to-end execution time.
        time_breakdown: exclusive-category time split.
        energy: energy split.
        counters: free-form operation counters (VPCs executed, etc.).
    """

    platform: str
    workload: str
    time_ns: float
    time_breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def energy_pj(self) -> float:
        return self.energy.total_pj

    def speedup_over(self, baseline: "RunStats") -> float:
        """How many times faster this run is than ``baseline``."""
        if self.time_ns <= 0:
            raise ZeroDivisionError("run has zero execution time")
        return baseline.time_ns / self.time_ns

    def energy_saving_over(self, baseline: "RunStats") -> float:
        """How many times less energy this run uses than ``baseline``."""
        if self.energy_pj <= 0:
            raise ZeroDivisionError("run has zero energy")
        return baseline.energy_pj / self.energy_pj

    def bump(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount


def geometric_mean(values) -> float:
    """Geometric mean of positive values (paper-style averages).

    Accumulates in the log domain (``fsum`` of logs) so long sweeps of
    large speedups cannot overflow the running product to ``inf`` —
    a naive product of a few hundred 1000x speedups exceeds the float
    range even though their geometric mean is perfectly representable.
    """
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return math.exp(
        math.fsum(math.log(value) for value in values) / len(values)
    )
