"""Cycle-by-cycle pipeline simulation (validation layer).

The analytic latency formula ``fill + (n - 1) * II`` is how the RM
processor's cost is computed at scale; this module simulates the same
pipeline one reservation at a time — each stage accepts a new item every
``interval`` cycles and holds it for ``depth`` cycles — so tests can
prove the closed form against an operational model instead of trusting
the algebra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.sim.pipeline import PipelineModel


@dataclass(frozen=True)
class ItemTimeline:
    """When one item entered and left each stage (cycle numbers)."""

    index: int
    enter: Dict[str, int]
    exit: Dict[str, int]

    @property
    def completion_cycle(self) -> int:
        return max(self.exit.values())


class PipelineSimulator:
    """Operational (per-item, per-stage) pipeline simulation."""

    def __init__(self, model: PipelineModel) -> None:
        self.model = model

    def simulate(self, n_items: int) -> List[ItemTimeline]:
        """Push ``n_items`` through the pipeline, cycle-accurately.

        Stage semantics: a stage admits a new item ``interval`` cycles
        after the previous admission (internal pipelining) and an item
        occupies the stage for ``depth`` cycles before it can enter the
        next one.
        """
        if n_items < 0:
            raise ValueError(f"n_items must be non-negative, got {n_items}")
        timelines: List[ItemTimeline] = []
        last_admission: Dict[str, int] = {}
        for index in range(n_items):
            enter: Dict[str, int] = {}
            exit_: Dict[str, int] = {}
            ready = 0  # cycle the item is available to the next stage
            for stage in self.model.stages:
                admit = ready
                if stage.name in last_admission:
                    admit = max(
                        admit, last_admission[stage.name] + stage.interval
                    )
                last_admission[stage.name] = admit
                enter[stage.name] = admit
                ready = admit + stage.depth
                exit_[stage.name] = ready
            timelines.append(ItemTimeline(index, enter, exit_))
        return timelines

    def total_cycles(self, n_items: int) -> int:
        """Completion cycle of the last item (0 for an empty stream)."""
        if n_items == 0:
            return 0
        return self.simulate(n_items)[-1].completion_cycle

    def matches_closed_form(self, n_items: int) -> bool:
        """Whether the simulation equals the analytic latency."""
        return self.total_cycles(n_items) == self.model.latency_cycles(
            n_items
        )
