"""Vectorized event-mode trace execution.

The scalar :meth:`~repro.core.device.StreamPIMDevice.execute_trace` loop
interprets one VPC at a time: per command it decomposes addresses,
builds a fresh cycle/energy profile, and merges dataclass breakdowns —
tens of microseconds of Python per command, which is what limits the
event mode to reduced problem sizes.

This module is the columnar fast path selected with
``execute_trace(..., engine="vector")``.  It splits the work into

* **bulk array passes** for everything value-parallel: subarray ids of
  every operand (one integer division per column), per-command durations
  and energies (profiled once per unique ``(opcode, size)`` shape and
  gathered), decode-ready times, and the exclusive-category time sweep
  (:func:`sweep_spans`);
* a **minimal busy-until scan** for the one genuinely sequential part —
  the per-subarray blocking recurrence — reduced to a handful of float
  ``max``/``add`` operations per command over precomputed columns;
* a **batched functional apply** that replays data movement on a dense,
  address-compacted buffer with NumPy slice arithmetic instead of
  per-word dictionary traffic.

Equivalence contract: for every trace the vector engine produces
*bit-identical* results to the scalar executor — the same ``RunStats``
(total time, time/energy breakdowns, counters) and the same word-store
contents.  Every floating-point accumulation is performed in the same
order with the same IEEE operations; the differential tests in
``tests/test_vector_exec.py`` assert exact equality over every shipped
workload generator.
"""

from __future__ import annotations

import math

from typing import Dict, List, Tuple

import numpy as np

from repro.isa.columnar import (
    ADD_BYTE,
    ColumnarTrace,
    MUL_BYTE,
    SMUL_BYTE,
    TRAN_BYTE,
)
from repro.isa.encoding import BYTE_TO_OPCODE
from repro.isa.vpc import VPC, VPCOpcode
from repro.rm.nanowire import ShiftError
from repro.sim.errors import SimulationFault
from repro.sim.stats import EnergyBreakdown, RunStats, TimeBreakdown


def _ordered_sum(values: np.ndarray) -> float:
    """Strict left-to-right float sum (matches sequential accumulation).

    The scalar executor accumulates breakdown components with repeated
    Python float additions; reproducing its results exactly requires the
    same association order, which pairwise reductions (``np.sum``) do
    not guarantee.  ``np.cumsum`` is a running total and therefore
    exactly that order; dropping exact zeros first is safe
    (adding 0.0 never changes a finite accumulator) and keeps the pass
    short.
    """
    compressed = values[np.nonzero(values)]
    if not len(compressed):
        return 0.0
    return float(compressed.cumsum()[-1])


def _ordered_sum_carry(carry: float, values: np.ndarray) -> float:
    """Continue a strict left-to-right float sum across a chunk boundary.

    ``_ordered_sum_carry(_ordered_sum(a), b)`` is bit-identical to
    ``_ordered_sum(concatenate((a, b)))``: the carry is the running
    total so far, and prepending it to the next chunk's compressed
    values preserves the association order exactly.  A zero carry can
    be dropped because every kept value is nonzero and ``0.0 + x == x``
    bitwise for finite nonzero ``x`` — the same argument that lets
    :func:`_ordered_sum` compress zeros.
    """
    compressed = values[np.nonzero(values)]
    if not len(compressed):
        return carry
    if carry:
        # Exact-zero test on purpose (not a tolerance): a zero carry is
        # dropped for the same reason _ordered_sum compresses zeros.
        compressed = np.concatenate(
            (np.array([carry], dtype=np.float64), compressed)
        )
    return float(compressed.cumsum()[-1])


def sweep_spans(
    starts: np.ndarray, finishes: np.ndarray, is_rw: np.ndarray
) -> TimeBreakdown:
    """Sweep busy spans into exclusive time categories (vectorized).

    Array-pass replacement for the O(spans^2) interval scan: sort the
    unique edges once, count rw/pim coverage per elementary interval
    with difference arrays, and reduce the per-interval contributions in
    edge order (bit-identical to the sequential scan).
    """
    if len(starts) == 0:
        return TimeBreakdown()
    starts = np.asarray(starts, dtype=np.float64)
    finishes = np.asarray(finishes, dtype=np.float64)
    is_rw = np.asarray(is_rw, dtype=bool)
    edges = np.unique(np.concatenate((starts, finishes)))
    n_edges = len(edges)
    if n_edges < 2:
        return TimeBreakdown()
    first = np.searchsorted(edges, starts)
    last = np.searchsorted(edges, finishes)
    rw_delta = np.bincount(
        first[is_rw], minlength=n_edges
    ) - np.bincount(last[is_rw], minlength=n_edges)
    pim_delta = np.bincount(
        first[~is_rw], minlength=n_edges
    ) - np.bincount(last[~is_rw], minlength=n_edges)
    rw_cover = np.cumsum(rw_delta)[:-1] > 0
    pim_cover = np.cumsum(pim_delta)[:-1] > 0
    widths = np.diff(edges)
    both = rw_cover & pim_cover
    rw_only = rw_cover & ~pim_cover
    pim_only = pim_cover & ~rw_cover
    return TimeBreakdown(
        read_ns=_ordered_sum(widths[rw_only] * 0.3),
        write_ns=_ordered_sum(widths[rw_only] * 0.7),
        process_ns=_ordered_sum(widths[pim_only]),
        overlapped_ns=_ordered_sum(widths[both]),
    )


def _unique_profiles(
    device, opcode: np.ndarray, size: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-command (duration, shift_pj, compute_pj) via shape dedup.

    ``SubarrayEngine.profile`` depends only on ``(opcode, size)``;
    real traces contain a handful of distinct shapes, so profiling each
    unique shape once and gathering is exact and cheap.
    """
    key = (opcode.astype(np.int64) << 48) | size
    uniq, inverse = np.unique(key, return_inverse=True)
    duration = np.empty(len(uniq), dtype=np.float64)
    shift_pj = np.empty(len(uniq), dtype=np.float64)
    compute_pj = np.empty(len(uniq), dtype=np.float64)
    for j, packed in enumerate(uniq.tolist()):
        code = packed >> 48
        words = packed & ((1 << 48) - 1)
        vpc_opcode = BYTE_TO_OPCODE[code]
        if vpc_opcode is VPCOpcode.TRAN:
            proto = VPC.tran(0, 0, words)
        else:
            proto = VPC(vpc_opcode, 0, 0, 0, words)
        profile = device.engine_model.profile(proto)
        duration[j] = profile.time_ns
        shift_pj[j] = profile.energy.shift_pj
        compute_pj[j] = profile.energy.compute_pj
    return duration[inverse], shift_pj[inverse], compute_pj[inverse]


def _copy_costs(
    device, words: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(duration, read_pj, write_pj) of a cross-subarray copy per size.

    Delegates each unique word count to the device's scalar cost model
    (same ``math.ceil`` float divisions) so the gathered values are the
    exact floats the scalar executor computes.
    """
    uniq, inverse = np.unique(words, return_inverse=True)
    model = device.config.prep_model
    duration = np.empty(len(uniq), dtype=np.float64)
    read_pj = np.empty(len(uniq), dtype=np.float64)
    write_pj = np.empty(len(uniq), dtype=np.float64)
    for j, count in enumerate(uniq.tolist()):
        duration[j] = device._copy_cost_ns(count)
        reads = math.ceil(count / model.access_width_words)
        writes = math.ceil(count / model.write_access_width_words)
        read_pj[j] = reads * device.timing.read_pj
        write_pj[j] = writes * device.timing.write_pj
    return duration[inverse], read_pj[inverse], write_pj[inverse]


def check_addresses(device, cols: ColumnarTrace) -> None:
    """Fail fast on out-of-range addresses.

    Matches the IndexError the scalar path's address decomposition
    raises (same first offender: lowest trace index, then the scalar's
    src1 -> src2 -> des order).
    """
    src1 = cols.src1
    src2 = cols.src2
    des = cols.des
    compute = cols.is_compute
    total_words = device.address_map.total_words
    bad_src1 = (src1 < 0) | (src1 >= total_words)
    bad_src2 = compute & ((src2 < 0) | (src2 >= total_words))
    bad_des = (des < 0) | (des >= total_words)
    bad_any = bad_src1 | bad_src2 | bad_des
    if bad_any.any():
        index = int(np.argmax(bad_any))
        if bad_src1[index]:
            value = int(src1[index])
        elif bad_src2[index]:
            value = int(src2[index])
        else:
            value = int(des[index])
        raise IndexError(
            f"address {value} out of range [0, {total_words})"
        )


class VectorExecState:
    """Resumable vector execution: one trace, fed as ordered chunks.

    Hoists everything :func:`execute_columnar` used to keep in local
    variables — the per-subarray busy-until map, the bus/total clocks,
    the span record, the breakdown accumulators, and the functional
    word state — so a trace can be executed incrementally while later
    chunks are still being lowered (the streamed compile/execute
    pipeline).  The contract is bit-identity: feeding a trace as any
    sequence of chunks and calling :meth:`finish` produces exactly the
    ``RunStats``, word-store contents, and span triple that one
    whole-trace :func:`execute_columnar` call produces.

    The float accumulations that make that non-trivial are handled
    explicitly: energy components carry the running left-to-right sum
    across chunks (:func:`_ordered_sum_carry`), decode-ready times are
    derived from the global command index, and the time sweep
    (:func:`sweep_spans`, which globally sorts span edges) runs once in
    :meth:`finish` over the accumulated spans.

    Functional state advances per chunk through a monitored fast apply
    (:func:`_apply_functional_chunk`); chunks whose values could
    interact with the operand-range checks fall back to the exact
    per-command loop, so error behaviour (message and offending
    command) is preserved.  ``exact_apply=True`` forces the per-command
    loop for every chunk — the phased :func:`execute_columnar` wrapper
    uses it to stay the unchanged bit-identity reference, and it is
    implied whenever a fault session is attached.
    """

    def __init__(
        self,
        device,
        workload: str = "trace",
        functional: bool = True,
        faults=None,
        span_sink=None,
        exact_apply: bool = False,
    ) -> None:
        if faults is not None and faults.abort_index is not None:
            raise ValueError(
                "abort fault sessions need the whole trace up front; "
                "use execute_columnar"
            )
        self.device = device
        self.workload = workload
        self.functional = device._functional_enabled(functional)
        self.faults = faults
        self.span_sink = span_sink
        self.exact_apply = bool(exact_apply or faults is not None)
        #: Commands consumed so far (the global index of the next one).
        self.offset = 0
        self.pim_vpcs = 0
        self.chunks_fed = 0
        #: Chunks the monitored fast apply handed to the exact loop.
        self.fallbacks = 0
        self._busy: Dict[int, float] = {}
        self._bus_busy = 0.0
        self._finish_time = 0.0
        self._span_start: List[float] = []
        self._span_finish: List[float] = []
        self._span_rw: List[bool] = []
        self._read_pj = 0.0
        self._write_pj = 0.0
        self._shift_pj = 0.0
        self._compute_pj = 0.0
        self._stats: "RunStats | None" = None

    def feed(self, cols: ColumnarTrace, check: bool = True) -> None:
        """Advance the execution by one chunk of the trace.

        ``check=False`` skips the address-range gate for callers that
        already ran it (the phased wrapper checks the whole trace up
        front; the streamed pipeline verifies each chunk through the
        SPV rules, which subsume it).
        """
        if self._stats is not None:
            raise RuntimeError("execution already finished")
        n = len(cols)
        if n == 0:
            return
        if check:
            check_addresses(self.device, cols)

        device = self.device
        opcode = cols.opcode
        size = cols.size
        compute = cols.is_compute
        self.pim_vpcs += int(compute.sum())

        # The scheduler's dependency relation names the resources each
        # command serialises on; it is a pure per-command map, so
        # per-chunk evaluation equals the whole-trace one.  (Lazy
        # import: core.device imports this module.)
        from repro.core.scheduler import trace_dependencies

        deps = trace_dependencies(
            cols, device.address_map.words_per_subarray
        )

        is_mul = opcode == MUL_BYTE
        profile_ns, profile_shift, profile_compute = _unique_profiles(
            device, opcode, size
        )
        copy_ns, copy_read, copy_write = _copy_costs(device, size)
        result_words = np.where(is_mul, 1, size)
        result_ns, result_read, result_write = _copy_costs(
            device, result_words
        )

        operand_copy = deps.remote >= 0
        result_copy = compute & (deps.dest >= 0)
        cross_tran = deps.uses_bus

        # --------------------------------------------------------------
        # Energy: per-command contributions are fully static; lay them
        # out in the scalar executor's event order (operand copy,
        # profile, result copy — three slots per command) and continue
        # the running left-to-right reduction across chunks.
        # --------------------------------------------------------------
        read_contrib = np.zeros(3 * n)
        write_contrib = np.zeros(3 * n)
        shift_contrib = np.zeros(3 * n)
        compute_contrib = np.zeros(3 * n)
        slot0 = 3 * np.flatnonzero(operand_copy)
        read_contrib[slot0] = copy_read[operand_copy]
        write_contrib[slot0] = copy_write[operand_copy]
        profiled = compute | ~cross_tran
        slot1 = 3 * np.flatnonzero(profiled) + 1
        shift_contrib[slot1] = profile_shift[profiled]
        compute_contrib[slot1] = profile_compute[profiled]
        slot1_cross = 3 * np.flatnonzero(cross_tran) + 1
        read_contrib[slot1_cross] = copy_read[cross_tran]
        write_contrib[slot1_cross] = copy_write[cross_tran]
        slot2 = 3 * np.flatnonzero(result_copy) + 2
        read_contrib[slot2] = result_read[result_copy]
        write_contrib[slot2] = result_write[result_copy]
        self._read_pj = _ordered_sum_carry(self._read_pj, read_contrib)
        self._write_pj = _ordered_sum_carry(self._write_pj, write_contrib)
        self._shift_pj = _ordered_sum_carry(self._shift_pj, shift_contrib)
        self._compute_pj = _ordered_sum_carry(
            self._compute_pj, compute_contrib
        )

        # --------------------------------------------------------------
        # Busy-until scan: the only sequential dependence.  The decode
        # clock continues from the global command index, and the busy
        # map / bus clock persist on the state across chunks.
        # --------------------------------------------------------------
        decode_ns = device.config.vpc_decode_ns
        ready_list = (
            np.arange(
                self.offset + 1, self.offset + n + 1, dtype=np.float64
            )
            * decode_ns
        ).tolist()
        busy = self._busy
        busy_get = busy.get
        bus_busy = self._bus_busy
        finish_time = self._finish_time
        start_append = self._span_start.append
        finish_append = self._span_finish.append
        rw_append = self._span_rw.append

        for (
            ready,
            code,
            home,
            remote,
            dest,
            profile_dur,
            copy_dur,
            result_dur,
            has_operand_copy,
            has_result_copy,
            is_cross,
        ) in zip(
            ready_list,
            opcode.tolist(),
            deps.home.tolist(),
            deps.remote.tolist(),
            deps.dest.tolist(),
            profile_ns.tolist(),
            copy_ns.tolist(),
            result_ns.tolist(),
            operand_copy.tolist(),
            result_copy.tolist(),
            cross_tran.tolist(),
        ):
            if code != TRAN_BYTE:
                home_busy = busy_get(home, 0.0)
                start = ready if ready > home_busy else home_busy
                if has_operand_copy:
                    remote_busy = busy_get(remote, 0.0)
                    begin = start if start > remote_busy else remote_busy
                    start = begin + copy_dur
                    busy[remote] = start
                    start_append(begin)
                    finish_append(start)
                    rw_append(True)
                finish = start + profile_dur
                busy[home] = finish
                start_append(start)
                finish_append(finish)
                rw_append(False)
                if has_result_copy:
                    dest_busy = busy_get(dest, 0.0)
                    begin = finish if finish > dest_busy else dest_busy
                    finish = begin + result_dur
                    busy[dest] = finish
                    start_append(begin)
                    finish_append(finish)
                    rw_append(True)
            elif not is_cross:
                source_busy = busy_get(home, 0.0)
                begin = ready if ready > source_busy else source_busy
                finish = begin + profile_dur
                busy[home] = finish
                start_append(begin)
                finish_append(finish)
                rw_append(False)
            else:
                begin = bus_busy if bus_busy > ready else ready
                source_busy = busy_get(home, 0.0)
                if source_busy > begin:
                    begin = source_busy
                dest_busy = busy_get(dest, 0.0)
                if dest_busy > begin:
                    begin = dest_busy
                finish = begin + copy_dur
                bus_busy = finish
                busy[home] = finish
                busy[dest] = finish
                start_append(begin)
                finish_append(finish)
                rw_append(True)
            if finish > finish_time:
                finish_time = finish

        self._bus_busy = bus_busy
        self._finish_time = finish_time

        if self.functional:
            if self.exact_apply or not _apply_functional_chunk(
                device, cols
            ):
                if not self.exact_apply:
                    self.fallbacks += 1
                _apply_functional_columnar(
                    device,
                    cols,
                    faults=self.faults,
                    index_offset=self.offset,
                )
        self.offset += n
        self.chunks_fed += 1

    def finish(self) -> RunStats:
        """Close the execution and assemble the final ``RunStats``.

        Idempotent: subsequent calls return the same object.  The span
        sink (when attached) receives the whole-trace
        ``(starts, finishes, is_rw)`` triple here, exactly as the
        phased path emits it.
        """
        if self._stats is not None:
            return self._stats
        stats = RunStats(
            platform="StPIM",
            workload=self.workload,
            time_ns=self._finish_time,
            time_breakdown=TimeBreakdown(),
            energy=EnergyBreakdown(
                read_pj=self._read_pj,
                write_pj=self._write_pj,
                shift_pj=self._shift_pj,
                compute_pj=self._compute_pj,
            ),
        )
        stats.bump("pim_vpcs", self.pim_vpcs)
        stats.bump("move_vpcs", self.offset - self.pim_vpcs)
        starts_array = np.array(self._span_start, dtype=np.float64)
        finishes_array = np.array(self._span_finish, dtype=np.float64)
        rw_array = np.array(self._span_rw, dtype=bool)
        # sweep_spans globally sorts span edges, so it must see the
        # whole span record at once — per-chunk sweeps would not merge
        # intervals that straddle a chunk boundary identically.
        stats.time_breakdown = sweep_spans(
            starts_array, finishes_array, rw_array
        )
        if self.span_sink is not None:
            self.span_sink.append(
                (starts_array, finishes_array, rw_array)
            )
        if self.faults is not None:
            stats.time_breakdown.add("recovery", self.faults.recovery_ns)
            stats.energy.add("recovery", self.faults.recovery_pj)
            stats.time_ns = self._finish_time + self.faults.recovery_ns
        self._stats = stats
        return stats


def execute_columnar(
    device,
    cols: ColumnarTrace,
    workload: str = "trace",
    functional: bool = True,
    faults=None,
    span_sink=None,
) -> RunStats:
    """Execute a columnar trace; equivalent to the scalar event loop.

    Verification is the caller's job (``StreamPIMDevice.execute_trace``
    runs the vectorized SPV001 gate before dispatching here).

    ``faults`` is an optional resolved
    :class:`~repro.resilience.session.FaultSession`: the session's
    pre-sampled decisions (silent corruption indices, recovery totals,
    abort position) are applied exactly as the scalar loop applies them,
    so fault-injected runs stay bit-identical across engines.

    ``span_sink``, when not None, receives one
    ``(starts, finishes, is_rw)`` array triple — the exact busy
    intervals the time sweep consumed, in emission order — so the
    observability layer (:mod:`repro.obs`) can batch-build named spans
    *after* the run without adding any per-event work here.

    This is the phased path: one :class:`VectorExecState` fed the whole
    trace as a single chunk, with the exact per-command functional loop
    (never the monitored fast apply) — it stays the unchanged
    bit-identity reference the streamed pipeline is tested against.
    """
    check_addresses(device, cols)

    if faults is not None and faults.abort_index is not None:
        # The scalar loop raises mid-trace with every earlier VPC
        # already applied; reproduce that observable state exactly.
        if device._functional_enabled(functional):
            _apply_functional_columnar(
                device, cols, faults=faults, limit=faults.abort_index
            )
        raise faults.abort_error()

    state = VectorExecState(
        device,
        workload=workload,
        functional=functional,
        faults=faults,
        span_sink=span_sink,
        exact_apply=True,
    )
    state.feed(cols, check=False)
    return state.finish()


# ----------------------------------------------------------------------
# Batched functional apply
# ----------------------------------------------------------------------
def _merge_ranges(
    starts: np.ndarray, ends: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Union of half-open ranges as sorted disjoint segments."""
    order = np.argsort(starts, kind="stable")
    starts = starts[order]
    running_end = np.maximum.accumulate(ends[order])
    breaks = np.empty(len(starts), dtype=bool)
    breaks[0] = True
    breaks[1:] = starts[1:] > running_end[:-1]
    segment_starts = starts[breaks]
    last = np.concatenate(
        (np.flatnonzero(breaks)[1:] - 1, [len(starts) - 1])
    )
    return segment_starts, running_end[last]


def _apply_functional_columnar(
    device, cols: ColumnarTrace, faults=None, limit=None, index_offset=0
) -> None:
    """Replay the trace's data movement on a compacted dense buffer.

    Word addresses referenced by the trace are compacted into one dense
    int64 buffer (seeded from the device's word store), every command is
    applied with NumPy slice arithmetic, and the written ranges are
    flushed back — producing exactly the word-store contents the scalar
    per-word dictionary path produces.

    ``faults`` corrupts destination slices at the session's undetected-
    drift indices (same rotation, same point in the apply sequence as
    the scalar hook); ``limit`` truncates the apply at an abort index so
    the flushed store matches the scalar loop's state when it raised.
    ``index_offset`` is the global trace index of ``cols[0]`` when the
    trace arrives as chunks — fault indices and diagnostics stay in
    whole-trace terms.
    """
    n = len(cols)
    count = n if limit is None else min(limit, n)
    if count == 0:
        return
    opcode = cols.opcode
    src1 = cols.src1.astype(np.int64)
    src2 = cols.src2.astype(np.int64)
    des = cols.des.astype(np.int64)
    size = cols.size.astype(np.int64)
    compute = cols.is_compute
    src1_len = np.where(opcode == SMUL_BYTE, 1, size)
    des_len = np.where(opcode == MUL_BYTE, 1, size)

    range_starts = np.concatenate((src1, src2[compute], des))
    range_ends = np.concatenate(
        (src1 + src1_len, (src2 + size)[compute], des + des_len)
    )
    segment_starts, segment_ends = _merge_ranges(range_starts, range_ends)
    lengths = segment_ends - segment_starts
    offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    buffer = np.zeros(int(lengths.sum()), dtype=np.int64)

    def compact(addresses: np.ndarray) -> np.ndarray:
        index = np.searchsorted(segment_starts, addresses, side="right") - 1
        return offsets[index] + (addresses - segment_starts[index])

    # Seed from the sparse store (reads of unseeded words default to 0).
    stored = device.store._words
    if stored:
        keys = np.fromiter(stored.keys(), dtype=np.int64, count=len(stored))
        values = np.fromiter(
            stored.values(), dtype=np.int64, count=len(stored)
        )
        index = np.searchsorted(segment_starts, keys, side="right") - 1
        inside = (index >= 0) & (keys < segment_ends[index])
        buffer[compact(keys[inside])] = values[inside]

    op_list = opcode.tolist()
    a_list = compact(src1).tolist()
    # src2 of TRAN rows is the no-operand sentinel, outside every
    # segment; substitute src1 so compact() stays in range (the value is
    # never used for TRAN rows).
    b_list = compact(np.where(compute, src2, src1)).tolist()
    d_list = compact(des).tolist()
    size_list = size.tolist()
    apply_compute = device.processor.apply
    drift_map = faults.drift if faults is not None else None
    if not drift_map:
        drift_map = None
        des_len_list = None
    else:
        des_len_list = des_len.tolist()

    i = -1
    try:
        for i in range(count):
            code = op_list[i]
            words = size_list[i]
            a = a_list[i]
            d = d_list[i]
            if code == TRAN_BYTE:
                if a != d:
                    chunk = buffer[a : a + words]
                    if abs(a - d) < words:
                        chunk = chunk.copy()
                    buffer[d : d + words] = chunk
            else:
                vpc_opcode = BYTE_TO_OPCODE[code]
                first_len = 1 if code == SMUL_BYTE else words
                result = apply_compute(
                    vpc_opcode,
                    buffer[a : a + first_len],
                    buffer[b_list[i] : b_list[i] + words],
                )
                buffer[d : d + len(result)] = result
            if drift_map is not None:
                drift = drift_map.get(index_offset + i)
                if drift:
                    span = des_len_list[i]
                    buffer[d : d + span] = faults.corrupt_values(
                        buffer[d : d + span], drift
                    )
    except ShiftError as exc:
        raise SimulationFault(
            f"shift escaped the nanowire model during replay: {exc}",
            index=index_offset + i,
        ) from exc

    written_starts, written_ends = _merge_ranges(
        des[:count], (des + des_len)[:count]
    )
    write = device.store.write
    for start, end, base in zip(
        written_starts.tolist(),
        written_ends.tolist(),
        compact(written_starts).tolist(),
    ):
        write(start, buffer[base : base + (end - start)])


def _apply_functional_chunk(device, cols: ColumnarTrace) -> bool:
    """Monitored fast functional apply of one trace chunk.

    Same compaction, seeding, and write-back as
    :func:`_apply_functional_columnar`, but the per-command loop inlines
    the processor arithmetic (``np.dot`` / ``+`` / scalar broadcast)
    instead of calling ``RMProcessor.apply``, dropping its per-command
    operand-range scans.  Soundness is restored by monitoring: the
    seeded buffer is checked once for negatives, and every compute
    result is mirrored into a flat monitor array checked once at the
    end.  If both checks pass, no per-command operand check could have
    fired — every value a command read was a non-negative seed or a
    non-negative earlier result, and int64 arithmetic is exact — so the
    buffer is bit-identical to the exact loop's and is flushed back.

    Returns False *without touching the store* when a negative value
    appears (seed or wrapped result): the caller replays the chunk
    through the exact per-command loop, which reproduces the canonical
    behaviour — including the exact ``ValueError`` at the exact first
    offending command if one of its operands really is negative.
    """
    n = len(cols)
    if n == 0:
        return True
    opcode = cols.opcode
    src1 = cols.src1.astype(np.int64)
    src2 = cols.src2.astype(np.int64)
    des = cols.des.astype(np.int64)
    size = cols.size.astype(np.int64)
    compute = cols.is_compute
    src1_len = np.where(opcode == SMUL_BYTE, 1, size)
    des_len = np.where(opcode == MUL_BYTE, 1, size)

    range_starts = np.concatenate((src1, src2[compute], des))
    range_ends = np.concatenate(
        (src1 + src1_len, (src2 + size)[compute], des + des_len)
    )
    segment_starts, segment_ends = _merge_ranges(range_starts, range_ends)
    lengths = segment_ends - segment_starts
    offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    buffer = np.zeros(int(lengths.sum()), dtype=np.int64)

    def compact(addresses: np.ndarray) -> np.ndarray:
        index = np.searchsorted(segment_starts, addresses, side="right") - 1
        return offsets[index] + (addresses - segment_starts[index])

    stored = device.store._words
    if stored:
        keys = np.fromiter(stored.keys(), dtype=np.int64, count=len(stored))
        values = np.fromiter(
            stored.values(), dtype=np.int64, count=len(stored)
        )
        index = np.searchsorted(segment_starts, keys, side="right") - 1
        inside = (index >= 0) & (keys < segment_ends[index])
        buffer[compact(keys[inside])] = values[inside]

    if bool((buffer < 0).any()):
        return False

    op_list = opcode.tolist()
    a_list = compact(src1).tolist()
    # src2 of TRAN rows is the no-operand sentinel, outside every
    # segment; substitute src1 so compact() stays in range (the value is
    # never used for TRAN rows).
    b_list = compact(np.where(compute, src2, src1)).tolist()
    d_list = compact(des).tolist()
    size_list = size.tolist()

    monitor = np.empty(int(des_len[compute].sum()), dtype=np.int64)
    pos = 0
    dot = np.dot
    for i in range(n):
        code = op_list[i]
        words = size_list[i]
        a = a_list[i]
        d = d_list[i]
        if code == TRAN_BYTE:
            if a != d:
                chunk = buffer[a : a + words]
                if abs(a - d) < words:
                    chunk = chunk.copy()
                buffer[d : d + words] = chunk
        elif code == MUL_BYTE:
            result = dot(
                buffer[a : a + words],
                buffer[b_list[i] : b_list[i] + words],
            )
            buffer[d] = result
            monitor[pos] = result
            pos += 1
        elif code == ADD_BYTE:
            result = (
                buffer[a : a + words]
                + buffer[b_list[i] : b_list[i] + words]
            )
            buffer[d : d + words] = result
            monitor[pos : pos + words] = result
            pos += words
        else:  # SMUL
            result = buffer[a] * buffer[b_list[i] : b_list[i] + words]
            buffer[d : d + words] = result
            monitor[pos : pos + words] = result
            pos += words
    if pos and bool((monitor[:pos] < 0).any()):
        return False

    written_starts, written_ends = _merge_ranges(des, des + des_len)
    write = device.store.write
    for start, end, base in zip(
        written_starts.tolist(),
        written_ends.tolist(),
        compact(written_starts).tolist(),
    ):
        write(start, buffer[base : base + (end - start)])
    return True
