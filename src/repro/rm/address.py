"""Device geometry and physical address mapping.

The paper's device (Table III) is ``bank-subarray-mat = 32-64-16`` with
256 KiB mats, i.e. an 8 GiB device.  Word addresses are decomposed
hierarchically: bank, then subarray, then mat, then word-track group,
then word index along the domain axis.  Matrix rows are laid out
contiguously inside one subarray so a vector operand of a VPC lives
entirely in one subarray (the constraint the ``distribute`` placement
relies on, section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rm.mat import MatConfig
from repro.rm.subarray import SubarrayConfig
from repro.rm.bank import BankConfig


@dataclass(frozen=True)
class DeviceGeometry:
    """Whole-device geometry (defaults = Table III).

    Attributes:
        banks: total bank count.
        pim_banks: banks whose subarrays embed RM processors.
        bank: per-bank geometry.
    """

    banks: int = 32
    pim_banks: int = 8
    bank: BankConfig = field(default_factory=BankConfig)

    def __post_init__(self) -> None:
        if self.banks <= 0:
            raise ValueError("banks must be positive")
        if not 0 <= self.pim_banks <= self.banks:
            raise ValueError(
                f"pim_banks ({self.pim_banks}) must be in [0, {self.banks}]"
            )

    @property
    def subarrays_per_bank(self) -> int:
        return self.bank.subarrays

    @property
    def total_subarrays(self) -> int:
        return self.banks * self.bank.subarrays

    @property
    def pim_subarrays(self) -> int:
        """Total PIM-capable subarrays (paper default: 8 * 64 = 512)."""
        return self.pim_banks * self.bank.subarrays

    @property
    def capacity_bytes(self) -> int:
        return self.banks * self.bank.capacity_bytes

    @property
    def subarray_capacity_words(self) -> int:
        return self.bank.subarray.capacity_words

    @property
    def word_bits(self) -> int:
        return self.bank.subarray.mat.word_bits

    def is_pim_bank(self, bank: int) -> bool:
        """PIM banks occupy the low bank indices by convention."""
        if not 0 <= bank < self.banks:
            raise IndexError(f"bank {bank} out of range [0, {self.banks})")
        return bank < self.pim_banks

    def with_pim_subarrays(self, total: int) -> "DeviceGeometry":
        """Derive a geometry with a different PIM subarray budget.

        Used by the Fig. 21 sensitivity sweep: the paper varies the PIM
        subarray count (128/256/512/1024) by "adjusting the number of
        subarrays per bank and the memory capacity per subarray".  We keep
        the per-bank subarray count fixed and vary the PIM bank count when
        the budget divides evenly, otherwise we scale subarrays per bank.
        """
        if total <= 0:
            raise ValueError("total must be positive")
        per_bank = self.bank.subarrays
        if total % per_bank == 0 and total // per_bank <= self.banks:
            return DeviceGeometry(
                banks=self.banks,
                pim_banks=total // per_bank,
                bank=self.bank,
            )
        # Scale subarrays per bank, keeping total capacity constant by
        # shrinking mats proportionally (as the paper describes).
        if total % self.pim_banks != 0:
            raise ValueError(
                f"cannot express {total} PIM subarrays with geometry "
                f"{self.banks} banks x {per_bank} subarrays"
            )
        new_per_bank = total // self.pim_banks
        scale = new_per_bank / per_bank
        old_mat = self.bank.subarray.mat
        new_domains = max(1, int(old_mat.domains_per_track / scale))
        new_mat = MatConfig(
            save_tracks=old_mat.save_tracks,
            transfer_tracks=old_mat.transfer_tracks,
            domains_per_track=new_domains,
            word_bits=old_mat.word_bits,
            ports_per_track=old_mat.ports_per_track,
        )
        new_sub = SubarrayConfig(
            mats=self.bank.subarray.mats,
            pim_mats=self.bank.subarray.pim_mats,
            mat=new_mat,
            row_buffer_bytes=self.bank.subarray.row_buffer_bytes,
        )
        new_bank = BankConfig(
            subarrays=new_per_bank,
            subarray=new_sub,
            pim_bank=self.bank.pim_bank,
        )
        return DeviceGeometry(
            banks=self.banks, pim_banks=self.pim_banks, bank=new_bank
        )


#: Geometry used throughout the paper's evaluation.
DEFAULT_GEOMETRY = DeviceGeometry()


@dataclass(frozen=True)
class PhysicalAddress:
    """Decomposed word address inside the device."""

    bank: int
    subarray: int
    mat: int
    group: int
    word: int

    def same_subarray(self, other: "PhysicalAddress") -> bool:
        return self.bank == other.bank and self.subarray == other.subarray


class AddressMap:
    """Bijective mapping between linear word addresses and hierarchy.

    Linear word address ``a`` decomposes most-significant-first as
    ``bank : subarray : mat : group : word`` so that consecutive words
    stay within one track group (streaming-friendly row-major layout).
    """

    def __init__(self, geometry: DeviceGeometry | None = None) -> None:
        self.geometry = geometry or DEFAULT_GEOMETRY
        sub = self.geometry.bank.subarray
        self._words_per_group = sub.mat.words_per_group
        self._groups_per_mat = sub.mat.word_groups
        self._mats_per_subarray = sub.mats
        self._subarrays_per_bank = self.geometry.bank.subarrays
        self._words_per_mat = self._words_per_group * self._groups_per_mat
        self._words_per_subarray = self._words_per_mat * self._mats_per_subarray
        self._words_per_bank = (
            self._words_per_subarray * self._subarrays_per_bank
        )
        self._total_words = self._words_per_bank * self.geometry.banks

    @property
    def total_words(self) -> int:
        return self._total_words

    @property
    def words_per_subarray(self) -> int:
        return self._words_per_subarray

    def decompose(self, linear: int) -> PhysicalAddress:
        """Map a linear word address to its physical location."""
        if not 0 <= linear < self._total_words:
            raise IndexError(
                f"address {linear} out of range [0, {self._total_words})"
            )
        bank, rest = divmod(linear, self._words_per_bank)
        subarray, rest = divmod(rest, self._words_per_subarray)
        mat, rest = divmod(rest, self._words_per_mat)
        group, word = divmod(rest, self._words_per_group)
        return PhysicalAddress(bank, subarray, mat, group, word)

    def compose(self, address: PhysicalAddress) -> int:
        """Map a physical location back to its linear word address."""
        self._check_component(address.bank, self.geometry.banks, "bank")
        self._check_component(
            address.subarray, self._subarrays_per_bank, "subarray"
        )
        self._check_component(address.mat, self._mats_per_subarray, "mat")
        self._check_component(address.group, self._groups_per_mat, "group")
        self._check_component(address.word, self._words_per_group, "word")
        return (
            (
                (
                    (address.bank * self._subarrays_per_bank + address.subarray)
                    * self._mats_per_subarray
                    + address.mat
                )
                * self._groups_per_mat
                + address.group
            )
            * self._words_per_group
            + address.word
        )

    def subarray_of(self, linear: int) -> tuple:
        """Return the (bank, subarray) pair holding a linear address."""
        physical = self.decompose(linear)
        return (physical.bank, physical.subarray)

    def subarray_base(self, bank: int, subarray: int) -> int:
        """Linear address of the first word of a subarray."""
        self._check_component(bank, self.geometry.banks, "bank")
        self._check_component(subarray, self._subarrays_per_bank, "subarray")
        return bank * self._words_per_bank + subarray * self._words_per_subarray

    @staticmethod
    def _check_component(value: int, bound: int, name: str) -> None:
        if not 0 <= value < bound:
            raise IndexError(f"{name} {value} out of range [0, {bound})")
