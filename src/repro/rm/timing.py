"""Latency and energy model of racetrack memory (Table III of the paper).

All latencies are per-operation nanoseconds and all energies are
per-operation picojoules, taken verbatim from the paper's configuration
table:

    latency: read 3.91 ns, write 10.27 ns, shift 2.13 ns
    energy:  read 3.80 pJ, write 11.79 pJ, shift 3.26 pJ
    PIM energy: add 0.03 pJ, mul 0.18 pJ
    memory core frequency: 100 MHz; fabrication process: 32 nm

The per-gate energy scaling law of section V-F ("the energy cost per gate
will drop from 20 pJ to 0.0008 pJ when the domain scale shrinks from
1.0 um to 32 nm") is a cubic law in the feature size, which
:func:`energy_per_gate_pj` implements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

#: Indices into the access-constant vectors returned by
#: :meth:`RMTimingConfig.access_latency_ns_vector` /
#: :meth:`RMTimingConfig.access_energy_pj_vector`.
ACCESS_READ = 0
ACCESS_WRITE = 1
ACCESS_SHIFT = 2


#: Reference point of the fabrication-process scaling law (section V-F).
_GATE_ENERGY_REF_PJ = 20.0
_GATE_ENERGY_REF_NM = 1000.0  # 1.0 um


def energy_per_gate_pj(process_nm: float) -> float:
    """Energy per domain-wall logic gate at a given fabrication process.

    Implements the cubic scaling law of section V-F, anchored at 20 pJ for
    a 1.0 um domain scale.  At 32 nm this evaluates to ~0.0008 pJ/gate, the
    figure quoted in the paper.

    Args:
        process_nm: feature size of the fabrication process in nanometres.

    Returns:
        Energy per gate operation in picojoules.

    Raises:
        ValueError: if ``process_nm`` is not positive.
    """
    if process_nm <= 0:
        raise ValueError(f"process_nm must be positive, got {process_nm}")
    scale = process_nm / _GATE_ENERGY_REF_NM
    return _GATE_ENERGY_REF_PJ * scale**3


@dataclass(frozen=True)
class RMTimingConfig:
    """Per-operation latency/energy constants of the RM device (Table III).

    Attributes:
        read_ns: latency of one access-port read.
        write_ns: latency of one access-port write.
        shift_ns: latency of one single-position shift operation.
        read_pj: energy of one access-port read.
        write_pj: energy of one access-port write.
        shift_pj: energy of one single-position shift operation.
        pim_add_pj: energy of one RM-processor 8-bit addition.
        pim_mul_pj: energy of one RM-processor 8-bit multiplication.
        core_freq_mhz: memory core (and RM processor pipeline) frequency.
        process_nm: fabrication process feature size.
    """

    read_ns: float = 3.91
    write_ns: float = 10.27
    shift_ns: float = 2.13
    read_pj: float = 3.80
    write_pj: float = 11.79
    shift_pj: float = 3.26
    pim_add_pj: float = 0.03
    pim_mul_pj: float = 0.18
    core_freq_mhz: float = 100.0
    process_nm: float = 32.0

    def __post_init__(self) -> None:
        for name in (
            "read_ns",
            "write_ns",
            "shift_ns",
            "read_pj",
            "write_pj",
            "shift_pj",
            "pim_add_pj",
            "pim_mul_pj",
            "core_freq_mhz",
            "process_nm",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    @property
    def cycle_ns(self) -> float:
        """Duration of one memory-core cycle in nanoseconds."""
        return 1e3 / self.core_freq_mhz

    def cycles_for_ns(self, duration_ns: float) -> int:
        """Number of whole core cycles needed to cover ``duration_ns``."""
        if duration_ns < 0:
            raise ValueError(f"duration must be non-negative, got {duration_ns}")
        return math.ceil(duration_ns / self.cycle_ns - 1e-12)

    @property
    def gate_energy_pj(self) -> float:
        """Energy of one domain-wall logic gate at ``process_nm``."""
        return energy_per_gate_pj(self.process_nm)

    # ------------------------------------------------------------------
    # Constant vectors (analytic-model inputs)
    # ------------------------------------------------------------------
    def access_latency_ns_vector(self) -> np.ndarray:
        """Table III access latencies as ``[read, write, shift]`` ns.

        Index with :data:`ACCESS_READ` / :data:`ACCESS_WRITE` /
        :data:`ACCESS_SHIFT` so vectorized cost models can gather
        latencies by access-kind arrays instead of branching.
        """
        return np.array(
            [self.read_ns, self.write_ns, self.shift_ns], dtype=np.float64
        )

    def access_energy_pj_vector(self) -> np.ndarray:
        """Table III access energies as ``[read, write, shift]`` pJ."""
        return np.array(
            [self.read_pj, self.write_pj, self.shift_pj], dtype=np.float64
        )

    def opcode_element_energy_pj_vector(self) -> np.ndarray:
        """Per-element RM-processor energy keyed by wire opcode byte.

        A length-256 vector: ``vec[opcode_byte]`` is the compute energy
        of processing one element under that opcode (``pim_mul_pj`` for
        MUL/SMUL, ``pim_add_pj`` for ADD, zero for TRAN and unused
        bytes), so a trace's total compute energy is one
        ``vec[trace.opcode] @ trace.size`` reduction.
        """
        from repro.isa.columnar import ADD_BYTE, MUL_BYTE, SMUL_BYTE

        vec = np.zeros(256, dtype=np.float64)
        vec[MUL_BYTE] = self.pim_mul_pj
        vec[SMUL_BYTE] = self.pim_mul_pj
        vec[ADD_BYTE] = self.pim_add_pj
        return vec

    def scaled_to_process(self, process_nm: float) -> "RMTimingConfig":
        """Return a copy of this config at a different fabrication process.

        Only the per-gate energy changes with process in our model; the
        Table III access constants are 32 nm figures and are kept as-is so
        the comparison of section V-F (gate energy vs process) is isolated.
        """
        return replace(self, process_nm=process_nm)


#: The paper's default configuration (Table III).
DEFAULT_TIMING = RMTimingConfig()


@dataclass
class EnergyModel:
    """Mutable accumulator charging RM operations against a timing config.

    Keeps separate tallies per operation category so breakdown figures
    (Figs. 4, 18, 20) can be regenerated.  All tallies are in picojoules.
    """

    timing: RMTimingConfig = field(default_factory=RMTimingConfig)
    read_pj: float = 0.0
    write_pj: float = 0.0
    shift_pj: float = 0.0
    compute_pj: float = 0.0
    n_reads: int = 0
    n_writes: int = 0
    n_shifts: int = 0
    n_adds: int = 0
    n_muls: int = 0
    n_gates: int = 0

    def charge_read(self, count: int = 1) -> None:
        self._check_count(count)
        self.n_reads += count
        self.read_pj += count * self.timing.read_pj

    def charge_write(self, count: int = 1) -> None:
        self._check_count(count)
        self.n_writes += count
        self.write_pj += count * self.timing.write_pj

    def charge_shift(self, count: int = 1) -> None:
        self._check_count(count)
        self.n_shifts += count
        self.shift_pj += count * self.timing.shift_pj

    def charge_add(self, count: int = 1) -> None:
        self._check_count(count)
        self.n_adds += count
        self.compute_pj += count * self.timing.pim_add_pj

    def charge_mul(self, count: int = 1) -> None:
        self._check_count(count)
        self.n_muls += count
        self.compute_pj += count * self.timing.pim_mul_pj

    def charge_gates(self, count: int = 1) -> None:
        """Charge raw domain-wall gate operations (used by dwlogic)."""
        self._check_count(count)
        self.n_gates += count
        self.compute_pj += count * self.timing.gate_energy_pj

    @property
    def total_pj(self) -> float:
        return self.read_pj + self.write_pj + self.shift_pj + self.compute_pj

    @property
    def transfer_pj(self) -> float:
        """Energy spent moving data (everything except compute)."""
        return self.read_pj + self.write_pj + self.shift_pj

    def merge(self, other: "EnergyModel") -> None:
        """Fold another accumulator's tallies into this one."""
        self.read_pj += other.read_pj
        self.write_pj += other.write_pj
        self.shift_pj += other.shift_pj
        self.compute_pj += other.compute_pj
        self.n_reads += other.n_reads
        self.n_writes += other.n_writes
        self.n_shifts += other.n_shifts
        self.n_adds += other.n_adds
        self.n_muls += other.n_muls
        self.n_gates += other.n_gates

    def reset(self) -> None:
        self.read_pj = 0.0
        self.write_pj = 0.0
        self.shift_pj = 0.0
        self.compute_pj = 0.0
        self.n_reads = 0
        self.n_writes = 0
        self.n_shifts = 0
        self.n_adds = 0
        self.n_muls = 0
        self.n_gates = 0

    @staticmethod
    def _check_count(count: int) -> None:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
