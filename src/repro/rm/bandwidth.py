"""Effective-bandwidth measurement on the RM substrate.

The analytic CPU-RM baseline uses a sustained-bandwidth constant; this
module derives where that constant must live by streaming real accesses
through the state-accurate :class:`~repro.rm.device.RMDevice`:

* a single subarray serves one row-level access per (shift + read), so
  its streaming rate is bounded by the shift distance between
  consecutive rows;
* interleaving the stream across subarrays overlaps their shifts, the
  RM analogue of DRAM bank interleaving, multiplying throughput until
  the channel saturates;
* random (far-jump) access pays near-worst-case shift distances.

Each access moves ``words_per_access`` bytes (the row-level access width
of the prep-cost model).
"""

from __future__ import annotations

from typing import List, Optional

from repro.rm.device import RMDevice


def _measure(
    device: RMDevice, addresses: List[int], words_per_access: int
) -> float:
    if not addresses:
        raise ValueError("need at least one address")
    if words_per_access <= 0:
        raise ValueError("words_per_access must be positive")
    total_ns = 0.0
    for address in addresses:
        _, latency = device.read_word(address)
        total_ns += latency
    return len(addresses) * words_per_access / total_ns


def sequential_bandwidth_gbps(
    device: Optional[RMDevice] = None,
    accesses: int = 64,
    words_per_access: int = 64,
) -> float:
    """Streaming bandwidth of one subarray (GB/s).

    Consecutive row-level accesses sit ``words_per_access`` words apart
    along the racetracks, so each access shifts that far before reading.
    """
    device = device or RMDevice()
    addresses = [i * words_per_access for i in range(accesses)]
    return _measure(device, addresses, words_per_access)


def interleaved_bandwidth_gbps(
    device: Optional[RMDevice] = None,
    accesses: int = 64,
    words_per_access: int = 64,
    subarrays: int = 8,
) -> float:
    """Streaming bandwidth with the stream spread over subarrays.

    Shifts in different subarrays overlap (independent shift drivers),
    so the channel sees one access latency per ``subarrays`` accesses —
    the RM analogue of DRAM bank interleaving.
    """
    if subarrays <= 0:
        raise ValueError("subarrays must be positive")
    device = device or RMDevice()
    amap = device.address_map
    addresses = []
    for i in range(accesses):
        base = amap.subarray_base(0, i % subarrays)
        addresses.append(base + (i // subarrays) * words_per_access)
    single = _measure(device, addresses, words_per_access)
    return single * subarrays


def random_jump_bandwidth_gbps(
    device: Optional[RMDevice] = None,
    accesses: int = 32,
    words_per_access: int = 64,
    seed: int = 5,
) -> float:
    """Bandwidth under far-jump (pointer-chase-like) access."""
    import numpy as np

    device = device or RMDevice()
    rng = np.random.default_rng(seed)
    span = device.geometry.bank.subarray.mat.words_per_group
    addresses = [
        int(rng.integers(0, span)) for _ in range(accesses)
    ]
    return _measure(device, addresses, words_per_access)
