"""Racetrack-memory (domain-wall memory) substrate.

This package models the memory device the paper builds on (section II-A):
domain-wall nanowires with access ports and shift ports, mats made of
save/transfer tracks, subarrays, banks, and the full device hierarchy,
together with the latency/energy model of Table III.
"""

from repro.rm.timing import (
    RMTimingConfig,
    EnergyModel,
    energy_per_gate_pj,
    DEFAULT_TIMING,
)
from repro.rm.nanowire import Racetrack, ShiftError, AccessPort
from repro.rm.mat import Mat, MatConfig
from repro.rm.subarray import Subarray, SubarrayConfig
from repro.rm.bank import Bank, BankConfig
from repro.rm.address import AddressMap, DeviceGeometry, PhysicalAddress
from repro.rm.device import RMDevice
from repro.rm.faults import (
    FaultInjector,
    FaultyRacetrack,
    ShiftFaultConfig,
    ShiftFaultModel,
)

__all__ = [
    "RMTimingConfig",
    "EnergyModel",
    "energy_per_gate_pj",
    "DEFAULT_TIMING",
    "Racetrack",
    "ShiftError",
    "AccessPort",
    "Mat",
    "MatConfig",
    "Subarray",
    "SubarrayConfig",
    "Bank",
    "BankConfig",
    "AddressMap",
    "DeviceGeometry",
    "PhysicalAddress",
    "RMDevice",
    "FaultInjector",
    "FaultyRacetrack",
    "ShiftFaultConfig",
    "ShiftFaultModel",
]
