"""Shift-fault reliability model (sections III-D and VI).

Racetrack shifts occasionally move the domain train one position too far
(over-shift) or not far enough (under-shift); the error probability
grows with the commanded shift distance, and misalignment silently
corrupts every subsequent access — which is why the paper lists fault
accumulation as the third challenge of long-distance nanowire transfers
and bounds every RM-bus shift to a single segment.

This module provides:

* :class:`ShiftFaultConfig` / :class:`ShiftFaultModel` — analytic fault
  probabilities per shift and per transfer, contrasting the segmented
  bus (one bounded shift per hop, guard-domain detection per segment)
  with a monolithic long-distance shift;
* :class:`FaultInjector` and :class:`FaultyRacetrack` — seeded fault
  injection for failure testing: shifts land off by one with the
  configured probability, and the wire records every injected fault so
  tests can assert both corruption and detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.rmbus import RMBusConfig
from repro.rm.nanowire import Racetrack, ShiftError


@dataclass(frozen=True)
class ShiftFaultConfig:
    """Fault-rate parameters.

    Attributes:
        p_per_step: probability that one single-position shift step
            lands off by one.  Together with the distance exponent this
            puts a 1024-domain shift near the literature-typical 1e-3
            raw fault rate per long shift.
        distance_exponent: how fault likelihood scales with commanded
            shift distance.  Section III-D: "when the length of
            nanowires increases, the over-shifting and under-shifting
            faults accumulate and become severe" — domain-wall velocity
            variation compounds, so the effective step count grows
            superlinearly with distance (exponent > 1).
        guard_detection: probability that a segment's guard domains
            catch a misaligned hop before it propagates (the
            DownShift/PIETT-style mechanisms the paper points to).
    """

    p_per_step: float = 1e-7
    distance_exponent: float = 1.3
    guard_detection: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_per_step < 1.0:
            raise ValueError("p_per_step must be in [0, 1)")
        if self.distance_exponent < 1.0:
            raise ValueError("distance_exponent must be >= 1")
        if not 0.0 <= self.guard_detection <= 1.0:
            raise ValueError("guard_detection must be in [0, 1]")


class ShiftFaultModel:
    """Analytic shift-fault probabilities."""

    def __init__(self, config: Optional[ShiftFaultConfig] = None) -> None:
        self.config = config or ShiftFaultConfig()

    def shift_fault_probability(self, distance: int) -> float:
        """Probability that a shift of ``distance`` positions misaligns.

        The effective step count grows superlinearly with the commanded
        distance (velocity-variation accumulation), so long shifts are
        disproportionately risky — the section III-D observation that
        motivates bounding every bus shift to one segment.
        """
        if distance < 0:
            raise ValueError(f"distance must be non-negative, got {distance}")
        effective_steps = float(distance) ** self.config.distance_exponent
        return 1.0 - (1.0 - self.config.p_per_step) ** effective_steps

    def undetected(self, probability: float) -> float:
        """Portion of a fault probability that guard domains miss."""
        return probability * (1.0 - self.config.guard_detection)

    # ------------------------------------------------------------------
    # Transfer-level comparisons (the section III-D argument)
    # ------------------------------------------------------------------
    def monolithic_transfer_fault(self, bus: RMBusConfig, words: int) -> float:
        """Undetected-fault probability of one long-distance transfer.

        The naive design shifts the data train the full wire length in
        one operation: faults accumulate over the whole distance and
        there is no per-segment guard to catch them mid-flight.
        """
        if words <= 0:
            raise ValueError(f"words must be positive, got {words}")
        per_word = self.shift_fault_probability(bus.length_domains)
        return 1.0 - (1.0 - per_word) ** words

    def segmented_transfer_fault(self, bus: RMBusConfig, words: int) -> float:
        """Undetected-fault probability of one segmented transfer.

        Every hop moves exactly one segment and is checked against the
        segment's guard domains, so only the undetected residue of each
        bounded hop accumulates.
        """
        if words <= 0:
            raise ValueError(f"words must be positive, got {words}")
        hop = self.shift_fault_probability(bus.segment_domains)
        undetected_hop = self.undetected(hop)
        hops_per_chunk = bus.n_segments
        chunks = -(-words // bus.words_per_segment)
        total_hops = chunks * hops_per_chunk
        return 1.0 - (1.0 - undetected_hop) ** total_hops

    def mitigation_factor(self, bus: RMBusConfig, words: int) -> float:
        """How much the segmented design reduces undetected faults."""
        segmented = self.segmented_transfer_fault(bus, words)
        monolithic = self.monolithic_transfer_fault(bus, words)
        if segmented == 0.0:
            return float("inf")
        return monolithic / segmented


class FaultInjector:
    """Seeded random over/under-shift injector.

    ``seed`` may be a plain integer or a ``numpy.random.SeedSequence``
    (e.g. one child of a ``SeedSequence.spawn`` fan-out, so parallel
    campaign workers draw from independent, reproducible streams).
    """

    def __init__(
        self,
        config: Optional[ShiftFaultConfig] = None,
        seed: Union[int, np.random.SeedSequence] = 0,
    ) -> None:
        self.config = config or ShiftFaultConfig()
        self._rng = np.random.default_rng(seed)
        self.injected = 0
        self.detected = 0
        self.undetected = 0

    @classmethod
    def spawn(
        cls,
        n: int,
        config: Optional[ShiftFaultConfig] = None,
        seed: Union[int, np.random.SeedSequence] = 0,
    ) -> list:
        """``n`` injectors with independent sub-streams of one seed.

        Uses ``SeedSequence.spawn`` so the fan-out is reproducible and
        identical whether the injectors end up in one process or many.
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        return [cls(config=config, seed=child) for child in root.spawn(n)]

    def guard_detects(self) -> bool:
        """Sample whether guard domains catch one misaligned hop.

        Updates the ``detected``/``undetected`` tallies so callers can
        compare observed detection rates against
        ``ShiftFaultConfig.guard_detection``.
        """
        caught = bool(self._rng.random() < self.config.guard_detection)
        if caught:
            self.detected += 1
        else:
            self.undetected += 1
        return caught

    def perturb(self, amount: int) -> int:
        """Return the distance a commanded shift actually moves.

        Each position step misfires independently; a misfired step
        either doubles (over-shift) or skips (under-shift) with equal
        likelihood.  A zero shift cannot misfire.
        """
        if amount == 0:
            return 0
        steps = abs(amount)
        faults = int(
            self._rng.binomial(steps, self.config.p_per_step)
        )
        if faults == 0:
            return amount
        self.injected += faults
        direction = 1 if amount > 0 else -1
        offsets = self._rng.choice([-1, 1], size=faults).sum()
        return amount + direction * int(offsets)


class FaultyRacetrack(Racetrack):
    """A racetrack whose shifts may land off-position.

    Behaves exactly like :class:`Racetrack` except that each shift's
    distance passes through a :class:`FaultInjector`; the wire counts
    the faults it has suffered, and ``misalignment`` reports how far the
    actual offset has drifted from where an ideal wire would be — the
    quantity guard-domain schemes detect.
    """

    def __init__(self, *args, injector: Optional[FaultInjector] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.injector = injector or FaultInjector()
        self._ideal_offset = 0

    def shift(self, amount: int) -> None:
        actual = self.injector.perturb(amount)
        if actual == amount:
            super().shift(amount)
        else:
            try:
                super().shift(actual)
            except ShiftError:
                # The faulty move hit the wire boundary: that is a
                # *detected* fault, so the shift is retried cleanly.  A
                # legitimate out-of-range command still raises below.
                super().shift(amount)
        self._ideal_offset += amount

    def _corrective_shift(self, amount: int) -> None:
        """Physically move the train without moving the ideal position.

        Repairs are corrective moves, not commanded data moves, so the
        ideal offset must stay put; the move still runs through the
        injector and can itself misfire.
        """
        self._ideal_offset -= amount
        self.shift(amount)

    def shift_with_guard(self, amount: int, max_retries: int = 3) -> bool:
        """Shift, guard-check the fresh drift, repair what was caught.

        Each position of drift introduced by the shift passes one
        guard-domain check independently (probability
        ``ShiftFaultConfig.guard_detection``); undetected positions
        silently persist as misalignment, detected positions are
        re-shifted away with up to ``max_retries`` corrective moves —
        each of which may itself misfire and be re-checked.  Returns
        True when the wire ends aligned.
        """
        if max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {max_retries}"
            )
        before = self.misalignment
        self.shift(amount)
        pending = self.misalignment - before
        retries = 0
        while pending != 0 and retries < max_retries:
            detected = 0
            for _ in range(abs(pending)):
                if self.injector.guard_detects():
                    detected += 1
            if detected == 0:
                break  # the drift escaped every guard check -> SDC
            correction = -detected if pending > 0 else detected
            target = self.misalignment + correction
            self._corrective_shift(correction)
            retries += 1
            pending = self.misalignment - target
        return self.misalignment == 0

    @property
    def misalignment(self) -> int:
        """Positions the wire has drifted from its ideal alignment."""
        return self.offset - self._ideal_offset

    @property
    def faulted(self) -> bool:
        return self.misalignment != 0
