"""RM subarray: a group of mats plus a local row buffer.

The subarray is the basic unit for serving memory requests (section II-A)
and, in StreamPIM, the unit of PIM parallelism: each PIM subarray hosts
one RM processor and a set of RM buses (section III-B).  Following the
SALP-inspired design the paper adopts, each subarray has a *local row
buffer* so different subarrays of one bank can have rows open
concurrently.

This module models the memory side: mats, the local row buffer, and the
mutual-exclusion rule between read/write operations and shift-based PIM
operations that motivates the ``unblock`` optimisation (section IV-C) —
"for the sake of data integrity, the shift operations cannot be executed
simultaneously with read/write operations in a single subarray".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.rm.mat import Mat, MatConfig
from repro.rm.timing import EnergyModel, RMTimingConfig


@dataclass(frozen=True)
class SubarrayConfig:
    """Geometry of one subarray.

    Defaults follow Table III / section V-G: 16 mats per subarray, of
    which 2 carry transfer tracks (PIM-facing mats).

    Attributes:
        mats: number of mats.
        pim_mats: how many mats have transfer tracks.
        mat: per-mat geometry.
        row_buffer_bytes: capacity of the local row buffer.
    """

    mats: int = 16
    pim_mats: int = 2
    mat: MatConfig = field(default_factory=MatConfig)
    row_buffer_bytes: int = 2048

    def __post_init__(self) -> None:
        if self.mats <= 0:
            raise ValueError("mats must be positive")
        if not 0 <= self.pim_mats <= self.mats:
            raise ValueError(
                f"pim_mats ({self.pim_mats}) must be in [0, {self.mats}]"
            )
        if self.row_buffer_bytes <= 0:
            raise ValueError("row_buffer_bytes must be positive")

    @property
    def capacity_bytes(self) -> int:
        return self.mats * self.mat.capacity_bytes

    @property
    def capacity_words(self) -> int:
        return self.mats * self.mat.capacity_words


class Subarray:
    """One subarray: mats, a local row buffer, and a busy ledger.

    The busy ledger records, on the simulated clock, until when the
    subarray is occupied by (a) read/write activity and (b) shift/compute
    activity.  The two classes mutually exclude each other within one
    subarray; the scheduler layers use :meth:`earliest_start` to model
    that blocking.
    """

    def __init__(
        self,
        config: Optional[SubarrayConfig] = None,
        energy: Optional[EnergyModel] = None,
        index: int = 0,
    ) -> None:
        self.config = config or SubarrayConfig()
        self.energy = energy if energy is not None else EnergyModel()
        self.index = index
        self._mats: List[Optional[Mat]] = [None] * self.config.mats
        self._open_row: Optional[int] = None
        # Time (in ns on the simulated clock) until which the subarray is
        # busy with any operation class.
        self.busy_until_ns = 0.0
        # What the subarray is currently doing ("idle" / "rw" / "pim").
        self.activity = "idle"

    # ------------------------------------------------------------------
    # Mats
    # ------------------------------------------------------------------
    def mat(self, index: int) -> Mat:
        """Get (lazily creating) mat ``index``.

        The first ``pim_mats`` mats are created with transfer tracks; the
        rest are plain memory mats (transfer_tracks = 0).
        """
        if not 0 <= index < self.config.mats:
            raise IndexError(
                f"mat {index} out of range [0, {self.config.mats})"
            )
        existing = self._mats[index]
        if existing is not None:
            return existing
        base = self.config.mat
        if index >= self.config.pim_mats:
            cfg = MatConfig(
                save_tracks=base.save_tracks,
                transfer_tracks=0,
                domains_per_track=base.domains_per_track,
                word_bits=base.word_bits,
                ports_per_track=base.ports_per_track,
            )
        else:
            cfg = base
        created = Mat(cfg, energy=self.energy)
        self._mats[index] = created
        return created

    @property
    def pim_capable(self) -> bool:
        return self.config.pim_mats > 0

    # ------------------------------------------------------------------
    # Row buffer
    # ------------------------------------------------------------------
    @property
    def open_row(self) -> Optional[int]:
        return self._open_row

    def activate_row(self, row: int) -> bool:
        """Open a row in the local buffer.

        Returns:
            True if this was a row-buffer hit (row already open).
        """
        if row < 0:
            raise ValueError(f"row must be non-negative, got {row}")
        hit = self._open_row == row
        self._open_row = row
        return hit

    def precharge(self) -> None:
        self._open_row = None

    # ------------------------------------------------------------------
    # Busy ledger (used by the scheduler layers)
    # ------------------------------------------------------------------
    def earliest_start(self, now_ns: float) -> float:
        """Earliest simulated time a new operation may start here."""
        return max(now_ns, self.busy_until_ns)

    def occupy(self, start_ns: float, duration_ns: float, kind: str) -> float:
        """Mark the subarray busy with ``kind`` in [start, start+duration].

        Args:
            start_ns: requested start; pushed back if the subarray is busy.
            duration_ns: how long the operation runs.
            kind: "rw" for read/write activity, "pim" for shift/compute.

        Returns:
            The finish time in ns.
        """
        if kind not in ("rw", "pim"):
            raise ValueError(f"kind must be 'rw' or 'pim', got {kind!r}")
        if duration_ns < 0:
            raise ValueError("duration_ns must be non-negative")
        begin = self.earliest_start(start_ns)
        finish = begin + duration_ns
        self.busy_until_ns = finish
        self.activity = kind
        return finish

    def release_at(self, now_ns: float) -> None:
        """Mark idle if the ledger says all work has drained by ``now``."""
        if now_ns >= self.busy_until_ns:
            self.activity = "idle"
