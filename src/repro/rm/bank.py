"""RM bank: subarrays plus global row buffer and decoder peripherals.

Banks are the top-level independently operable units (section III-B).
A StreamPIM device contains both *PIM banks* (whose subarrays embed RM
processors) and plain *memory banks* that only serve loads/stores; the
paper's default splits 32 banks into 8 PIM + 24 memory banks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.rm.subarray import Subarray, SubarrayConfig
from repro.rm.timing import EnergyModel


@dataclass(frozen=True)
class BankConfig:
    """Geometry of one bank.

    Attributes:
        subarrays: subarrays per bank (Table III: 64).
        subarray: per-subarray geometry.
        pim_bank: whether subarrays host RM processors.
    """

    subarrays: int = 64
    subarray: SubarrayConfig = field(default_factory=SubarrayConfig)
    pim_bank: bool = False

    def __post_init__(self) -> None:
        if self.subarrays <= 0:
            raise ValueError("subarrays must be positive")

    @property
    def capacity_bytes(self) -> int:
        return self.subarrays * self.subarray.capacity_bytes


class Bank:
    """One bank with lazily created subarrays and a global row buffer."""

    def __init__(
        self,
        config: Optional[BankConfig] = None,
        energy: Optional[EnergyModel] = None,
        index: int = 0,
    ) -> None:
        self.config = config or BankConfig()
        self.energy = energy if energy is not None else EnergyModel()
        self.index = index
        self._subarrays: List[Optional[Subarray]] = [None] * self.config.subarrays
        self._global_open_row: Optional[int] = None
        self.busy_until_ns = 0.0

    def subarray(self, index: int) -> Subarray:
        """Get (lazily creating) subarray ``index``."""
        if not 0 <= index < self.config.subarrays:
            raise IndexError(
                f"subarray {index} out of range [0, {self.config.subarrays})"
            )
        existing = self._subarrays[index]
        if existing is None:
            base = self.config.subarray
            if not self.config.pim_bank:
                cfg = SubarrayConfig(
                    mats=base.mats,
                    pim_mats=0,
                    mat=base.mat,
                    row_buffer_bytes=base.row_buffer_bytes,
                )
            else:
                cfg = base
            existing = Subarray(cfg, energy=self.energy, index=index)
            self._subarrays[index] = existing
        return existing

    @property
    def pim_subarrays(self) -> int:
        """How many subarrays in this bank can execute PIM commands."""
        return self.config.subarrays if self.config.pim_bank else 0

    def iter_instantiated(self):
        """Yield subarrays that have been materialised so far."""
        for subarray in self._subarrays:
            if subarray is not None:
                yield subarray

    # Global row buffer (regular memory path)
    @property
    def global_open_row(self) -> Optional[int]:
        return self._global_open_row

    def activate_global_row(self, row: int) -> bool:
        """Open a row in the bank-level buffer; return hit/miss."""
        if row < 0:
            raise ValueError(f"row must be non-negative, got {row}")
        hit = self._global_open_row == row
        self._global_open_row = row
        return hit

    def precharge_global(self) -> None:
        self._global_open_row = None
