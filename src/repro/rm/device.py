"""Whole RM device: banks behind an address map, serving word requests.

This is the plain *memory* view of the device — the path the host (or a
bank controller doing inter-subarray data preparation) uses for regular
loads and stores, with read/write/shift latency and energy charged from
Table III.  The PIM execution path lives in :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.rm.address import AddressMap, DeviceGeometry, PhysicalAddress
from repro.rm.bank import Bank, BankConfig
from repro.rm.timing import EnergyModel, RMTimingConfig


class RMDevice:
    """Racetrack-memory device with lazily materialised banks.

    Word-granular reads/writes walk the full hierarchy (bank → subarray →
    mat → track group), really move bits, and charge latency/energy.

    Args:
        geometry: device geometry; defaults to the paper's 8 GiB device.
        timing: latency/energy constants; defaults to Table III.
    """

    def __init__(
        self,
        geometry: Optional[DeviceGeometry] = None,
        timing: Optional[RMTimingConfig] = None,
    ) -> None:
        self.geometry = geometry or DeviceGeometry()
        self.timing = timing or RMTimingConfig()
        self.energy = EnergyModel(timing=self.timing)
        self.address_map = AddressMap(self.geometry)
        self._banks: Dict[int, Bank] = {}

    def bank(self, index: int) -> Bank:
        """Get (lazily creating) bank ``index``."""
        if not 0 <= index < self.geometry.banks:
            raise IndexError(
                f"bank {index} out of range [0, {self.geometry.banks})"
            )
        existing = self._banks.get(index)
        if existing is None:
            existing = Bank(
                BankConfig(
                    subarrays=self.geometry.bank.subarrays,
                    subarray=self.geometry.bank.subarray,
                    pim_bank=self.geometry.is_pim_bank(index),
                ),
                energy=self.energy,
                index=index,
            )
            self._banks[index] = existing
        return existing

    # ------------------------------------------------------------------
    # Word-granular access
    # ------------------------------------------------------------------
    def read_word(self, linear: int) -> Tuple[int, float]:
        """Read one word.

        Returns:
            ``(value, latency_ns)`` — latency includes the shift needed to
            align the word under an access port plus the port read.
        """
        loc = self.address_map.decompose(linear)
        mat = self._mat_at(loc)
        before = mat.energy.n_shifts
        value = mat.read_word(loc.group, loc.word)
        shift_distance = mat.energy.n_shifts - before
        latency = self.timing.read_ns + shift_distance * self.timing.shift_ns
        return value, latency

    def write_word(self, linear: int, value: int) -> float:
        """Write one word; returns the latency in ns."""
        loc = self.address_map.decompose(linear)
        mat = self._mat_at(loc)
        before = mat.energy.n_shifts
        mat.write_word(loc.group, loc.word, value)
        shift_distance = mat.energy.n_shifts - before
        return self.timing.write_ns + shift_distance * self.timing.shift_ns

    def read_vector(self, linear: int, length: int) -> Tuple[List[int], float]:
        """Read ``length`` consecutive words; returns (values, latency)."""
        values: List[int] = []
        latency = 0.0
        for i in range(length):
            value, item_latency = self.read_word(linear + i)
            values.append(value)
            latency += item_latency
        return values, latency

    def write_vector(self, linear: int, values: List[int]) -> float:
        """Write consecutive words; returns total latency in ns."""
        latency = 0.0
        for i, value in enumerate(values):
            latency += self.write_word(linear + i, value)
        return latency

    # ------------------------------------------------------------------
    def subarray_at(self, bank: int, subarray: int):
        """Direct access to a subarray object (used by the PIM engine)."""
        return self.bank(bank).subarray(subarray)

    def _mat_at(self, loc: PhysicalAddress):
        return self.bank(loc.bank).subarray(loc.subarray).mat(loc.mat)

    @property
    def instantiated_banks(self) -> int:
        return len(self._banks)
