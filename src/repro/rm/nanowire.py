"""Domain-wall nanowire (racetrack) state model.

A racetrack stores one bit per magnetic domain (Fig. 1 of the paper).
Domains are moved past fixed access ports by *shift* operations; a domain
aligned with an access port can be read or written through the MTJ formed
by the domain and the port's reference layer.  Extra *overhead* domains
are reserved at both ends of the wire so data is not pushed off the ends
while shifting (section II-A).

The model here is state-accurate: bits really move when the wire shifts,
reads return the stored bit, and over-shifting raises :class:`ShiftError`
instead of silently corrupting data.  Timing/energy is charged by callers
through :class:`repro.rm.timing.EnergyModel`; this module only maintains
operation counters so that higher layers can audit behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


class ShiftError(RuntimeError):
    """Raised when a shift would push data domains off the nanowire."""


@dataclass(frozen=True)
class AccessPort:
    """A read/write port at a fixed physical position along the wire.

    Attributes:
        position: index of the physical domain slot the port is aligned to.
        read_only: transfer-track style ports that can only sense data.
    """

    position: int
    read_only: bool = False


class Racetrack:
    """One domain-wall nanowire with data domains and overhead domains.

    The wire has ``n_domains`` data slots plus ``overhead`` reserved slots
    on each side.  The current shift offset tracks how far the data block
    has been moved from its home position; reads and writes address data
    by *logical* index, which the wire maps to physical positions using
    the offset.

    Args:
        n_domains: number of data-bit domains.
        ports: physical positions of the access ports.  Defaults to a
            single port in the middle of the data region.
        overhead: reserved domains on each side.  Defaults to the port
            count requirement described in the paper (enough to align any
            domain with its nearest port, never exceeding ``n_domains``).
    """

    def __init__(
        self,
        n_domains: int,
        ports: Optional[Sequence[int]] = None,
        overhead: Optional[int] = None,
    ) -> None:
        if n_domains <= 0:
            raise ValueError(f"n_domains must be positive, got {n_domains}")
        self.n_domains = n_domains
        if ports is None:
            ports = [n_domains // 2]
        if not ports:
            raise ValueError("a racetrack needs at least one access port")
        port_list = sorted(set(int(p) for p in ports))
        if port_list[0] < 0 or port_list[-1] >= n_domains:
            raise ValueError(
                f"port positions {port_list} out of range [0, {n_domains})"
            )
        self.ports: List[AccessPort] = [AccessPort(p) for p in port_list]
        if overhead is None:
            # Enough slack to bring any domain under its nearest port:
            # with k evenly spaced ports this is ~n/k, and the paper notes
            # it never exceeds the number of regular domains.
            overhead = min(
                n_domains, max(1, -(-n_domains // len(port_list)))
            )
        if overhead < 0:
            raise ValueError(f"overhead must be non-negative, got {overhead}")
        self.overhead = overhead
        # Physical storage: [left overhead][data][right overhead].
        self._bits: List[int] = [0] * (n_domains + 2 * overhead)
        # Offset of logical bit 0 from physical slot `overhead`; positive
        # offset means the data block has moved right.
        self._offset = 0
        self.shift_count = 0
        self.read_count = 0
        self.write_count = 0

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def total_length(self) -> int:
        """Physical length of the wire, including overhead domains."""
        return len(self._bits)

    @property
    def offset(self) -> int:
        """Current displacement of the data block from its home position."""
        return self._offset

    def _physical(self, logical: int) -> int:
        """Array slot of a logical bit.

        The backing array is logical-indexed: bits do not move within it
        when the wire shifts.  The offset only tracks which logical bit
        faces each (physically fixed) port, which is the observable
        effect of a real shift.
        """
        return self.overhead + logical

    def _logical_under(self, port: AccessPort) -> int:
        """Logical bit index currently aligned with a port.

        Port positions are expressed in home-logical coordinates (the
        data-region index a port faces when the wire is unshifted), so
        the bit under a port is ``position - offset``.
        """
        return port.position - self._offset

    # ------------------------------------------------------------------
    # Shift
    # ------------------------------------------------------------------
    def shift(self, amount: int) -> None:
        """Shift the whole data block by ``amount`` positions.

        Positive ``amount`` moves data toward higher positions.  One call
        models one shift operation regardless of distance (the caller
        charges latency/energy per unit distance if desired).

        Raises:
            ShiftError: if the move would push data into/past the ends.
        """
        if amount == 0:
            return
        new_offset = self._offset + amount
        if new_offset < -self.overhead or new_offset > self.overhead:
            raise ShiftError(
                f"shift by {amount} moves offset to {new_offset}, outside "
                f"overhead range [-{self.overhead}, {self.overhead}]"
            )
        self._offset = new_offset
        self.shift_count += abs(amount)

    def shifts_to_align(self, logical: int, port_index: int = 0) -> int:
        """Shift distance needed to align ``logical`` with a given port."""
        self._check_logical(logical)
        port = self.ports[port_index]
        return port.position - (self._offset + logical)

    def align(self, logical: int, port_index: int = 0) -> int:
        """Shift so that logical bit ``logical`` sits under the port.

        Returns:
            The (absolute) number of positions shifted.
        """
        distance = self.shifts_to_align(logical, port_index)
        self.shift(distance)
        return abs(distance)

    def nearest_port(self, logical: int) -> int:
        """Index of the port closest to a logical bit's current position.

        Only ports whose alignment keeps the data block inside the
        overhead window are eligible — after long drifts in one
        direction, the physically nearest port may be unreachable and a
        farther port (shifting back the other way) must serve the
        access.

        Raises:
            ShiftError: if no port can be aligned within the overhead.
        """
        self._check_logical(logical)
        pos = self._offset + logical
        candidates = []
        for index, port in enumerate(self.ports):
            new_offset = port.position - logical
            if -self.overhead <= new_offset <= self.overhead:
                candidates.append((abs(port.position - pos), index))
        if not candidates:
            raise ShiftError(
                f"no access port can reach logical bit {logical} within "
                f"the overhead window"
            )
        return min(candidates)[1]

    # ------------------------------------------------------------------
    # Access-port read/write
    # ------------------------------------------------------------------
    def read_at_port(self, port_index: int = 0) -> int:
        """Read the bit currently aligned with a port."""
        port = self.ports[port_index]
        logical = self._logical_under(port)
        self._check_logical(logical)
        self.read_count += 1
        return self._bits[self._physical(logical)]

    def write_at_port(self, bit: int, port_index: int = 0) -> None:
        """Write the bit currently aligned with a port."""
        port = self.ports[port_index]
        if port.read_only:
            raise PermissionError(f"port {port_index} is read-only")
        logical = self._logical_under(port)
        self._check_logical(logical)
        self._bits[self._physical(logical)] = self._check_bit(bit)
        self.write_count += 1

    def transverse_read(self, port_index: int, span: int) -> int:
        """Count of set bits across ``span`` consecutive domains at a port.

        Models the *Transverse Read* mechanism the CORUSCANT baseline
        relies on (section II-B): a single sensing operation that reports
        how many of the ``span`` domains downstream of the port are set.
        """
        if span <= 0:
            raise ValueError(f"span must be positive, got {span}")
        port = self.ports[port_index]
        start = self._logical_under(port)
        self._check_logical(start)
        self._check_logical(start + span - 1)
        self.read_count += 1
        phys = self._physical(start)
        return sum(self._bits[phys : phys + span])

    # ------------------------------------------------------------------
    # Whole-track convenience accessors (used by mats and tests; these
    # peek at state without modelling port alignment).
    # ------------------------------------------------------------------
    def get(self, logical: int) -> int:
        """Peek at a logical bit without modelling port access."""
        self._check_logical(logical)
        return self._bits[self._physical(logical)]

    def set(self, logical: int, bit: int) -> None:
        """Poke a logical bit without modelling port access."""
        self._check_logical(logical)
        self._bits[self._physical(logical)] = self._check_bit(bit)

    def load(self, bits: Sequence[int]) -> None:
        """Initialise the data region (e.g. when modelling DMA fill)."""
        if len(bits) != self.n_domains:
            raise ValueError(
                f"expected {self.n_domains} bits, got {len(bits)}"
            )
        for i, bit in enumerate(bits):
            self.set(i, bit)

    def dump(self) -> List[int]:
        """Return a copy of the data region's bits."""
        return [self.get(i) for i in range(self.n_domains)]

    # ------------------------------------------------------------------
    def _check_logical(self, logical: int) -> None:
        if not 0 <= logical < self.n_domains:
            raise IndexError(
                f"logical index {logical} out of range [0, {self.n_domains})"
            )

    @staticmethod
    def _check_bit(bit: int) -> int:
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        return bit

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Racetrack(n_domains={self.n_domains}, ports="
            f"{[p.position for p in self.ports]}, offset={self._offset})"
        )
