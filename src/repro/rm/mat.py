"""RM mat: an array of racetracks with save tracks and transfer tracks.

Section III-E of the paper splits the racetracks of (some) mats into two
kinds: *save tracks* hold data and carry access ports for regular memory
reads/writes; *transfer tracks* have no access ports and only stream data
onto the RM bus.  Save and transfer tracks are joined by fan-out
nanowires, so data can be copied (not moved) from a save track onto a
transfer track — this is the non-destructive read path used by PIM.

Words are bit-interleaved across ``word_bits`` adjacent tracks at the same
domain offset, the standard DWM array layout: reading a word aligns one
domain column under the ports of a track group and senses all bits in
parallel (one read operation per word).

Tracks are instantiated lazily; an untouched mat costs almost no memory,
which lets the full 8 GiB device geometry be represented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.rm.nanowire import Racetrack
from repro.rm.timing import EnergyModel, RMTimingConfig


@dataclass(frozen=True)
class MatConfig:
    """Geometry of one mat.

    Defaults follow Table III: 512 save tracks and 512 transfer tracks per
    (PIM-capable) mat, 8-bit words, and enough domains per track for a
    256 KiB mat capacity.

    Attributes:
        save_tracks: number of data-holding racetracks.
        transfer_tracks: number of bus-facing racetracks (0 for plain
            memory mats).
        domains_per_track: bits stored on each racetrack.
        word_bits: width of one operand word (the paper uses 8).
        ports_per_track: access ports on each save track.
    """

    save_tracks: int = 512
    transfer_tracks: int = 512
    domains_per_track: int = 4096
    word_bits: int = 8
    ports_per_track: int = 4

    def __post_init__(self) -> None:
        if self.save_tracks <= 0:
            raise ValueError("save_tracks must be positive")
        if self.transfer_tracks < 0:
            raise ValueError("transfer_tracks must be non-negative")
        if self.domains_per_track <= 0:
            raise ValueError("domains_per_track must be positive")
        if self.word_bits <= 0:
            raise ValueError("word_bits must be positive")
        if self.save_tracks % self.word_bits != 0:
            raise ValueError(
                f"save_tracks ({self.save_tracks}) must be a multiple of "
                f"word_bits ({self.word_bits})"
            )
        if self.ports_per_track <= 0:
            raise ValueError("ports_per_track must be positive")

    @property
    def capacity_bits(self) -> int:
        return self.save_tracks * self.domains_per_track

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_bits // 8

    @property
    def word_groups(self) -> int:
        """Number of word-wide track groups."""
        return self.save_tracks // self.word_bits

    @property
    def words_per_group(self) -> int:
        """Words stored along the domain axis of one track group."""
        return self.domains_per_track

    @property
    def capacity_words(self) -> int:
        return self.word_groups * self.words_per_group


def _port_positions(config: MatConfig) -> List[int]:
    """Evenly spaced access-port positions along a save track."""
    n, k = config.domains_per_track, config.ports_per_track
    stride = n // k
    return [min(n - 1, stride // 2 + i * stride) for i in range(k)]


class Mat:
    """One mat: lazily instantiated save tracks plus transfer tracks.

    Word addressing is ``(group, index)``: ``group`` selects a bundle of
    ``word_bits`` adjacent save tracks; ``index`` selects the domain
    column within the bundle.  All accesses charge latency/energy via the
    supplied :class:`EnergyModel` and return shift distances so callers
    can account cycles.
    """

    def __init__(
        self,
        config: MatConfig | None = None,
        energy: EnergyModel | None = None,
        track_factory=None,
    ) -> None:
        """Args:
            config: mat geometry.
            energy: shared energy accumulator.
            track_factory: optional callable ``(n_domains, ports) ->
                Racetrack`` used to build save tracks — the hook fault
                injection uses to substitute
                :class:`~repro.rm.faults.FaultyRacetrack` wires.
        """
        self.config = config or MatConfig()
        self.energy = energy if energy is not None else EnergyModel()
        self._save: Dict[int, Racetrack] = {}
        self._transfer: Dict[int, Racetrack] = {}
        self._ports = _port_positions(self.config)
        self._track_factory = track_factory

    # ------------------------------------------------------------------
    # Track instantiation
    # ------------------------------------------------------------------
    def save_track(self, index: int) -> Racetrack:
        """Get (lazily creating) save track ``index``."""
        if not 0 <= index < self.config.save_tracks:
            raise IndexError(
                f"save track {index} out of range "
                f"[0, {self.config.save_tracks})"
            )
        track = self._save.get(index)
        if track is None:
            if self._track_factory is not None:
                track = self._track_factory(
                    self.config.domains_per_track, list(self._ports)
                )
            else:
                track = Racetrack(
                    self.config.domains_per_track, ports=self._ports
                )
            self._save[index] = track
        return track

    def transfer_track(self, index: int) -> Racetrack:
        """Get (lazily creating) transfer track ``index``."""
        if not 0 <= index < self.config.transfer_tracks:
            raise IndexError(
                f"transfer track {index} out of range "
                f"[0, {self.config.transfer_tracks})"
            )
        track = self._transfer.get(index)
        if track is None:
            # Transfer tracks carry no access ports of their own; model
            # them with a single read-only sense point at the bus end.
            track = Racetrack(
                self.config.domains_per_track,
                ports=[self.config.domains_per_track - 1],
            )
            self._transfer[index] = track
        return track

    @property
    def instantiated_tracks(self) -> int:
        """How many tracks have been materialised (memory footprint aid)."""
        return len(self._save) + len(self._transfer)

    # ------------------------------------------------------------------
    # Word access (regular memory path: access ports, electronic signals)
    # ------------------------------------------------------------------
    def read_word(self, group: int, index: int) -> int:
        """Read one word through access ports (destructive of alignment).

        Aligns the target domain column under the nearest port of each
        track in the group, then senses all ``word_bits`` bits in parallel
        (one read operation at the word level, as the bits of one word
        share wordline timing).

        Returns:
            The word value (unsigned, ``word_bits`` wide).
        """
        tracks = self._group_tracks(group)
        self._check_index(index)
        shift_distance = self._align_group(tracks, index)
        value = 0
        for bit_pos, track in enumerate(tracks):
            port = track.nearest_port(index)
            bit = track.read_at_port(port)
            value |= bit << bit_pos
        self.energy.charge_read()
        self.energy.charge_shift(shift_distance)
        return value

    def write_word(self, group: int, index: int, value: int) -> None:
        """Write one word through access ports."""
        tracks = self._group_tracks(group)
        self._check_index(index)
        self._check_value(value)
        shift_distance = self._align_group(tracks, index)
        for bit_pos, track in enumerate(tracks):
            port = track.nearest_port(index)
            track.write_at_port((value >> bit_pos) & 1, port)
        self.energy.charge_write()
        self.energy.charge_shift(shift_distance)

    def read_vector(self, group: int, start: int, length: int) -> List[int]:
        """Read ``length`` consecutive words from one track group."""
        return [self.read_word(group, start + i) for i in range(length)]

    def write_vector(
        self, group: int, start: int, values: Iterable[int]
    ) -> None:
        """Write consecutive words into one track group."""
        for i, value in enumerate(values):
            self.write_word(group, start + i, value)

    # ------------------------------------------------------------------
    # PIM path: non-destructive copy onto transfer tracks (fan-out)
    # ------------------------------------------------------------------
    def copy_to_transfer(self, group: int, start: int, length: int) -> int:
        """Copy words from save tracks to transfer tracks via fan-out.

        The fan-out junction duplicates each domain as it shifts past, so
        the save track keeps its data (non-destructive read) while the
        transfer track receives a replica ready to stream onto the RM bus.
        Only shift operations are charged — this is the path that avoids
        electromagnetic conversion.

        Returns:
            Number of unit shifts performed (for cycle accounting).
        """
        if self.config.transfer_tracks == 0:
            raise RuntimeError("this mat has no transfer tracks")
        tracks = self._group_tracks(group)
        self._check_index(start)
        self._check_index(start + length - 1)
        t_group = group % (self.config.transfer_tracks // self.config.word_bits)
        shifts = 0
        for bit_pos, track in enumerate(tracks):
            dest = self.transfer_track(
                t_group * self.config.word_bits + bit_pos
            )
            for offset in range(length):
                dest.set(start + offset, track.get(start + offset))
            shifts += length
        self.energy.charge_shift(shifts)
        return shifts

    # ------------------------------------------------------------------
    def _group_tracks(self, group: int) -> List[Racetrack]:
        if not 0 <= group < self.config.word_groups:
            raise IndexError(
                f"group {group} out of range [0, {self.config.word_groups})"
            )
        base = group * self.config.word_bits
        return [self.save_track(base + i) for i in range(self.config.word_bits)]

    def _align_group(self, tracks: List[Racetrack], index: int) -> int:
        """Align all tracks of a group on ``index``; return max distance.

        Tracks in a group shift in lock-step (shared shift driver), so the
        time cost is a single shift of the common distance.
        """
        distance = 0
        for track in tracks:
            port = track.nearest_port(index)
            distance = max(distance, abs(track.shifts_to_align(index, port)))
            track.align(index, port)
        return distance

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.config.words_per_group:
            raise IndexError(
                f"word index {index} out of range "
                f"[0, {self.config.words_per_group})"
            )

    def _check_value(self, value: int) -> None:
        if not 0 <= value < (1 << self.config.word_bits):
            raise ValueError(
                f"word value {value} out of range for "
                f"{self.config.word_bits}-bit words"
            )
