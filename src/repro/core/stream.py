"""Streamed compile/execute pipeline: chunk driver and telemetry.

StreamPIM's core argument is that matrix computation should *stream*
through the device rather than stall on phase boundaries.  The phased
reproduction still compiled and executed as strictly sequential phases:
the whole :class:`~repro.isa.columnar.ColumnarTrace` materialised in
``PimTask.to_trace`` before ``execute_trace`` saw VPC 0.  This module
drives the chunked alternative end to end:

* the producer is :meth:`~repro.core.task.PimTask.to_trace_chunks` (or
  :func:`iter_trace_chunks` slicing an already-compiled trace, e.g. on
  a trace-cache hit), yielding op-boundary-aligned chunks;
* the consumer is
  :meth:`~repro.core.device.StreamPIMDevice.execute_trace_stream` — a
  per-chunk SPV verification gate feeding one resumable
  :class:`~repro.sim.vector_exec.VectorExecState`;
* :func:`run_stream` couples the two, times both sides of the pipe,
  and reports the ``stream.*`` metrics family through the device's
  observation collector.

The pipeline is interleaved on one thread: the generator lowers the
next operation exactly while the engine is between chunks.  (A threaded
producer was measured and rejected — both sides are GIL-bound Python
loops, so handing chunks across a queue *added* ~40% wall time.)  The
streamed speedup instead comes from removing the phase barrier and from
the chunked consumer's monitored fast functional apply; the telemetry
still separates produce (lowering) from consume (execution) time so
the stall/overlap economics stay measurable.

Bit-identity contract: for any chunk size, the streamed run's
``RunStats``, word-store contents, and emitted spans equal the phased
``compile -> materialize -> execute_trace(engine="vector")`` sequence
exactly (``tests/test_stream_exec.py``).
"""

from __future__ import annotations

import time

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.isa.columnar import ColumnarTrace

#: Default minimum chunk size (records) before a chunk is cut at the
#: next operation boundary.  Large enough to amortise per-chunk array
#: passes, small enough that shipped workloads stream in several chunks.
DEFAULT_CHUNK_VPCS = 4096


@dataclass
class StreamTelemetry:
    """Measured behaviour of one streamed compile/execute run.

    ``produce_ns`` is wall time spent inside the producer (lowering the
    next chunk, seeding newly discovered scalar slots) — from the
    consumer's point of view this is stall time, so it is also exposed
    as :attr:`stall_ns`.  ``consume_ns`` is everything else under the
    run (per-chunk verification and execution).
    """

    chunks: int = 0
    records: int = 0
    produce_ns: int = 0
    consume_ns: int = 0
    wall_ns: int = 0
    fallbacks: int = 0
    cache_hit: bool = False

    @property
    def stall_ns(self) -> int:
        """Time the consumer waited on the producer."""
        return self.produce_ns

    @property
    def overlap_ratio(self) -> float:
        """Fraction of the shorter pipeline side hidden under the other.

        ``(produce + consume - wall) / min(produce, consume)``, clamped
        to [0, 1].  The interleaved single-thread pipeline reports ~0 —
        both sides share the thread, so nothing runs concurrently; the
        metric exists so alternative drivers (process pools, shared
        memory rings) can report real overlap through the same channel.
        """
        shorter = min(self.produce_ns, self.consume_ns)
        if shorter <= 0:
            return 0.0
        hidden = self.produce_ns + self.consume_ns - self.wall_ns
        return max(0.0, min(1.0, hidden / shorter))


class TimedChunkProducer:
    """Iterator wrapper that accounts time spent producing chunks."""

    def __init__(self, chunks: Iterable[ColumnarTrace]) -> None:
        self._iterator = iter(chunks)
        self.produce_ns = 0

    def __iter__(self) -> "TimedChunkProducer":
        return self

    def __next__(self) -> ColumnarTrace:
        begin = time.perf_counter_ns()
        try:
            return next(self._iterator)
        finally:
            self.produce_ns += time.perf_counter_ns() - begin


def iter_trace_chunks(
    trace: ColumnarTrace, chunk_vpcs: int = DEFAULT_CHUNK_VPCS
) -> Iterator[ColumnarTrace]:
    """Slice an already-compiled trace into execution chunks.

    Used when the trace cache already holds the full trace: there is
    nothing left to overlap with lowering, but the chunked consumer
    (and its per-chunk fast apply) still wants chunk-sized pieces.
    """
    if chunk_vpcs < 1:
        raise ValueError(f"chunk_vpcs must be positive, got {chunk_vpcs}")
    records = trace.records
    for start in range(0, len(records), chunk_vpcs):
        yield ColumnarTrace(records[start : start + chunk_vpcs])


def task_chunk_producer(
    task, chunk_vpcs: int = DEFAULT_CHUNK_VPCS, device=None
) -> Iterator[ColumnarTrace]:
    """Chunked lowering plus incremental word-store materialisation.

    Wraps :meth:`PimTask.to_trace_chunks` so the device's word store is
    seeded exactly when the streamed executor needs it: matrices once
    placement exists (before the first chunk executes), scalar slots
    incrementally as lowering discovers them.  Slot addresses are
    never-reused scratch words, so incremental seeding is equivalent to
    the phased up-front ``materialize`` (see
    :meth:`PimTask.materialize_scalar_slots`).
    """
    device = device or task.device
    seeded = 0
    first = True
    for chunk in task.to_trace_chunks(chunk_vpcs=chunk_vpcs):
        if first:
            task.materialize_matrices(device)
            first = False
        seeded = task.materialize_scalar_slots(device, start=seeded)
        yield chunk


def run_stream(
    device,
    chunks: Iterable[ColumnarTrace],
    workload: str = "trace",
    functional: bool = True,
    verify: bool = True,
    faults=None,
    cache_hit: bool = False,
):
    """Drive the chunk pipeline through a device and measure it.

    Returns ``(result, telemetry)`` where ``result`` is the device's
    :class:`~repro.core.device.StreamExecResult` and ``telemetry`` a
    :class:`StreamTelemetry`.  When the device's observation collector
    is enabled, the ``stream.*`` metrics family is recorded.
    """
    producer = TimedChunkProducer(chunks)
    begin = time.perf_counter_ns()
    result = device.execute_trace_stream(
        producer,
        workload=workload,
        functional=functional,
        verify=verify,
        faults=faults,
    )
    wall_ns = time.perf_counter_ns() - begin
    telemetry = StreamTelemetry(
        chunks=result.chunks,
        records=len(result.trace),
        produce_ns=producer.produce_ns,
        consume_ns=max(0, wall_ns - producer.produce_ns),
        wall_ns=wall_ns,
        fallbacks=result.fallbacks,
        cache_hit=cache_hit,
    )
    if device.obs.enabled:
        from repro.obs.stream_metrics import record_stream_run

        record_stream_run(device.obs, telemetry)
    return result, telemetry


__all__ = [
    "DEFAULT_CHUNK_VPCS",
    "StreamTelemetry",
    "TimedChunkProducer",
    "iter_trace_chunks",
    "task_chunk_producer",
    "run_stream",
]
