"""Segmented domain-wall nanowire bus (section III-D, Fig. 12).

The RM bus replaces the electrical in-subarray bus: data moves between
mats and the RM processor purely by shift operations, so no
electromagnetic conversion happens.  Three intrinsic problems — the
uncertain drive-current profile for variable-length transfers, the low
per-domain propagation speed, and cumulative shift faults over long
distances — are all solved by *segmentation*:

* each nanowire is divided into equal-length segments;
* a data segment is always followed by an empty segment in the transfer
  direction, so one shift current always drives exactly one data+empty
  segment pair (deterministic duration/density);
* every data/empty pair advances one segment per cycle, so transfers
  from different sources pipeline on the same wire (multiplexing);
* the per-operation shift distance is one segment, bounding fault
  accumulation.

Timing model: a chunk (one segment's worth of words) injected at the
source arrives after ``n_segments`` hops; because data segments alternate
with empty segments, successive chunks arrive two cycles apart:

    transfer_cycles(w words) = n_segments + (chunks - 1) * 2
    chunks = ceil(w / words_per_segment)

Energy model: one shift operation per segment hop, with per-operation
energy growing with the driven length (larger segments need a larger
shift current).  The quadratic term models (wire length energised) x
(distance shifted); the small cubic correction reproduces the paper's
Table V observation that the net energy is almost flat, decreasing
marginally for smaller segments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.obs.spans import NULL_COLLECTOR
from repro.rm.timing import RMTimingConfig


@dataclass(frozen=True)
class RMBusConfig:
    """Structural parameters of one in-subarray RM bus.

    Attributes:
        segment_domains: domains per segment (Table V default: 1024).
        length_domains: wire length between mats and processor; defaults
            to one mat-length of domains.
        width_wires: parallel nanowires; one word-width bundle moves one
            word per domain column.
        word_bits: bits per word.
        reference_segment: segment size whose shift current matches the
            Table III per-shift energy figure.
        current_overhead: relative extra drive-energy per reference
            segment of driven length (the "larger shift current" penalty
            for big segments).
    """

    segment_domains: int = 1024
    length_domains: int = 4096
    width_wires: int = 8
    word_bits: int = 8
    reference_segment: int = 1024
    current_overhead: float = 2e-5

    def __post_init__(self) -> None:
        if self.segment_domains <= 0:
            raise ValueError("segment_domains must be positive")
        if self.length_domains < self.segment_domains:
            raise ValueError(
                "bus must be at least one segment long "
                f"({self.length_domains} < {self.segment_domains})"
            )
        if self.width_wires <= 0 or self.word_bits <= 0:
            raise ValueError("width_wires and word_bits must be positive")
        if self.width_wires % self.word_bits != 0:
            raise ValueError(
                "width_wires must be a multiple of word_bits so whole "
                "words travel in lock-step"
            )
        if self.reference_segment <= 0:
            raise ValueError("reference_segment must be positive")
        if self.current_overhead < 0:
            raise ValueError("current_overhead must be non-negative")

    @property
    def n_segments(self) -> int:
        """Segments between source and destination."""
        return math.ceil(self.length_domains / self.segment_domains)

    @property
    def words_per_segment(self) -> int:
        """Words one data segment carries across the wire bundle."""
        return self.segment_domains * (self.width_wires // self.word_bits)


class RMBus:
    """Timing/energy model of one segmented RM bus."""

    def __init__(
        self,
        config: RMBusConfig | None = None,
        timing: RMTimingConfig | None = None,
    ) -> None:
        self.config = config or RMBusConfig()
        self.timing = timing or RMTimingConfig()
        #: Observation sink (:mod:`repro.obs`); disabled by default.
        #: The bus is a cost *model*, so its metrics count model
        #: queries — the vector engine memoises per unique word count,
        #: so query counts are not comparable across engines (span
        #: streams are; see ``trace.bus_transfers``).
        self.obs = NULL_COLLECTOR

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @property
    def fill_cycles(self) -> int:
        """Cycles for the first chunk to cross the bus."""
        return self.config.n_segments

    def chunks_for(self, words: int) -> int:
        if words <= 0:
            raise ValueError(f"words must be positive, got {words}")
        return math.ceil(words / self.config.words_per_segment)

    def transfer_cycles(self, words: int) -> int:
        """Total cycles to move ``words`` from one end to the other."""
        chunks = self.chunks_for(words)
        return self.fill_cycles + (chunks - 1) * 2

    def streaming_interval(self) -> int:
        """Steady-state cycles between chunk arrivals (data/empty pairs)."""
        return 2

    def transfer_ns(self, words: int) -> float:
        if self.obs.enabled:
            self.obs.counter("rmbus.transfer_queries").inc()
            self.obs.histogram("rmbus.transfer_words").observe(words)
        return self.transfer_cycles(words) * self.timing.cycle_ns

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    def _energy_per_hop_pj(self) -> float:
        """Energy of one segment-pair shift operation.

        Scales as segment^2 relative to the reference (length energised
        times distance moved), with a small super-linear drive-current
        overhead for long segments.
        """
        cfg = self.config
        ratio = cfg.segment_domains / cfg.reference_segment
        overhead = 1.0 + cfg.current_overhead * (cfg.segment_domains - 1)
        reference_overhead = 1.0 + cfg.current_overhead * (
            cfg.reference_segment - 1
        )
        return (
            self.timing.shift_pj * ratio**2 * (overhead / reference_overhead)
        )

    @property
    def energy_per_hop_pj(self) -> float:
        """Energy of one bounded segment hop (recovery re-shifts pay
        this same cost per repair attempt)."""
        return self._energy_per_hop_pj()

    @property
    def hop_ns(self) -> float:
        """Latency of one bounded segment hop (a data/empty cycle pair)."""
        return self.streaming_interval() * self.timing.cycle_ns

    def shift_operations(self, words: int) -> int:
        """Segment-pair shift operations for one transfer."""
        return self.chunks_for(words) * self.config.n_segments

    def transfer_energy_pj(self, words: int) -> float:
        """Total shift energy to move ``words`` across the bus.

        Energy follows the *occupied* wire length: a partially filled
        segment only energises the domains it carries, so the chunk
        count is continuous here (time, by contrast, is cycle-quantised
        and uses the integer chunk count).
        """
        if words <= 0:
            raise ValueError(f"words must be positive, got {words}")
        if self.obs.enabled:
            self.obs.counter("rmbus.energy_queries").inc()
        fractional_chunks = words / self.config.words_per_segment
        return (
            fractional_chunks
            * self.config.n_segments
            * self._energy_per_hop_pj()
        )
