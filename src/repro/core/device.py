"""StreamPIM device: VPC queue, bank controllers, execution engines.

Implements the control flow of Fig. 14: the host streams VPCs into the
device's command queue (asynchronous send-response); each VPC is decoded
and dispatched to the bank/subarray holding its operands; bank
controllers drive the RM bus and RM processor; cross-subarray operand
collection uses read/write commands.

Two execution modes are provided:

* **event mode** (:meth:`StreamPIMDevice.execute_trace`) — discrete-event
  execution of an explicit VPC stream with per-subarray blocking between
  read/write and shift/compute operation classes.  State-accurate for
  data (a sparse word store) and used to validate the analytic mode.
* **analytic mode** (:meth:`StreamPIMDevice.execute_rounds`) — closed-form
  composition of prep/compute rounds through the
  :class:`~repro.core.scheduler.Scheduler`; this is how the paper-scale
  workloads (millions of VPCs) are simulated in reasonable time.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.processor import RMProcessor, RMProcessorConfig
from repro.core.rmbus import RMBus, RMBusConfig
from repro.core.scheduler import (
    PrepCostModel,
    Round,
    ScheduleResult,
    Scheduler,
    SchedulerPolicy,
)
from repro.core.subarray_engine import SubarrayEngine
from repro.isa.trace import VPCTrace
from repro.isa.vpc import VPC, VPCOpcode
from repro.obs.spans import NULL_COLLECTOR
from repro.rm.address import AddressMap, DeviceGeometry
from repro.rm.nanowire import ShiftError
from repro.rm.timing import RMTimingConfig
from repro.sim.engine import Resource
from repro.sim.errors import SimulationFault
from repro.sim.stats import EnergyBreakdown, RunStats, TimeBreakdown
from repro.sim.vector_exec import sweep_spans


@dataclass(frozen=True)
class StreamPIMConfig:
    """Complete configuration of one StreamPIM device."""

    geometry: DeviceGeometry = field(default_factory=DeviceGeometry)
    timing: RMTimingConfig = field(default_factory=RMTimingConfig)
    processor: RMProcessorConfig = field(default_factory=RMProcessorConfig)
    bus: RMBusConfig = field(default_factory=RMBusConfig)
    scheduler_policy: SchedulerPolicy = SchedulerPolicy.UNBLOCK
    prep_model: PrepCostModel = field(default_factory=PrepCostModel)
    #: Host-link decode/dispatch overhead per VPC (ns); the asynchronous
    #: send-response protocol pipelines this behind execution, so it is
    #: exposed only when the device would otherwise be idle.
    vpc_decode_ns: float = 10.0

    def __post_init__(self) -> None:
        if self.vpc_decode_ns < 0:
            raise ValueError(
                f"vpc_decode_ns must be non-negative, got "
                f"{self.vpc_decode_ns}"
            )

    def with_policy(self, policy: SchedulerPolicy) -> "StreamPIMConfig":
        return StreamPIMConfig(
            geometry=self.geometry,
            timing=self.timing,
            processor=self.processor,
            bus=self.bus,
            scheduler_policy=policy,
            prep_model=self.prep_model,
            vpc_decode_ns=self.vpc_decode_ns,
        )


@dataclass(frozen=True)
class StreamExecResult:
    """Outcome of one :meth:`StreamPIMDevice.execute_trace_stream` run."""

    #: The run statistics (bit-identical to the phased vector engine).
    stats: RunStats
    #: Concatenation of every executed chunk, in order — what the phased
    #: path would have compiled up front; cache write-through stores it.
    trace: "object"
    #: Number of non-empty chunks fed to the execution state.
    chunks: int
    #: Chunks the monitored fast functional apply replayed exactly.
    fallbacks: int


class WordStore:
    """Sparse word-addressable data store backing event-mode execution."""

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    def read(self, address: int, length: int) -> np.ndarray:
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        return np.array(
            [self._words.get(address + i, 0) for i in range(length)],
            dtype=np.int64,
        )

    def write(self, address: int, values) -> None:
        for i, value in enumerate(np.asarray(values).ravel()):
            self._words[address + i] = int(value)

    def __len__(self) -> int:
        return len(self._words)


@dataclass
class _Span:
    start: float
    finish: float
    kind: str  # "rw" or "pim"


class StreamPIMDevice:
    """One StreamPIM device instance."""

    def __init__(self, config: Optional[StreamPIMConfig] = None) -> None:
        self.config = config or StreamPIMConfig()
        self.timing = self.config.timing
        self.address_map = AddressMap(self.config.geometry)
        self.processor = RMProcessor(self.config.processor, self.timing)
        self.bus = RMBus(self.config.bus, self.timing)
        self.engine_model = SubarrayEngine(
            processor=self.processor, bus=self.bus, timing=self.timing
        )
        self.scheduler = Scheduler(
            policy=self.config.scheduler_policy,
            timing=self.timing,
            prep_model=self.config.prep_model,
        )
        self.store = WordStore()
        self._bounds_verifier = None
        #: Observation sink (:mod:`repro.obs`); the disabled singleton
        #: by default — attach a real collector with :meth:`observe`.
        self.obs = NULL_COLLECTOR

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def observe(self, collector) -> "StreamPIMDevice":
        """Attach an observation collector to this device.

        Wires the device's trace engines plus the analytic scheduler
        and RM-bus cost model to the same collector, so one profiled
        run lands in one span/metric stream.  Pass
        :data:`repro.obs.NULL_COLLECTOR` to detach.  Returns the device
        for chaining.
        """
        self.obs = collector
        self.scheduler.obs = collector
        self.bus.obs = collector
        return self

    # ------------------------------------------------------------------
    # Analytic mode
    # ------------------------------------------------------------------
    def execute_rounds(self, rounds: List[Round]) -> ScheduleResult:
        """Compose prep/compute rounds under the configured policy."""
        return self.scheduler.compose(rounds)

    # ------------------------------------------------------------------
    # Event mode
    # ------------------------------------------------------------------
    def execute_trace(
        self,
        trace: VPCTrace,
        workload: str = "trace",
        functional: bool = True,
        verify: bool = True,
        engine: str = "scalar",
        faults=None,
    ) -> RunStats:
        """Execute an explicit VPC stream with per-subarray blocking.

        VPCs are issued in order; each waits for the subarrays it touches
        (and, for read/write-class transfers, the shared internal bus).
        The asynchronous send-response protocol lets independent VPCs on
        different subarrays overlap.

        Args:
            trace: the VPC stream (a :class:`~repro.isa.trace.VPCTrace`
                or :class:`~repro.isa.columnar.ColumnarTrace`).
            workload: label for the returned stats.
            functional: move/compute real data through the word store.
            verify: statically check operand bounds before executing
                (cheap, O(#VPC)); a failing trace raises
                :class:`~repro.verify.trace_verifier.TraceVerificationError`
                instead of silently corrupting the word store.  Pass
                False to replay a known-bad trace anyway.  The full rule
                set (overlap, hazards, placement) is the job of
                ``repro-streampim check``.
            engine: ``"scalar"`` (the reference per-VPC event loop) or
                ``"vector"`` (the columnar fast path of
                :mod:`repro.sim.vector_exec`; identical results,
                orders of magnitude faster on large traces).
            faults: an optional resolved fault session
                (:class:`~repro.resilience.session.FaultSession`):
                undetected shift faults silently corrupt destination
                words, repair costs are charged to the ``recovery``
                breakdown categories, and an aborting policy raises a
                typed :class:`~repro.sim.errors.SimulationFault` at the
                faulting trace index.  Both engines consume the same
                pre-sampled session, so results stay bit-identical
                under one seed.

        Returns:
            RunStats with total time, time/energy breakdowns and VPC
            counters.
        """
        if engine not in ("scalar", "vector"):
            raise ValueError(
                f"engine must be 'scalar' or 'vector', got {engine!r}"
            )
        if engine == "vector":
            from repro.isa.columnar import ColumnarTrace
            from repro.sim.vector_exec import execute_columnar

            if isinstance(trace, ColumnarTrace):
                cols = trace
            else:
                cols = ColumnarTrace.from_trace(trace)
            if verify:
                from repro.verify.trace_verifier import (
                    TraceVerificationError,
                )

                report = self._trace_verifier().verify_columnar(
                    cols, subject=workload
                )
                if not report.ok():
                    raise TraceVerificationError(report)
            # Observability: checked once per run.  The engine stays
            # untouched when disabled; when enabled it hands back the
            # busy-interval arrays it computed anyway and the spans are
            # batch-built here, after the run.
            sink = [] if self.obs.enabled else None
            stats = execute_columnar(
                self,
                cols,
                workload=workload,
                functional=functional,
                faults=faults,
                span_sink=sink,
            )
            if sink is not None:
                from repro.obs.trace_spans import record_trace_run

                starts, finishes, is_rw = sink[0]
                record_trace_run(
                    self.obs, self, cols, starts, finishes, is_rw, stats
                )
            return stats
        if verify:
            from repro.verify.trace_verifier import TraceVerificationError

            report = self._trace_verifier().verify(trace, subject=workload)
            if not report.ok():
                raise TraceVerificationError(report)
        subarrays: Dict[Tuple[int, int], Resource] = {}
        internal_bus = Resource("internal-bus")
        spans: List[_Span] = []
        energy = EnergyBreakdown()
        finish_time = 0.0
        pim_vpcs = 0
        move_vpcs = 0

        def resource(key: Tuple[int, int]) -> Resource:
            if key not in subarrays:
                subarrays[key] = Resource(f"subarray-{key}")
            return subarrays[key]

        abort_at = None if faults is None else faults.abort_index
        index = -1
        try:
            for index, vpc in enumerate(trace):
                if index == abort_at:
                    raise faults.abort_error()
                # Derived, not accumulated: += would drift the decode
                # clock by an ulp every few million commands and break
                # scalar / vector equivalence.
                decode_ready = (index + 1) * self.config.vpc_decode_ns
                if vpc.is_compute:
                    pim_vpcs += 1
                    finish = self._run_compute(
                        vpc, decode_ready, resource, spans, energy
                    )
                else:
                    move_vpcs += 1
                    finish = self._run_tran(
                        vpc,
                        decode_ready,
                        resource,
                        internal_bus,
                        spans,
                        energy,
                    )
                finish_time = max(finish_time, finish)
                if self._functional_enabled(functional):
                    self._apply_functional(vpc)
                    if faults is not None:
                        faults.corrupt_store(self.store, vpc, index)
        except ShiftError as exc:
            raise SimulationFault(
                f"shift escaped the nanowire model during replay: {exc}",
                index=index,
            ) from exc

        time = _spans_to_breakdown(spans)
        if faults is not None:
            time.add("recovery", faults.recovery_ns)
            energy.add("recovery", faults.recovery_pj)
            finish_time = finish_time + faults.recovery_ns
        stats = RunStats(
            platform="StPIM",
            workload=workload,
            time_ns=finish_time,
            time_breakdown=time,
            energy=energy,
        )
        stats.bump("pim_vpcs", pim_vpcs)
        stats.bump("move_vpcs", move_vpcs)
        if self.obs.enabled:
            # Same batched recording as the vector path, fed from the
            # span records this loop accumulated anyway — both engines
            # therefore emit identical observation streams.
            from repro.isa.columnar import ColumnarTrace
            from repro.obs.trace_spans import record_trace_run

            cols = (
                trace
                if isinstance(trace, ColumnarTrace)
                else ColumnarTrace.from_trace(trace)
            )
            record_trace_run(
                self.obs,
                self,
                cols,
                np.array([s.start for s in spans], dtype=np.float64),
                np.array([s.finish for s in spans], dtype=np.float64),
                np.array([s.kind == "rw" for s in spans], dtype=bool),
                stats,
            )
        return stats

    # ------------------------------------------------------------------
    # Streamed event mode (chunked compile/execute pipeline)
    # ------------------------------------------------------------------
    def execute_trace_stream(
        self,
        chunks,
        workload: str = "trace",
        functional: bool = True,
        verify: bool = True,
        faults=None,
    ):
        """Execute a columnar trace delivered as an iterator of chunks.

        The streamed counterpart of ``execute_trace(engine="vector")``:
        each chunk is verified through the same vectorized SPV rule
        gate (one :class:`~repro.verify.StreamingTraceVerifier` pass,
        whole-trace-identical findings) and then advances one
        :class:`~repro.sim.vector_exec.VectorExecState`, so execution
        of chunk K proceeds while chunk K+1 is still being lowered by
        the producer.  The resulting ``RunStats``, word-store contents
        and observation spans are bit-identical to the phased path on
        the concatenated trace.

        Returns a :class:`StreamExecResult` carrying the stats, the
        concatenated :class:`~repro.isa.columnar.ColumnarTrace` (for
        cache write-through and span attribution), and per-stream
        counters.
        """
        from repro.isa.columnar import ColumnarTrace, RECORD_DTYPE
        from repro.sim.vector_exec import VectorExecState
        from repro.verify.trace_verifier import (
            StreamingTraceVerifier,
            TraceVerificationError,
        )

        checker = (
            StreamingTraceVerifier(self._trace_verifier(), subject=workload)
            if verify
            else None
        )
        sink = [] if self.obs.enabled else None
        state = VectorExecState(
            self,
            workload=workload,
            functional=functional,
            faults=faults,
            span_sink=sink,
        )
        record_parts = []
        for cols in chunks:
            if not isinstance(cols, ColumnarTrace):
                cols = ColumnarTrace.from_trace(cols)
            if checker is not None:
                report = checker.feed(cols)
                if not report.ok():
                    raise TraceVerificationError(report)
            state.feed(cols)
            record_parts.append(cols.records)
        stats = state.finish()
        records = (
            np.concatenate(record_parts)
            if record_parts
            else np.empty(0, dtype=RECORD_DTYPE)
        )
        trace = ColumnarTrace(records)
        if sink is not None:
            from repro.obs.trace_spans import record_trace_run

            starts, finishes, is_rw = sink[0]
            record_trace_run(
                self.obs, self, trace, starts, finishes, is_rw, stats
            )
        return StreamExecResult(
            stats=stats,
            trace=trace,
            chunks=state.chunks_fed,
            fallbacks=state.fallbacks,
        )

    # ------------------------------------------------------------------
    def _run_compute(self, vpc, ready, resource, spans, energy) -> float:
        """Dispatch one MUL/SMUL/ADD: collect operands, run the engine."""
        home = self.address_map.subarray_of(vpc.src1)
        start = resource(home).earliest_start(ready)
        # Operand collection: any operand outside the home subarray is
        # fetched with read/write commands first (section IV-B).
        for operand in vpc.operands[1:]:
            location = self.address_map.subarray_of(operand)
            if location != home:
                copy_ns = self._copy_cost_ns(vpc.size)
                src = resource(location)
                begin = max(
                    src.earliest_start(start),
                    resource(home).earliest_start(start),
                )
                src.acquire(begin, copy_ns)
                _, start = resource(home).acquire(begin, copy_ns)
                spans.append(_Span(begin, start, "rw"))
                self._copy_energy(vpc.size, energy)
        profile = self.engine_model.profile(vpc)
        begin, finish = resource(home).acquire(start, profile.time_ns)
        spans.append(_Span(begin, finish, "pim"))
        energy.merge(profile.energy)
        # Result delivery to a remote destination uses read/write.
        dest = self.address_map.subarray_of(vpc.des)
        if dest != home:
            result_words = 1 if vpc.opcode is VPCOpcode.MUL else vpc.size
            copy_ns = self._copy_cost_ns(result_words)
            begin, finish = resource(dest).acquire(finish, copy_ns)
            spans.append(_Span(begin, finish, "rw"))
            self._copy_energy(result_words, energy)
        return finish

    def _run_tran(
        self, vpc, ready, resource, internal_bus, spans, energy
    ) -> float:
        """Dispatch one TRAN (in-subarray shift or cross-subarray copy)."""
        src = self.address_map.subarray_of(vpc.src1)
        dest = self.address_map.subarray_of(vpc.des)
        if src == dest:
            profile = self.engine_model.profile(vpc)
            begin, finish = resource(src).acquire(ready, profile.time_ns)
            spans.append(_Span(begin, finish, "pim"))
            energy.merge(profile.energy)
            return finish
        copy_ns = self._copy_cost_ns(vpc.size)
        begin = max(
            internal_bus.earliest_start(ready),
            resource(src).earliest_start(ready),
            resource(dest).earliest_start(ready),
        )
        internal_bus.acquire(begin, copy_ns)
        resource(src).acquire(begin, copy_ns)
        _, finish = resource(dest).acquire(begin, copy_ns)
        spans.append(_Span(begin, finish, "rw"))
        self._copy_energy(vpc.size, energy)
        return finish

    def _copy_cost_ns(self, words: int) -> float:
        """Read/write copy duration (row-streaming accesses)."""
        model = self.config.prep_model
        if self.config.scheduler_policy.overlaps_prep:
            reads = math.ceil(words / model.access_width_words)
            writes = math.ceil(words / model.write_access_width_words)
        else:
            reads = writes = math.ceil(words / model.blocked_access_width)
        return (
            model.activate_ns
            + reads * self.timing.read_ns
            + writes * self.timing.write_ns
        )

    def _copy_energy(self, words: int, energy: EnergyBreakdown) -> None:
        """Charge one cross-subarray copy's access energy."""
        model = self.config.prep_model
        reads = math.ceil(words / model.access_width_words)
        writes = math.ceil(words / model.write_access_width_words)
        energy.add("read", reads * self.timing.read_pj)
        energy.add("write", writes * self.timing.write_pj)

    # ------------------------------------------------------------------
    def _trace_verifier(self):
        """The cached pre-replay bounds verifier (SPV001 only).

        Geometry is frozen for the device's lifetime, so one verifier
        (with its geometry-derived bounds) serves every execute_trace
        call instead of being rebuilt per call.
        """
        if self._bounds_verifier is None:
            from repro.verify.trace_verifier import TraceVerifier

            self._bounds_verifier = TraceVerifier(
                geometry=self.config.geometry, rules=("SPV001",)
            )
        return self._bounds_verifier

    # ------------------------------------------------------------------
    def _functional_enabled(self, requested: bool) -> bool:
        return requested

    def _apply_functional(self, vpc) -> None:
        """Move/compute real data through the word store."""
        if vpc.opcode is VPCOpcode.TRAN:
            self.store.write(vpc.des, self.store.read(vpc.src1, vpc.size))
            return
        if vpc.opcode is VPCOpcode.SMUL:
            src1 = self.store.read(vpc.src1, 1)
        else:
            src1 = self.store.read(vpc.src1, vpc.size)
        src2 = self.store.read(vpc.src2, vpc.size)
        result = self.processor.apply(vpc.opcode, src1, src2)
        self.store.write(vpc.des, result)

    # ------------------------------------------------------------------
    @property
    def pim_subarrays(self) -> int:
        return self.config.geometry.pim_subarrays


def _spans_to_breakdown(spans: List[_Span]) -> TimeBreakdown:
    """Sweep busy spans into exclusive/overlapped time categories.

    Time covered only by "rw" spans splits into read/write; time covered
    only by "pim" spans becomes shift+process in the pipelined proportion
    (the engine-level split is finer, but at trace level the subarray is
    a black box); time covered by both classes at once is overlapped.
    """
    if not spans:
        return TimeBreakdown()
    return sweep_spans(
        np.array([s.start for s in spans]),
        np.array([s.finish for s in spans]),
        np.array([s.kind == "rw" for s in spans], dtype=bool),
    )
