"""Subarray PIM dataflow: mats -> RM bus -> RM processor -> mats.

Implements the five-step flow of Fig. 13 for one VPC executed inside one
subarray:

1. operands are copied from save tracks onto transfer tracks (fan-out,
   non-destructive) and shifted onto the RM bus;
2. the bus streams the data to the RM processor;
3. the processor pipeline consumes elements as they arrive;
4. results are shifted back onto the bus;
5. and land in the destination mat.

Because both the bus and the processor are pipelines fed element by
element, the streaming portions overlap: the exposed time is the bus fill
plus the processor's pipeline latency, and the bulk of the bus occupancy
is hidden behind compute.  The profile returned here separates exposed
shift time, exposed process time and the overlapped portion so Fig. 19's
breakdown can be regenerated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.processor import RMProcessor
from repro.core.rmbus import RMBus
from repro.isa.vpc import VPC, VPCOpcode
from repro.rm.timing import RMTimingConfig
from repro.sim.stats import EnergyBreakdown, TimeBreakdown


@dataclass(frozen=True)
class VPCProfile:
    """Cycle/energy profile of one VPC executed in one subarray.

    Attributes:
        cycles: end-to-end occupancy of the subarray (pipelined).
        time: exclusive-category time breakdown (sums to ``cycles`` worth
            of ns).
        energy: energy breakdown.
    """

    cycles: int
    time: TimeBreakdown
    energy: EnergyBreakdown

    @property
    def time_ns(self) -> float:
        return self.time.total_ns


class SubarrayEngine:
    """Executes VPCs inside one (PIM-capable) subarray."""

    #: Fraction of a row-level shift operation's energy that one
    #: track-group (word-wide) shift step costs: the Table III shift
    #: figure drives a full 512-track row, the PIM copy path drives the
    #: 8 tracks of one word group.
    TRACK_GROUP_SHIFT_FRACTION = 8 / 512

    def __init__(
        self,
        processor: RMProcessor | None = None,
        bus: RMBus | None = None,
        timing: RMTimingConfig | None = None,
    ) -> None:
        self.timing = timing or RMTimingConfig()
        self.processor = processor or RMProcessor(timing=self.timing)
        self.bus = bus or RMBus(timing=self.timing)
        self._copy_shift_pj = (
            self.timing.shift_pj * self.TRACK_GROUP_SHIFT_FRACTION
        )

    # ------------------------------------------------------------------
    def profile(self, vpc: VPC) -> VPCProfile:
        """Cycle/energy profile of one VPC (compute or in-subarray TRAN)."""
        if vpc.opcode is VPCOpcode.TRAN:
            return self._profile_tran(vpc.size)
        return self._profile_compute(vpc)

    def _profile_compute(self, vpc: VPC) -> VPCProfile:
        """Profile of MUL/SMUL/ADD executed by the RM processor."""
        n = vpc.size
        cycle_ns = self.timing.cycle_ns
        n_operands = len(vpc.operands)

        # Non-destructive fan-out copy onto transfer tracks is needed
        # only for the resident operand (it is reused across VPCs, e.g. a
        # matrix row read once per column round); a delivered operand is
        # consumed destructively straight off its landing track
        # (section III-E).  The copy streams one element per cycle and
        # overlaps with bus injection, so it contributes to the pipelined
        # region, not the exposed fill.
        copy_shift_ops = n

        # Bus: operands stream in; results stream out.  The inbound
        # transfer's fill is exposed (the processor is idle until the
        # first chunk arrives); the rest overlaps with compute.
        in_cycles = self.bus.transfer_cycles(n * n_operands)
        result_words = 1 if vpc.opcode is VPCOpcode.MUL else n
        out_cycles = self.bus.transfer_cycles(result_words)
        bus_fill = self.bus.fill_cycles

        compute_cycles = self.processor.compute_cycles(vpc.opcode, n)

        # Streaming overlap: in-transfer and compute proceed together
        # once the first chunk lands; the out-transfer's fill is exposed
        # after the last result is produced.
        streamed = max(in_cycles - bus_fill, compute_cycles)
        total_cycles = bus_fill + streamed + out_cycles

        exposed_shift = bus_fill + out_cycles
        exposed_process = max(0, compute_cycles - (in_cycles - bus_fill))
        overlapped = total_cycles - exposed_shift - exposed_process

        time = TimeBreakdown()
        time.add("shift", exposed_shift * cycle_ns)
        time.add("process", exposed_process * cycle_ns)
        time.add("overlapped", overlapped * cycle_ns)

        energy = EnergyBreakdown()
        energy.add(
            "shift",
            self.bus.transfer_energy_pj(n * n_operands)
            + self.bus.transfer_energy_pj(result_words)
            + copy_shift_ops * self._copy_shift_pj,
        )
        energy.add(
            "compute", self.processor.compute_energy_pj(vpc.opcode, n)
        )
        return VPCProfile(cycles=total_cycles, time=time, energy=energy)

    def _profile_tran(self, words: int) -> VPCProfile:
        """Profile of an in-subarray TRAN: pure shift transfer."""
        cycles = self.bus.transfer_cycles(words) + words  # copy + bus
        time = TimeBreakdown()
        time.add("shift", cycles * self.timing.cycle_ns)
        energy = EnergyBreakdown()
        energy.add(
            "shift",
            self.bus.transfer_energy_pj(words)
            + words * self._copy_shift_pj,
        )
        return VPCProfile(cycles=cycles, time=time, energy=energy)

    # ------------------------------------------------------------------
    def batch_profile(self, vpcs_alike: VPC, count: int) -> VPCProfile:
        """Profile ``count`` back-to-back identical VPCs on one subarray.

        Consecutive VPCs of the same shape pipeline into each other: only
        the first pays the fill, the rest arrive at the steady-state
        initiation interval.  Used by the batched (analytic) execution
        mode; property-tested against summing individual profiles.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        single = self.profile(vpcs_alike)
        if count == 1:
            return single
        energy = single.energy.scaled(float(count))
        cycle_ns = self.timing.cycle_ns
        if vpcs_alike.opcode is VPCOpcode.TRAN:
            cycles = single.cycles * count
            time = single.time.scaled(float(count))
            return VPCProfile(cycles=cycles, time=time, energy=energy)
        # Steady-state block of one follow-on VPC: the processor works
        # n * II cycles while the bus is active for the chunk traffic of
        # that VPC; whichever is longer bounds the block, the shorter one
        # hides inside it.
        n = vpcs_alike.size
        interval = self.processor.initiation_interval(vpcs_alike.opcode)
        result_words = 1 if vpcs_alike.opcode is VPCOpcode.MUL else n
        process_active = n * interval
        transfer_active = (
            self.bus.chunks_for(n * len(vpcs_alike.operands)) * 2
            + self.bus.chunks_for(result_words) * 2
        )
        steady = max(process_active, transfer_active)
        overlapped = min(process_active, transfer_active)
        exposed_process = max(0, process_active - transfer_active)
        exposed_shift = max(0, transfer_active - process_active)
        cycles = single.cycles + (count - 1) * steady
        time = TimeBreakdown(
            read_ns=single.time.read_ns,
            write_ns=single.time.write_ns,
            shift_ns=single.time.shift_ns
            + (count - 1) * exposed_shift * cycle_ns,
            process_ns=single.time.process_ns
            + (count - 1) * exposed_process * cycle_ns,
            overlapped_ns=single.time.overlapped_ns
            + (count - 1) * overlapped * cycle_ns,
        )
        return VPCProfile(cycles=cycles, time=time, energy=energy)
