"""Bank controller: VPC decoding into subarray operations (Fig. 14).

Section IV-B: a VPC executes inside a single subarray.  The device
routes it to the bank holding its first operand; the bank controller
then decodes it into the operation sequence the paper describes for a
vector dot product — (1) data-transfer operations fetching the operands
from RM mats to the RM processor, (2) the scalar multiplication /
addition groups, (3) a data transfer storing the result to the
destination mat — prefixed with read/write commands whenever an operand
or the destination lives in another subarray.

The decode is purely structural (it produces :class:`BankCommand`
sequences); the timing/energy of each command class is owned by the
subarray engine and the scheduler, which keeps a single source of truth
for costs.  The event-driven device executes semantically equivalent
steps; tests cross-check the decode against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.isa.vpc import BankCommand, BankOp, VPC, VPCOpcode
from repro.rm.address import AddressMap, DeviceGeometry


@dataclass(frozen=True)
class DecodedVPC:
    """One VPC decoded into its bank-command sequence.

    Attributes:
        vpc: the originating command.
        home: (bank, subarray) where the compute executes.
        commands: ordered bank commands.
    """

    vpc: VPC
    home: Tuple[int, int]
    commands: Tuple[BankCommand, ...]

    @property
    def rw_commands(self) -> Tuple[BankCommand, ...]:
        return tuple(c for c in self.commands if c.uses_rw)

    @property
    def pim_commands(self) -> Tuple[BankCommand, ...]:
        return tuple(c for c in self.commands if not c.uses_rw)


class BankController:
    """Decodes VPCs for the subarrays of one device geometry."""

    def __init__(self, geometry: Optional[DeviceGeometry] = None) -> None:
        self.geometry = geometry or DeviceGeometry()
        self.address_map = AddressMap(self.geometry)
        self.decoded_count = 0

    # ------------------------------------------------------------------
    def decode(self, vpc: VPC) -> DecodedVPC:
        """Decode one VPC into its ordered bank-command sequence."""
        home = self.address_map.subarray_of(vpc.src1)
        commands: List[BankCommand] = []
        if vpc.opcode is VPCOpcode.TRAN:
            commands.extend(self._decode_tran(vpc, home))
        else:
            commands.extend(self._decode_compute(vpc, home))
        self.decoded_count += 1
        return DecodedVPC(vpc=vpc, home=home, commands=tuple(commands))

    def decode_many(self, vpcs) -> List[DecodedVPC]:
        return [self.decode(vpc) for vpc in vpcs]

    # ------------------------------------------------------------------
    def _decode_tran(
        self, vpc: VPC, home: Tuple[int, int]
    ) -> List[BankCommand]:
        destination = self.address_map.subarray_of(vpc.des)
        if destination == home:
            # In-subarray move: pure shift transfer on the RM bus.
            return [
                self._command(home, BankOp.TRANSFER_IN, vpc, vpc.size),
                self._command(home, BankOp.TRANSFER_OUT, vpc, vpc.size),
            ]
        # Cross-subarray copy: read at the source, write at the target.
        return [
            self._command(home, BankOp.READ, vpc, vpc.size),
            self._command(destination, BankOp.WRITE, vpc, vpc.size),
        ]

    def _decode_compute(
        self, vpc: VPC, home: Tuple[int, int]
    ) -> List[BankCommand]:
        commands: List[BankCommand] = []
        # Operand collection: remote operands are fetched with
        # read/write command pairs first (section IV-B).
        for operand in vpc.operands[1:]:
            location = self.address_map.subarray_of(operand)
            if location != home:
                commands.append(
                    self._command(location, BankOp.READ, vpc, vpc.size)
                )
                commands.append(
                    self._command(home, BankOp.WRITE, vpc, vpc.size)
                )
        # (1) fetch operands from the mats to the processor via RM bus.
        operand_words = vpc.size * len(vpc.operands)
        commands.append(
            self._command(home, BankOp.TRANSFER_IN, vpc, operand_words)
        )
        # (2)/(3) the processor's scalar operation groups.
        commands.append(self._command(home, BankOp.COMPUTE, vpc, vpc.size))
        # (4) store the result to the destination mat.
        result_words = 1 if vpc.opcode is VPCOpcode.MUL else vpc.size
        commands.append(
            self._command(home, BankOp.TRANSFER_OUT, vpc, result_words)
        )
        destination = self.address_map.subarray_of(vpc.des)
        if destination != home:
            commands.append(
                self._command(home, BankOp.READ, vpc, result_words)
            )
            commands.append(
                self._command(destination, BankOp.WRITE, vpc, result_words)
            )
        return commands

    @staticmethod
    def _command(
        location: Tuple[int, int], op: BankOp, vpc: VPC, elements: int
    ) -> BankCommand:
        bank, subarray = location
        return BankCommand(
            bank=bank, subarray=subarray, op=op, vpc=vpc, elements=elements
        )
