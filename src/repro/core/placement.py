"""Matrix placement across PIM subarrays (section IV-C, Fig. 15).

A VPC executes inside a single subarray, so where vectors live decides
how much subarray-level parallelism a task can reach:

* **base** — rows at sequential addresses: a whole matrix typically lands
  in one (or very few) subarrays, serialising its VPCs on one processor.
* **distribute** — rows round-robined across all PIM subarrays, so the
  ``n`` dot products of a matrix-vector product can run on ``min(n, S)``
  processors at once.

The placer also implements the two supporting rules of section IV-C:

* *slicing* — a vector longer than a subarray's capacity is split into
  slices placed on consecutive subarrays (each slice's partial result is
  combined afterwards);
* *disjoint operand/result sets* (used by ``unblock``) — operands and
  results are placed in non-overlapping subarray sets so read/write data
  preparation never targets a subarray that is computing.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rm.address import AddressMap, DeviceGeometry


class PlacementPolicy(enum.Enum):
    """Row-placement strategies of section IV-C."""

    BASE = "base"
    DISTRIBUTE = "distribute"


@dataclass(frozen=True)
class RowSlice:
    """One placed slice of one matrix row.

    Attributes:
        bank: PIM bank holding the slice.
        subarray: subarray within the bank.
        address: linear word address of the slice's first element.
        offset: element offset of the slice within its row.
        length: elements in the slice.
    """

    bank: int
    subarray: int
    address: int
    offset: int
    length: int

    @property
    def subarray_key(self) -> Tuple[int, int]:
        return (self.bank, self.subarray)

    def to_list(self) -> List[int]:
        """Compact JSON form: ``[bank, subarray, address, offset,
        length]``."""
        return [
            self.bank, self.subarray, self.address,
            self.offset, self.length,
        ]

    @classmethod
    def from_list(cls, fields: Sequence[int]) -> "RowSlice":
        bank, subarray, address, offset, length = fields
        return cls(
            bank=int(bank),
            subarray=int(subarray),
            address=int(address),
            offset=int(offset),
            length=int(length),
        )


@dataclass
class MatrixHandle:
    """A placed matrix: logical shape plus the location of every stored
    row slice.

    ``rows``/``cols`` are the *logical* shape.  When
    ``stored_transposed`` is set, the physical layout holds the
    transpose (one stored row per logical column), which is the layout
    optimisation that lets matmul column operands stream contiguously;
    :meth:`row_slices` then indexes *stored* rows.  A ``mirror`` is an
    additional transposed replica for matrices that need both row and
    column access (transposed matrix-vector products).
    """

    name: str
    rows: int
    cols: int
    rows_placement: List[List[RowSlice]] = field(default_factory=list)
    result_set: bool = False
    stored_transposed: bool = False
    mirror: Optional["MatrixHandle"] = None

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def stored_rows(self) -> int:
        return self.cols if self.stored_transposed else self.rows

    @property
    def stored_cols(self) -> int:
        return self.rows if self.stored_transposed else self.cols

    @property
    def sliced(self) -> bool:
        return any(len(slices) > 1 for slices in self.rows_placement)

    def row_slices(self, row: int) -> List[RowSlice]:
        """Slices of *stored* row ``row`` (a logical column when the
        matrix is stored transposed)."""
        if not 0 <= row < self.stored_rows:
            raise IndexError(
                f"stored row {row} out of range [0, {self.stored_rows})"
            )
        return self.rows_placement[row]

    def element_address(self, row: int, col: int) -> int:
        """Linear address of logical element (row, col).

        Assumes the element's stored row is unsliced at that offset
        (always true at the reduced scales trace generation targets).
        """
        if self.stored_transposed:
            stored_row, offset = col, row
        else:
            stored_row, offset = row, col
        piece = self.row_slices(stored_row)[0]
        if not piece.offset <= offset < piece.offset + piece.length:
            raise IndexError(
                f"element ({row}, {col}) falls outside the first slice "
                f"of stored row {stored_row}"
            )
        return piece.address + (offset - piece.offset)

    def subarrays_used(self) -> List[Tuple[int, int]]:
        """Distinct (bank, subarray) pairs this matrix occupies."""
        seen: Dict[Tuple[int, int], None] = {}
        for slices in self.rows_placement:
            for piece in slices:
                seen.setdefault(piece.subarray_key, None)
        return list(seen)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (the trace cache stores plans)."""
        out: Dict[str, object] = {
            "name": self.name,
            "rows": self.rows,
            "cols": self.cols,
            "rows_placement": [
                [piece.to_list() for piece in slices]
                for slices in self.rows_placement
            ],
            "result_set": self.result_set,
            "stored_transposed": self.stored_transposed,
            "mirror": (
                None if self.mirror is None else self.mirror.to_dict()
            ),
        }
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MatrixHandle":
        mirror = data.get("mirror")
        return cls(
            name=str(data["name"]),
            rows=int(data["rows"]),
            cols=int(data["cols"]),
            rows_placement=[
                [RowSlice.from_list(piece) for piece in slices]
                for slices in data["rows_placement"]
            ],
            result_set=bool(data["result_set"]),
            stored_transposed=bool(data["stored_transposed"]),
            mirror=None if mirror is None else cls.from_dict(mirror),
        )


@dataclass
class PlacementPlan:
    """All matrices of one task, placed."""

    policy: PlacementPolicy
    matrices: Dict[str, MatrixHandle] = field(default_factory=dict)

    def handle(self, name: str) -> MatrixHandle:
        try:
            return self.matrices[name]
        except KeyError:
            raise KeyError(f"matrix {name!r} was never placed") from None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (stored next to cached traces)."""
        return {
            "policy": self.policy.value,
            "matrices": {
                name: handle.to_dict()
                for name, handle in self.matrices.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PlacementPlan":
        return cls(
            policy=PlacementPolicy(data["policy"]),
            matrices={
                name: MatrixHandle.from_dict(handle)
                for name, handle in data["matrices"].items()
            },
        )


class Placer:
    """Allocates matrix rows onto PIM subarrays.

    Args:
        geometry: device geometry (supplies the PIM subarray pool and the
            per-subarray capacity).
        policy: base or distribute placement.
        disjoint_result_sets: reserve a slice of the subarray pool for
            result matrices (the ``unblock`` layout rule).  The pool is
            split so operands use the first portion and results the rest.
        result_set_fraction: fraction of the pool reserved for results
            when ``disjoint_result_sets`` is on.
    """

    def __init__(
        self,
        geometry: Optional[DeviceGeometry] = None,
        policy: PlacementPolicy = PlacementPolicy.DISTRIBUTE,
        disjoint_result_sets: bool = False,
        result_set_fraction: float = 0.25,
    ) -> None:
        self.geometry = geometry or DeviceGeometry()
        self.policy = policy
        self.disjoint_result_sets = disjoint_result_sets
        if not 0.0 < result_set_fraction < 1.0:
            raise ValueError(
                "result_set_fraction must be in (0, 1), got "
                f"{result_set_fraction}"
            )
        self.result_set_fraction = result_set_fraction
        self.address_map = AddressMap(self.geometry)
        pool = [
            (bank, sub)
            for bank in range(self.geometry.pim_banks)
            for sub in range(self.geometry.bank.subarrays)
        ]
        if not pool:
            raise ValueError("geometry has no PIM subarrays")
        if disjoint_result_sets and len(pool) >= 2:
            split = max(1, int(len(pool) * (1.0 - result_set_fraction)))
            split = min(split, len(pool) - 1)
            self._operand_pool = pool[:split]
            self._result_pool = pool[split:]
        else:
            self._operand_pool = pool
            self._result_pool = pool
        self._cursors: Dict[Tuple[int, int], int] = {}
        self._rr_next = {"operand": 0, "result": 0}
        self.plan = PlacementPlan(policy=self.policy)

    # ------------------------------------------------------------------
    @property
    def operand_pool(self) -> Sequence[Tuple[int, int]]:
        return tuple(self._operand_pool)

    @property
    def result_pool(self) -> Sequence[Tuple[int, int]]:
        return tuple(self._result_pool)

    @property
    def subarray_capacity_words(self) -> int:
        return self.geometry.subarray_capacity_words

    def parallelism(self, rows: int) -> int:
        """Processors a distribute-placed matrix of ``rows`` rows uses."""
        return min(rows, len(self._operand_pool))

    def remap_target(
        self,
        quarantined: Sequence[Tuple[int, int]],
        result: bool = False,
    ) -> Tuple[int, int]:
        """A healthy subarray to re-home data evicted from a faulty one.

        The ``degrade`` recovery policy quarantines a subarray after an
        unrecoverable shift fault and replays its placement elsewhere;
        this picks the least-loaded (by allocation cursor) non-
        quarantined subarray from the matching pool.

        Raises:
            MemoryError: when every subarray in the pool is quarantined.
        """
        pool = (
            self._result_pool
            if (result and self.disjoint_result_sets)
            else self._operand_pool
        )
        banned = set(quarantined)
        healthy = [key for key in pool if key not in banned]
        if not healthy:
            raise MemoryError(
                "every PIM subarray in the pool is quarantined; "
                "cannot remap"
            )
        return min(healthy, key=lambda key: (self._cursors.get(key, 0), key))

    # ------------------------------------------------------------------
    def place_matrix(
        self,
        name: str,
        rows: int,
        cols: int,
        result: bool = False,
        transposed: bool = False,
        mirror: bool = False,
    ) -> MatrixHandle:
        """Place a matrix and record it in the plan.

        Args:
            name: unique matrix identifier.
            rows: logical row count (a vector is a 1-row matrix).
            cols: logical row length in elements.
            result: place in the result subarray set (unblock layout).
            transposed: store the transpose, making logical columns
                contiguous (the matmul column-operand layout).
            mirror: additionally allocate a transposed replica so both
                rows and columns stream contiguously (transposed
                matrix-vector access).

        Raises:
            ValueError: on duplicate names, bad shapes, or combining
                ``transposed`` with ``mirror``.
            MemoryError: if the PIM pool cannot hold the matrix.
        """
        if name in self.plan.matrices:
            raise ValueError(f"matrix {name!r} already placed")
        if rows <= 0 or cols <= 0:
            raise ValueError(f"shape must be positive, got {rows}x{cols}")
        if transposed and mirror:
            raise ValueError(
                "a transposed-primary matrix already exposes columns; "
                "mirror is redundant"
            )
        handle = MatrixHandle(
            name=name,
            rows=rows,
            cols=cols,
            result_set=result,
            stored_transposed=transposed,
        )
        pool = (
            self._result_pool
            if (result and self.disjoint_result_sets)
            else self._operand_pool
        )
        pool_kind = "result" if (result and self.disjoint_result_sets) else "operand"
        stored_rows = cols if transposed else rows
        stored_cols = rows if transposed else cols
        for _ in range(stored_rows):
            handle.rows_placement.append(
                self._place_row(stored_cols, pool, pool_kind)
            )
        if mirror:
            mirror_handle = MatrixHandle(
                name=f"{name}^T",
                rows=cols,
                cols=rows,
                result_set=result,
            )
            for _ in range(cols):
                mirror_handle.rows_placement.append(
                    self._place_row(rows, pool, pool_kind)
                )
            handle.mirror = mirror_handle
        self.plan.matrices[name] = handle
        return handle

    def _place_row(
        self,
        cols: int,
        pool: Sequence[Tuple[int, int]],
        pool_kind: str,
    ) -> List[RowSlice]:
        capacity = self.subarray_capacity_words
        n_slices = math.ceil(cols / capacity)
        slices: List[RowSlice] = []
        for piece in range(n_slices):
            offset = piece * capacity
            length = min(capacity, cols - offset)
            target = self._next_target(length, pool, pool_kind)
            bank, sub = target
            cursor = self._cursors.get(target, 0)
            address = (
                self.address_map.subarray_base(bank, sub) + cursor
            )
            self._cursors[target] = cursor + length
            slices.append(
                RowSlice(
                    bank=bank,
                    subarray=sub,
                    address=address,
                    offset=offset,
                    length=length,
                )
            )
        return slices

    def _next_target(
        self,
        length: int,
        pool: Sequence[Tuple[int, int]],
        pool_kind: str,
    ) -> Tuple[int, int]:
        capacity = self.subarray_capacity_words
        if self.policy is PlacementPolicy.DISTRIBUTE:
            start = self._rr_next[pool_kind]
            for step in range(len(pool)):
                candidate = pool[(start + step) % len(pool)]
                if self._cursors.get(candidate, 0) + length <= capacity:
                    self._rr_next[pool_kind] = (start + step + 1) % len(pool)
                    return candidate
            raise MemoryError(
                f"no PIM subarray has {length} free words left"
            )
        # BASE: first-fit sequential packing.
        for candidate in pool:
            if self._cursors.get(candidate, 0) + length <= capacity:
                return candidate
        raise MemoryError(f"no PIM subarray has {length} free words left")
