"""Round construction and the ``unblock`` scheduling optimisation.

Section IV-C: data preparation (inter-subarray/inter-bank copying, done
with read/write operations) and explicit computation (done with shift
operations) cannot coexist inside one subarray.  Without countermeasures
a computing subarray blocks incoming read/writes and, transitively, the
computations waiting on them — serialising the whole device.

The scheduler models a PIM task as a sequence of *rounds*; each round has
a data-preparation phase (broadcast/collect TRAN traffic) and a compute
phase (VPC batches on many subarrays).  Three policies reproduce the
Fig. 22 configurations:

* ``BASE`` — no distribute placement, rounds fully serial.
* ``DISTRIBUTE`` — rows spread across subarrays, but read/write blocking
  still serialises each round's preparation with all compute, and
  device-wide copy traffic is serialised on the shared internal bus.
* ``UNBLOCK`` — operands/results in disjoint subarray sets and
  interleaved execution: round ``k+1``'s preparation overlaps round
  ``k``'s compute (software pipelining), and copies to different banks
  proceed concurrently.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

import numpy as np

from repro.obs.spans import NULL_COLLECTOR
from repro.rm.timing import RMTimingConfig
from repro.sim.stats import EnergyBreakdown, TimeBreakdown


class SchedulerPolicy(enum.Enum):
    """Optimisation levels of Fig. 22."""

    BASE = "base"
    DISTRIBUTE = "distribute"
    UNBLOCK = "unblock"

    @property
    def overlaps_prep(self) -> bool:
        return self is SchedulerPolicy.UNBLOCK


@dataclass(frozen=True)
class PrepCostModel:
    """Cost model of read/write data preparation.

    The Table III read/write latency/energy figures are per *row-level
    access*: one access senses or drives all tracks of a mat row (512
    tracks = 64 words of 8 bits).  Copy traffic therefore moves
    ``access_width_words`` words per read+write pair when row streaming
    is available.

    Attributes:
        access_width_words: words sensed per row-level read access.
        write_access_width_words: words driven per row-level write
            access — RM writes draw a high current (Table III: 11.79 pJ
            vs 3.80 pJ), so the write drivers cover only half a row per
            access.
        activate_ns: fixed cost of opening a row in a target subarray.
        unblock_parallelism: effective concurrent copy streams in
            unblock mode — interleaved execution lets copies to
            different banks use independent peripheries, but shared
            command-bus bandwidth keeps the effective concurrency below
            the 8-bank ideal.
        blocked_access_width: effective words per access in blocked mode
            — read/write commands squeezed between compute phases cannot
            keep rows open, so streaming degenerates to narrow accesses.
    """

    access_width_words: int = 64
    write_access_width_words: int = 32
    activate_ns: float = 10.0
    unblock_parallelism: float = 1.25
    blocked_access_width: int = 2

    def __post_init__(self) -> None:
        if self.access_width_words <= 0 or self.blocked_access_width <= 0:
            raise ValueError("access widths must be positive")
        if self.write_access_width_words <= 0:
            raise ValueError("write_access_width_words must be positive")
        if self.activate_ns < 0:
            raise ValueError("activate_ns must be non-negative")
        if self.unblock_parallelism <= 0:
            raise ValueError("unblock_parallelism must be positive")


@dataclass
class Round:
    """One prep+compute round of a PIM task.

    Attributes:
        label: human-readable tag ("gemm col 17").
        prep_words: words copied during preparation.
        prep_targets: distinct destination subarrays of the preparation.
        compute_ns: span of the compute phase (max over the subarrays
            active this round).
        compute_time: exclusive-category breakdown of the compute span.
        compute_energy: energy of all compute work in the round.
        move_vpcs: TRAN commands issued for the preparation.
    """

    label: str = ""
    prep_words: int = 0
    prep_targets: int = 0
    compute_ns: float = 0.0
    compute_time: TimeBreakdown = field(default_factory=TimeBreakdown)
    compute_energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    move_vpcs: int = 0


@dataclass
class ScheduleResult:
    """Composed execution of a round sequence."""

    total_ns: float
    time: TimeBreakdown
    energy: EnergyBreakdown
    rounds: int


@dataclass(frozen=True)
class TraceDependencies:
    """The scheduler's dependency relation over one columnar trace.

    Execution serialises commands through per-subarray busy-until times
    plus one global RM-bus time: a command waits for — and then extends
    — the busy time of every subarray it *acquires*.  These columns name
    those resources per command, so any two commands are ordered exactly
    when their acquired sets intersect (or both hold the bus); a
    schedule is free to overlap them otherwise.  The vector engine's
    busy-until scan consumes these same columns, so analyses built on
    this relation (the SPV010 race detector) agree with the engine by
    construction rather than with one observed interleaving.

    Attributes:
        home: ``sub(src1)`` — acquired by every command (int64).
        remote: subarray an operand copy acquires — ``sub(src2)`` for
            compute commands whose second operand lives outside the home
            subarray — or ``-1`` when no copy is needed (int64).
        dest: subarray a result/cross copy acquires — ``sub(des)`` when
            it differs from home — or ``-1`` (int64).
        uses_bus: cross-subarray TRANs additionally serialise on the
            shared global RM bus (bool).
    """

    home: np.ndarray
    remote: np.ndarray
    dest: np.ndarray
    uses_bus: np.ndarray

    def __len__(self) -> int:
        return len(self.home)

    def acquired(self, index: int) -> FrozenSet[int]:
        """Subarrays command ``index`` serialises on."""
        out = {int(self.home[index])}
        for column in (self.remote, self.dest):
            value = int(column[index])
            if value >= 0:
                out.add(value)
        return frozenset(out)

    def ordered(self, i: int, j: int) -> bool:
        """Whether a direct busy-until edge orders commands ``i``, ``j``.

        True iff they share an acquired subarray or both hold the global
        bus.  Conservative: ordering inherited transitively through a
        third command is not credited, so ``False`` means "the relation
        itself does not order them", which is exactly what a race check
        must test.
        """
        if bool(self.uses_bus[i]) and bool(self.uses_bus[j]):
            return True
        return not self.acquired(i).isdisjoint(self.acquired(j))


def trace_dependencies(cols, words_per_subarray: int) -> TraceDependencies:
    """Compute the dependency columns of a columnar trace.

    ``cols`` is a :class:`~repro.isa.columnar.ColumnarTrace`; the return
    value is what :func:`repro.sim.vector_exec.execute_columnar` feeds
    its busy-until scan.
    """
    if words_per_subarray < 1:
        raise ValueError(
            f"words_per_subarray must be positive, got {words_per_subarray}"
        )
    compute = cols.is_compute
    home = cols.src1.astype(np.int64) // words_per_subarray
    sub2 = cols.src2.astype(np.int64) // words_per_subarray
    subd = cols.des.astype(np.int64) // words_per_subarray
    remote = np.where(compute & (sub2 != home), sub2, -1)
    dest = np.where(subd != home, subd, -1)
    uses_bus = ~compute & (dest >= 0)
    return TraceDependencies(
        home=home, remote=remote, dest=dest, uses_bus=uses_bus
    )


class Scheduler:
    """Composes rounds under a policy, producing time/energy totals."""

    def __init__(
        self,
        policy: SchedulerPolicy = SchedulerPolicy.UNBLOCK,
        timing: Optional[RMTimingConfig] = None,
        prep_model: Optional[PrepCostModel] = None,
    ) -> None:
        self.policy = policy
        self.timing = timing or RMTimingConfig()
        self.prep_model = prep_model or PrepCostModel()
        #: Observation sink (:mod:`repro.obs`); disabled by default.
        self.obs = NULL_COLLECTOR

    # ------------------------------------------------------------------
    # Preparation phase costs
    # ------------------------------------------------------------------
    def prep_duration_ns(self, round_: Round) -> float:
        """Wall-clock span of a round's data preparation."""
        if round_.prep_words <= 0:
            return 0.0
        model = self.prep_model
        t = self.timing
        if self.policy.overlaps_prep:
            read_accesses = math.ceil(
                round_.prep_words / model.access_width_words
            )
            write_accesses = math.ceil(
                round_.prep_words / model.write_access_width_words
            )
            streams = model.unblock_parallelism
        else:
            read_accesses = write_accesses = math.ceil(
                round_.prep_words / model.blocked_access_width
            )
            streams = 1.0
        activates = max(1, round_.prep_targets)
        serial_ns = (
            activates * model.activate_ns
            + read_accesses * t.read_ns
            + write_accesses * t.write_ns
        )
        return serial_ns / streams

    def prep_energy(self, round_: Round) -> EnergyBreakdown:
        """Energy of a round's preparation.

        One read access per ``access_width_words`` plus one write access
        per ``write_access_width_words`` words moved; blocking wastes
        time, not energy, so the full access widths apply in every mode.
        """
        energy = EnergyBreakdown()
        if round_.prep_words > 0:
            model = self.prep_model
            reads = math.ceil(round_.prep_words / model.access_width_words)
            writes = math.ceil(
                round_.prep_words / model.write_access_width_words
            )
            energy.add("read", reads * self.timing.read_pj)
            energy.add("write", writes * self.timing.write_pj)
        return energy

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def compose(self, rounds: List[Round]) -> ScheduleResult:
        """Total execution of a task's rounds under the current policy."""
        time = TimeBreakdown()
        energy = EnergyBreakdown()
        total_ns = 0.0
        if not rounds:
            return ScheduleResult(0.0, time, energy, 0)

        for round_ in rounds:
            energy.merge(self.prep_energy(round_))
            energy.merge(round_.compute_energy)

        if not self.policy.overlaps_prep:
            for round_ in rounds:
                prep_ns = self.prep_duration_ns(round_)
                total_ns += prep_ns + round_.compute_ns
                self._add_prep_time(time, prep_ns)
                time.merge(round_.compute_time)
            result = ScheduleResult(total_ns, time, energy, len(rounds))
            self._observe_rounds(rounds, result)
            return result

        # Unblock: interleaved execution software-pipelines preparation
        # against compute across the whole schedule.  Copies and compute
        # target disjoint subarray sets, so preparation flows fluidly
        # behind whatever compute is in flight: the schedule is bound by
        # whichever of (total compute, total prep) is larger, plus the
        # startup delay until the first target subarray has its operand
        # (per-subarray compute starts as soon as its copy lands).
        first = rounds[0]
        startup = self.prep_duration_ns(first) / max(1, first.prep_targets)
        total_prep = sum(self.prep_duration_ns(r) for r in rounds)
        remaining_prep = max(0.0, total_prep - startup)
        total_compute = sum(r.compute_ns for r in rounds)
        total_ns = startup + max(total_compute, remaining_prep)
        self._add_prep_time(time, startup)
        merged_compute = TimeBreakdown()
        for round_ in rounds:
            merged_compute.merge(round_.compute_time)
        self._add_overlapped_compute(
            time, merged_compute, total_compute, remaining_prep
        )
        result = ScheduleResult(total_ns, time, energy, len(rounds))
        self._observe_rounds(rounds, result)
        return result

    # ------------------------------------------------------------------
    def _observe_rounds(
        self, rounds: List[Round], result: ScheduleResult
    ) -> None:
        """Emit one composed schedule into the observation sink.

        Enabled-checked once per compose; each round's prep and compute
        phases become spans on the ``sched.prep`` / ``sched.compute``
        lanes, reconstructed with the same policy-aware clocks as
        :func:`repro.analysis.timeline.schedule_timeline` (reused
        directly — it is the reference reconstruction of this
        composition).
        """
        obs = self.obs
        if not obs.enabled or not rounds:
            return
        from repro.analysis.timeline import schedule_timeline

        for interval in schedule_timeline(self, rounds):
            obs.emit(
                interval.label or interval.lane,
                "sched",
                interval.start_ns,
                interval.duration_ns,
                f"sched.{interval.lane}",
            )
        registry = obs.registry
        registry.counter("sched.composes").inc()
        registry.counter("sched.rounds").inc(len(rounds))
        registry.counter("sched.prep_words").inc(
            sum(r.prep_words for r in rounds)
        )
        registry.counter("sched.move_vpcs").inc(
            sum(r.move_vpcs for r in rounds)
        )
        registry.gauge("sched.total_ns").set(result.total_ns)

    # ------------------------------------------------------------------
    def _add_prep_time(self, time: TimeBreakdown, prep_ns: float) -> None:
        """Charge exposed preparation time, split read/write by latency."""
        if prep_ns <= 0:
            return
        t = self.timing
        read_share = t.read_ns / (t.read_ns + t.write_ns)
        time.add("read", prep_ns * read_share)
        time.add("write", prep_ns * (1.0 - read_share))

    def _add_overlapped_compute(
        self,
        time: TimeBreakdown,
        compute_time: TimeBreakdown,
        compute_ns: float,
        concurrent_prep_ns: float,
    ) -> None:
        """Account one unblock-mode span of max(compute, next prep).

        The portion where prep and compute coincide is overlapped time;
        any prep overhang beyond the compute span is exposed read/write.
        """
        if compute_ns <= 0:
            self._add_prep_time(time, concurrent_prep_ns)
            return
        hidden = min(compute_ns, concurrent_prep_ns)
        overhang = max(0.0, concurrent_prep_ns - compute_ns)
        # Reclassify the coincident part of the compute span: move it
        # from its process/shift components into "overlapped".
        adjusted = TimeBreakdown(
            read_ns=compute_time.read_ns,
            write_ns=compute_time.write_ns,
            shift_ns=compute_time.shift_ns,
            process_ns=compute_time.process_ns,
            overlapped_ns=compute_time.overlapped_ns,
        )
        remaining = hidden
        for component in ("process_ns", "shift_ns"):
            if remaining <= 0:
                break
            available = getattr(adjusted, component)
            moved = min(available, remaining)
            setattr(adjusted, component, available - moved)
            adjusted.overlapped_ns += moved
            remaining -= moved
        time.merge(adjusted)
        self._add_prep_time(time, overhang)
