"""Configuration serialisation: provenance for archived results.

A results archive (``repro.analysis.results_io``) is only reproducible
together with the exact device configuration that produced it.  This
module round-trips :class:`~repro.core.device.StreamPIMConfig` (and all
its nested dataclasses) through plain JSON-able dictionaries.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Mapping, TextIO, Union

from repro.core.device import StreamPIMConfig
from repro.core.processor import RMProcessorConfig
from repro.core.rmbus import RMBusConfig
from repro.core.scheduler import PrepCostModel, SchedulerPolicy
from repro.rm.address import DeviceGeometry
from repro.rm.bank import BankConfig
from repro.rm.mat import MatConfig
from repro.rm.subarray import SubarrayConfig
from repro.rm.timing import RMTimingConfig

_FORMAT_VERSION = 1


def config_to_dict(config: StreamPIMConfig) -> dict:
    """A StreamPIMConfig as a plain JSON-able dictionary."""
    payload = asdict(config)
    payload["scheduler_policy"] = config.scheduler_policy.value
    payload["format_version"] = _FORMAT_VERSION
    return payload


def config_from_dict(payload: Mapping) -> StreamPIMConfig:
    """Inverse of :func:`config_to_dict`."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported config format version {version!r}")
    try:
        geometry = payload["geometry"]
        bank = geometry["bank"]
        subarray = bank["subarray"]
        config = StreamPIMConfig(
            geometry=DeviceGeometry(
                banks=geometry["banks"],
                pim_banks=geometry["pim_banks"],
                bank=BankConfig(
                    subarrays=bank["subarrays"],
                    subarray=SubarrayConfig(
                        mats=subarray["mats"],
                        pim_mats=subarray["pim_mats"],
                        mat=MatConfig(**subarray["mat"]),
                        row_buffer_bytes=subarray["row_buffer_bytes"],
                    ),
                    pim_bank=bank["pim_bank"],
                ),
            ),
            timing=RMTimingConfig(**payload["timing"]),
            processor=RMProcessorConfig(**payload["processor"]),
            bus=RMBusConfig(**payload["bus"]),
            scheduler_policy=SchedulerPolicy(payload["scheduler_policy"]),
            prep_model=PrepCostModel(**payload["prep_model"]),
            vpc_decode_ns=payload["vpc_decode_ns"],
        )
    except KeyError as missing:
        raise ValueError(f"malformed config payload: missing {missing}")
    return config


def save_config(
    config: StreamPIMConfig, target: Union[str, Path, TextIO]
) -> None:
    """Write a configuration as JSON."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            save_config(config, handle)
        return
    json.dump(config_to_dict(config), target, indent=1)


def load_config(source: Union[str, Path, TextIO]) -> StreamPIMConfig:
    """Reload a configuration written by :func:`save_config`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return load_config(handle)
    return config_from_dict(json.load(source))
