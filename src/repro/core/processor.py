"""RM processor: the four-stage pipelined matrix processor (Fig. 11).

The processor is built entirely from domain-wall nanowire structures —
duplicators (Fig. 9), an AND-plane multiplier (Fig. 8), an adder tree and
a circle adder (Fig. 10) — and therefore performs all computation with
shift operations.  Its timing model is derived from those structures:

* **Stage 1 (fetch/split)** — incoming operands are split into bits:
  depth 1 cycle, one element per cycle.
* **Stage 2 (duplicate + multiply)** — an ``n``-bit multiplication needs
  ``n`` duplications of operand A (one per bit of B); with ``d``
  duplicators working on different parts of the stream, a new element can
  enter every ``ceil(n / d)`` cycles.  One duplication (four shift steps
  of ~2.13 ns) fits in one 100 MHz cycle, so the duplication initiation
  interval *is* the element interval.  The AND plane forms all partial
  products in the same flow.
* **Stage 3 (adder tree)** — ``ceil(log2(n))`` adder levels, one level
  per cycle, pipelined.
* **Stage 4 (circle adder)** — one accumulation per cycle (the four-step
  loop of Fig. 10 also fits one cycle at 100 MHz).

Operation-specific bypasses (section III-C): scalar/vector addition
bypasses stages 1-3; scalar(-vector) multiplication bypasses stage 4.

Functionally the processor computes exact integer results; a bit-accurate
mode drives the :mod:`repro.dwlogic` gate models instead of numpy and is
used by tests to prove the fast path equals the gate-level datapath.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dwlogic.adder import AdderTree
from repro.dwlogic.circle_adder import CircleAdder
from repro.dwlogic.gates import GateCounter
from repro.dwlogic.multiplier import ShiftMultiplier
from repro.isa.vpc import VPCOpcode
from repro.rm.timing import RMTimingConfig
from repro.sim.pipeline import PipelineModel, PipelineStage


@dataclass(frozen=True)
class RMProcessorConfig:
    """Structural parameters of one RM processor.

    Attributes:
        word_bits: operand width (Table III datapath: 8).
        duplicators: in-processor duplicator count (Table III: 2).
        accumulator_bits: width of the circle adder's loop nanowire.
    """

    word_bits: int = 8
    duplicators: int = 2
    accumulator_bits: int = 32

    def __post_init__(self) -> None:
        if self.word_bits <= 0:
            raise ValueError("word_bits must be positive")
        if self.duplicators <= 0:
            raise ValueError("duplicators must be positive")
        if self.accumulator_bits < 2 * self.word_bits:
            raise ValueError(
                "accumulator must be at least twice the operand width"
            )

    @property
    def duplication_interval(self) -> int:
        """Cycles between elements entering the multiply stage."""
        return math.ceil(self.word_bits / self.duplicators)

    @property
    def adder_tree_depth(self) -> int:
        """Pipeline depth of the partial-product adder tree."""
        return AdderTree(self.word_bits).depth


class RMProcessor:
    """Timing + functional model of one subarray's RM processor."""

    def __init__(
        self,
        config: RMProcessorConfig | None = None,
        timing: RMTimingConfig | None = None,
    ) -> None:
        self.config = config or RMProcessorConfig()
        self.timing = timing or RMTimingConfig()
        cfg = self.config
        self._stages = {
            "fetch": PipelineStage("fetch", depth=1, interval=1),
            "duplicate_multiply": PipelineStage(
                "duplicate_multiply",
                depth=cfg.duplication_interval,
                interval=cfg.duplication_interval,
            ),
            "adder_tree": PipelineStage(
                "adder_tree", depth=max(1, cfg.adder_tree_depth), interval=1
            ),
            "circle_adder": PipelineStage("circle_adder", depth=1, interval=1),
        }
        self._full = PipelineModel(
            (
                self._stages["fetch"],
                self._stages["duplicate_multiply"],
                self._stages["adder_tree"],
                self._stages["circle_adder"],
            )
        )

    # ------------------------------------------------------------------
    # Pipelines per operation (section III-C bypasses)
    # ------------------------------------------------------------------
    def pipeline_for(self, opcode: VPCOpcode) -> PipelineModel:
        """The active pipeline after operation-specific bypasses."""
        if opcode is VPCOpcode.MUL:
            return self._full
        if opcode is VPCOpcode.SMUL:
            return self._full.without("circle_adder")
        if opcode is VPCOpcode.ADD:
            return self._full.without(
                "fetch", "duplicate_multiply", "adder_tree"
            )
        raise ValueError(f"{opcode} is not a compute command")

    def compute_cycles(self, opcode: VPCOpcode, n_elements: int) -> int:
        """Cycles the processor pipeline needs for one VPC."""
        if n_elements <= 0:
            raise ValueError(
                f"n_elements must be positive, got {n_elements}"
            )
        return self.pipeline_for(opcode).latency_cycles(n_elements)

    def initiation_interval(self, opcode: VPCOpcode) -> int:
        """Steady-state cycles per element for one VPC kind."""
        return self.pipeline_for(opcode).initiation_interval

    def compute_ns(self, opcode: VPCOpcode, n_elements: int) -> float:
        return self.compute_cycles(opcode, n_elements) * self.timing.cycle_ns

    # ------------------------------------------------------------------
    # Energy (Table III per-op figures)
    # ------------------------------------------------------------------
    def compute_energy_pj(self, opcode: VPCOpcode, n_elements: int) -> float:
        """Processor energy for one VPC.

        A dot product performs one multiply and one accumulate per
        element; SMUL one multiply per element; ADD one addition per
        element.
        """
        if n_elements <= 0:
            raise ValueError(
                f"n_elements must be positive, got {n_elements}"
            )
        t = self.timing
        if opcode is VPCOpcode.MUL:
            return n_elements * (t.pim_mul_pj + t.pim_add_pj)
        if opcode is VPCOpcode.SMUL:
            return n_elements * t.pim_mul_pj
        if opcode is VPCOpcode.ADD:
            return n_elements * t.pim_add_pj
        raise ValueError(f"{opcode} is not a compute command")

    # ------------------------------------------------------------------
    # Functional execution (numpy fast path)
    # ------------------------------------------------------------------
    def apply(
        self,
        opcode: VPCOpcode,
        src1: np.ndarray,
        src2: np.ndarray,
    ) -> np.ndarray:
        """Compute a VPC's result exactly (wide-integer arithmetic).

        ``src1``/``src2`` hold unsigned elements (external inputs are
        ``word_bits`` wide; chained intermediates may be wider).  The
        result is returned at accumulator precision; for MUL it is a
        single-element array (the dot product), matching what the circle
        adder streams out.
        """
        a = np.asarray(src1, dtype=np.int64)
        b = np.asarray(src2, dtype=np.int64)
        self._check_operand_range(a)
        self._check_operand_range(b)
        if opcode is VPCOpcode.MUL:
            if a.shape != b.shape:
                raise ValueError(
                    f"operand shapes differ: {a.shape} vs {b.shape}"
                )
            return np.array([int(np.dot(a, b))], dtype=np.int64)
        if opcode is VPCOpcode.SMUL:
            if a.size != 1:
                raise ValueError("SMUL src1 must be a scalar")
            return a[0] * b
        if opcode is VPCOpcode.ADD:
            if a.shape != b.shape:
                raise ValueError(
                    f"operand shapes differ: {a.shape} vs {b.shape}"
                )
            return a + b
        raise ValueError(f"{opcode} is not a compute command")

    def apply_bit_accurate(
        self,
        opcode: VPCOpcode,
        src1: Sequence[int],
        src2: Sequence[int],
        counter: GateCounter | None = None,
    ) -> Sequence[int]:
        """Compute the same result through the gate-level datapath.

        Slow; used to validate :meth:`apply` and by the gate-energy
        ablation.  Returns a Python list.
        """
        width = self.config.word_bits
        if opcode is VPCOpcode.MUL:
            multiplier = ShiftMultiplier(width)
            circle = CircleAdder(self.config.accumulator_bits)
            products = [
                multiplier.multiply(int(a), int(b), counter)
                for a, b in zip(src1, src2)
            ]
            return [circle.dot_product_tail(products, counter)]
        if opcode is VPCOpcode.SMUL:
            multiplier = ShiftMultiplier(width)
            scalar = int(src1[0])
            return [multiplier.multiply(scalar, int(b), counter) for b in src2]
        if opcode is VPCOpcode.ADD:
            circle = CircleAdder(self.config.accumulator_bits)
            from repro.dwlogic.bitutils import bits_to_int, int_to_bits

            out = []
            for a, b in zip(src1, src2):
                width_a = max(1, int(a).bit_length())
                width_b = max(1, int(b).bit_length())
                bits = circle.add_once(
                    int_to_bits(int(a), width_a),
                    int_to_bits(int(b), width_b),
                    counter,
                )
                out.append(bits_to_int(bits))
            return out
        raise ValueError(f"{opcode} is not a compute command")

    def _check_operand_range(self, values: np.ndarray) -> None:
        """Operands must be non-negative.

        External inputs are ``word_bits`` wide, but chained intermediate
        results (dot products, scaled sums) legitimately exceed one word
        — physically they occupy several words / the accumulator's wide
        nanowire, and the functional model carries the full value.
        """
        if values.size and values.min() < 0:
            raise ValueError("operands must be non-negative integers")
