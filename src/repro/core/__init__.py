"""StreamPIM core: the paper's primary contribution.

The RM processor (section III-C), the segmented RM bus (III-D), the
subarray PIM dataflow (III-F), the bank controller and device control
flow (IV-B), the ``distribute``/``unblock`` parallelism optimisations
(IV-C), and the host programming interface (IV-D).
"""

from repro.core.processor import RMProcessor, RMProcessorConfig
from repro.core.rmbus import RMBus, RMBusConfig
from repro.core.subarray_engine import SubarrayEngine, VPCProfile
from repro.core.placement import (
    PlacementPolicy,
    MatrixHandle,
    PlacementPlan,
    Placer,
)
from repro.core.scheduler import Scheduler, SchedulerPolicy, Round
from repro.core.bank_controller import BankController, DecodedVPC
from repro.core.host_interface import (
    HostProtocolConfig,
    HostProtocolSimulator,
    ProtocolStats,
)
from repro.core.redundancy import (
    RedundancyAnalysis,
    RedundancyConfig,
    RedundancyMode,
)
from repro.core.device import (
    StreamPIMDevice,
    StreamPIMConfig,
    StreamExecResult,
)
from repro.core.stream import (
    DEFAULT_CHUNK_VPCS,
    StreamTelemetry,
    iter_trace_chunks,
    run_stream,
    task_chunk_producer,
)
from repro.core.task import PimTask, create_pim_task, TaskOp, RunReport

__all__ = [
    "RMProcessor",
    "RMProcessorConfig",
    "RMBus",
    "RMBusConfig",
    "SubarrayEngine",
    "VPCProfile",
    "PlacementPolicy",
    "MatrixHandle",
    "PlacementPlan",
    "Placer",
    "Scheduler",
    "SchedulerPolicy",
    "Round",
    "BankController",
    "DecodedVPC",
    "HostProtocolConfig",
    "HostProtocolSimulator",
    "ProtocolStats",
    "RedundancyAnalysis",
    "RedundancyConfig",
    "RedundancyMode",
    "StreamPIMDevice",
    "StreamPIMConfig",
    "StreamExecResult",
    "DEFAULT_CHUNK_VPCS",
    "StreamTelemetry",
    "iter_trace_chunks",
    "run_stream",
    "task_chunk_producer",
    "PimTask",
    "create_pim_task",
    "TaskOp",
    "RunReport",
]
