"""Redundancy support for error tolerance (section VI).

"StreamPIM can also adopt architectural supports from [CORUSCANT]
(i.e., redundancy design) to compensate for error tolerance."  This
module models those supports and their costs so the
reliability-vs-overhead trade-off can be quantified:

* **guard retry** — every bus hop is checked against its segment's guard
  domains and retried on detection; turns detected faults into a small
  expected time overhead and leaves only the undetected residue.
* **TMR processors** — three RM processors compute each VPC and a
  domain-wall majority vote masks any single-processor upset; triples
  the (tiny) processor area and adds one vote stage to the pipeline.
* **spare tracks** — spare racetracks per mat remap wires with permanent
  shift defects; pure area overhead.

The numbers compose with :class:`~repro.rm.faults.ShiftFaultModel` for
fault rates and :class:`~repro.analysis.area.AreaModel` for area.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.analysis.area import AreaModel
from repro.core.rmbus import RMBusConfig
from repro.rm.faults import ShiftFaultConfig, ShiftFaultModel


class RedundancyMode(enum.Enum):
    """Error-tolerance configurations."""

    NONE = "none"
    GUARD_RETRY = "guard-retry"
    GUARD_RETRY_TMR = "guard-retry+tmr"


@dataclass(frozen=True)
class RedundancyConfig:
    """Parameters of the redundancy design.

    Attributes:
        mode: which supports are enabled.
        retry_cycles: cycles to replay one detected-faulty hop.
        processor_upset_probability: chance one processor produces a
            wrong result during one VPC (transient upsets in the
            domain-wall logic).
        spare_tracks_per_mat: spare racetracks added per mat.
        vote_stage_cycles: extra pipeline depth of the majority vote.
    """

    mode: RedundancyMode = RedundancyMode.GUARD_RETRY
    retry_cycles: int = 2
    processor_upset_probability: float = 1e-6
    spare_tracks_per_mat: int = 8
    vote_stage_cycles: int = 1

    def __post_init__(self) -> None:
        if self.retry_cycles < 0 or self.vote_stage_cycles < 0:
            raise ValueError("cycle overheads must be non-negative")
        if not 0.0 <= self.processor_upset_probability < 1.0:
            raise ValueError("upset probability must be in [0, 1)")
        if self.spare_tracks_per_mat < 0:
            raise ValueError("spare tracks must be non-negative")


@dataclass(frozen=True)
class ReliabilityReport:
    """Outcome of one redundancy configuration on one transfer shape."""

    mode: RedundancyMode
    undetected_transfer_fault: float
    residual_compute_fault: float
    expected_time_overhead: float
    area_overhead: float

    @property
    def total_undetected(self) -> float:
        return 1.0 - (1.0 - self.undetected_transfer_fault) * (
            1.0 - self.residual_compute_fault
        )


class RedundancyAnalysis:
    """Composes fault, timing, and area models per redundancy mode."""

    def __init__(
        self,
        config: Optional[RedundancyConfig] = None,
        faults: Optional[ShiftFaultConfig] = None,
        bus: Optional[RMBusConfig] = None,
    ) -> None:
        self.config = config or RedundancyConfig()
        self.fault_model = ShiftFaultModel(faults)
        self.bus = bus or RMBusConfig()

    # ------------------------------------------------------------------
    def transfer_fault(self, words: int) -> float:
        """Undetected fault probability of one transfer under the mode."""
        if self.config.mode is RedundancyMode.NONE:
            # No guard checking: every hop fault goes undetected.
            hop = self.fault_model.shift_fault_probability(
                self.bus.segment_domains
            )
            hops = self._total_hops(words)
            return 1.0 - (1.0 - hop) ** hops
        return self.fault_model.segmented_transfer_fault(self.bus, words)

    def compute_fault(self) -> float:
        """Residual per-VPC compute fault probability."""
        upset = self.config.processor_upset_probability
        if self.config.mode is RedundancyMode.GUARD_RETRY_TMR:
            # A wrong result needs two simultaneous upsets to out-vote.
            return 3 * upset**2
        return upset

    def time_overhead(self, words: int) -> float:
        """Expected relative slowdown of one transfer."""
        if self.config.mode is RedundancyMode.NONE:
            return 0.0
        hop = self.fault_model.shift_fault_probability(
            self.bus.segment_domains
        )
        detected = hop * self.fault_model.config.guard_detection
        retry = detected * self.config.retry_cycles
        overhead = retry / 1.0  # per hop, relative to its single cycle
        if self.config.mode is RedundancyMode.GUARD_RETRY_TMR:
            # The vote stage adds fill depth, amortised over the stream.
            overhead += self.config.vote_stage_cycles / max(words, 1)
        return overhead

    def area_overhead(self) -> float:
        """Extra device area relative to the baseline."""
        area = AreaModel()
        baseline = area.breakdown().total_domains
        extra = 0.0
        if self.config.mode is RedundancyMode.GUARD_RETRY_TMR:
            extra += 2 * area.processor_domains()  # two more processors
        if self.config.spare_tracks_per_mat > 0:
            sub = area.geometry.bank.subarray
            per_mat = (
                self.config.spare_tracks_per_mat
                * area.transfer_track_domains_each()
            )
            extra += per_mat * area.geometry.total_subarrays * sub.mats
        return extra / baseline

    def transfer_hops(self, words: int) -> int:
        """Bounded segment hops one ``words``-long transfer performs."""
        if words <= 0:
            raise ValueError(f"words must be positive, got {words}")
        return self._total_hops(words)

    def expected_undetected_faults(self, words: int) -> float:
        """Expected count of undetected hop faults in one transfer.

        This is the analytic quantity Monte-Carlo fault campaigns
        (:mod:`repro.resilience`) estimate empirically; the two agree to
        within sampling error because both count
        ``hops x p_hop x (1 - guard_detection)`` over the same hop
        total as :meth:`transfer_fault`.
        """
        if words <= 0:
            raise ValueError(f"words must be positive, got {words}")
        hop = self.fault_model.shift_fault_probability(
            self.bus.segment_domains
        )
        return self._total_hops(words) * self.fault_model.undetected(hop)

    def report(self, words: int) -> ReliabilityReport:
        return ReliabilityReport(
            mode=self.config.mode,
            undetected_transfer_fault=self.transfer_fault(words),
            residual_compute_fault=self.compute_fault(),
            expected_time_overhead=self.time_overhead(words),
            area_overhead=self.area_overhead(),
        )

    # ------------------------------------------------------------------
    def _total_hops(self, words: int) -> int:
        chunks = -(-words // self.bus.words_per_segment)
        return chunks * self.bus.n_segments
