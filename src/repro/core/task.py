"""Host programming interface (section IV-D, Fig. 16).

A :class:`PimTask` collects matrix operands and matrix-grained
operations, then lowers them to vector-grained VPCs with the
``distribute``/``unblock`` optimisations applied::

    task = create_pim_task()
    task.add_matrix("A", a)          # numpy arrays, unsigned 8-bit
    task.add_matrix("B", b)
    task.add_matrix("C", shape=(m, n))
    task.add_operation(TaskOp.MATMUL, "A", "B", "C")
    report = task.run()              # -> RunReport

Lowering produces two artifacts:

* a *round plan* — prep/compute rounds executed analytically by the
  device's scheduler (used at paper scale, millions of VPCs);
* optionally an explicit :class:`~repro.isa.trace.VPCTrace` — one command
  per dot product / transfer, with real placed addresses (used by the
  event-driven mode and for Table IV counting; enumerating it is O(#VPC),
  so it is intended for reduced problem sizes).

VPC counting follows the trace-generation convention recovered from
Table IV: every PIM VPC is accompanied by one operand-delivery TRAN, plus
one collection TRAN when its result is not co-located with the row it was
computed next to (matrix-matrix products leave result rows in place;
matrix-vector products collect each scalar result).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.device import StreamPIMDevice, StreamPIMConfig
from repro.core.placement import (
    MatrixHandle,
    Placer,
    PlacementPolicy,
)
from repro.core.scheduler import Round, SchedulerPolicy
from repro.isa.columnar import (
    ADD_BYTE,
    MUL_BYTE,
    RECORD_DTYPE,
    SMUL_BYTE,
    TRAN_BYTE,
    ColumnarTrace,
    ColumnarTraceBuilder,
)
from repro.isa.encoding import NO_OPERAND_SENTINEL
from repro.isa.trace import VPCTrace
from repro.isa.vpc import VPC, VPCOpcode
from repro.sim.stats import EnergyBreakdown, RunStats, TimeBreakdown


class TaskOp(enum.Enum):
    """Matrix-grained operations a task understands."""

    MATMUL = "matmul"  # C = A @ B
    MATVEC = "matvec"  # y = A @ x
    MATVEC_T = "matvec_t"  # y = A.T @ x
    MAT_ADD = "mat_add"  # C = A + B
    MAT_SCALE = "mat_scale"  # B = alpha * A
    VEC_ADD = "vec_add"  # z = x + y
    VEC_SCALE = "vec_scale"  # y = alpha * x
    DOT = "dot"  # s = x . y
    MATVEC_ACC = "matvec_acc"  # y = y + A @ x
    MATVEC_T_ACC = "matvec_t_acc"  # y = y + A.T @ x


@dataclass(frozen=True)
class TaskOperation:
    """One recorded operation: opcode plus operand/destination names."""

    op: TaskOp
    inputs: Tuple[str, ...]
    output: str
    scalar: Optional[str] = None


@dataclass
class OpCounts:
    """Closed-form VPC counts of one lowered operation."""

    pim_vpcs: int = 0
    move_vpcs: int = 0

    def merge(self, other: "OpCounts") -> None:
        self.pim_vpcs += other.pim_vpcs
        self.move_vpcs += other.move_vpcs


@dataclass
class RunReport:
    """Result of :meth:`PimTask.run`.

    Attributes:
        stats: platform timing/energy statistics.
        results: functional values of every matrix after the task.
        counts: total VPC counts (the Table IV columns).
        per_op_ns: execution time attributed to each operation, in order.
    """

    stats: RunStats
    results: Dict[str, np.ndarray]
    counts: OpCounts
    per_op_ns: List[float] = field(default_factory=list)

    @property
    def time_ns(self) -> float:
        return self.stats.time_ns

    @property
    def energy_pj(self) -> float:
        return self.stats.energy.total_pj


class PimTask:
    """A StreamPIM computation task (Fig. 16)."""

    def __init__(self, device: Optional[StreamPIMDevice] = None) -> None:
        self.device = device or StreamPIMDevice()
        self._matrices: Dict[str, np.ndarray] = {}
        self._scalars: Dict[str, int] = {}
        self._operations: List[TaskOperation] = []
        self._ran = False

    # ------------------------------------------------------------------
    # Step 2 of Fig. 16: register operands and operations
    # ------------------------------------------------------------------
    def add_matrix(
        self,
        name: str,
        values: Optional[np.ndarray] = None,
        shape: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Register a matrix operand (or a destination via ``shape``)."""
        if name in self._matrices or name in self._scalars:
            raise ValueError(f"operand {name!r} already added")
        if values is None:
            if shape is None:
                raise ValueError("provide either values or shape")
            rows, cols = shape
            if rows <= 0 or cols <= 0:
                raise ValueError(f"shape must be positive, got {shape}")
            # Fresh zeros need no defensive copy (and numpy keeps the
            # pages virtual until touched, which matters at paper scale).
            values = np.zeros((rows, cols), dtype=np.int64)
        else:
            values = np.asarray(values, dtype=np.int64)
            if values.ndim == 1:
                values = values.reshape(1, -1)
            if values.ndim != 2:
                raise ValueError(
                    f"matrices must be 1-D or 2-D, got {values.ndim}-D"
                )
            values = values.copy()
        self._matrices[name] = values

    def add_vector(self, name: str, values: np.ndarray) -> None:
        """Register a vector operand (stored as a 1-row matrix)."""
        self.add_matrix(name, np.asarray(values).reshape(1, -1))

    def add_scalar(self, name: str, value: int) -> None:
        """Register a scalar operand (for SMUL-style scaling)."""
        if name in self._matrices or name in self._scalars:
            raise ValueError(f"operand {name!r} already added")
        self._scalars[name] = int(value)

    def add_operation(
        self,
        op: TaskOp,
        *names: str,
        scalar: Optional[str] = None,
    ) -> None:
        """Record one operation; the last name is the destination."""
        if len(names) < 2:
            raise ValueError("an operation needs inputs and a destination")
        *inputs, output = names
        for name in inputs:
            if name not in self._matrices:
                raise KeyError(f"unknown input matrix {name!r}")
        if output not in self._matrices:
            raise KeyError(f"unknown destination matrix {output!r}")
        if scalar is not None and scalar not in self._scalars:
            raise KeyError(f"unknown scalar {scalar!r}")
        self._validate_shapes(op, tuple(inputs), output)
        self._operations.append(
            TaskOperation(op, tuple(inputs), output, scalar)
        )

    # ------------------------------------------------------------------
    # Step 3 of Fig. 16: run
    # ------------------------------------------------------------------
    def run(self, workload: str = "task", functional: bool = True) -> RunReport:
        """Lower, schedule, and execute the task on the device.

        Args:
            workload: label recorded in the returned stats.
            functional: compute the real matrix results (numpy).  Pass
                False for timing-only runs at paper scale, where the
                functional arithmetic would dwarf the simulation cost.

        Returns:
            A :class:`RunReport` with timing/energy statistics, the
            functional results (empty when ``functional`` is False), and
            the VPC counts.
        """
        if not self._operations:
            raise RuntimeError("task has no operations; add some first")
        placer = self._build_placer()
        handles = self._place_all(placer)
        rounds: List[Round] = []
        counts = OpCounts()
        per_op_ns: List[float] = []
        results = (
            {k: v.copy() for k, v in self._matrices.items()}
            if functional
            else {}
        )
        for operation in self._operations:
            op_rounds, op_counts = self._lower(operation, handles, placer)
            op_result = self.device.execute_rounds(op_rounds)
            per_op_ns.append(op_result.total_ns)
            rounds.extend(op_rounds)
            counts.merge(op_counts)
            if functional:
                self._apply_functional(operation, results)
        schedule = self.device.execute_rounds(rounds)
        stats = RunStats(
            platform="StPIM",
            workload=workload,
            time_ns=schedule.total_ns,
            time_breakdown=schedule.time,
            energy=schedule.energy,
        )
        stats.bump("pim_vpcs", counts.pim_vpcs)
        stats.bump("move_vpcs", counts.move_vpcs)
        self._ran = True
        return RunReport(
            stats=stats,
            results=results,
            counts=counts,
            per_op_ns=per_op_ns,
        )

    # ------------------------------------------------------------------
    # Lowering to rounds (analytic mode)
    # ------------------------------------------------------------------
    def _build_placer(self) -> Placer:
        policy = (
            PlacementPolicy.BASE
            if self.device.config.scheduler_policy is SchedulerPolicy.BASE
            else PlacementPolicy.DISTRIBUTE
        )
        return Placer(
            geometry=self.device.config.geometry,
            policy=policy,
            disjoint_result_sets=(
                self.device.config.scheduler_policy
                is SchedulerPolicy.UNBLOCK
            ),
        )

    def _place_all(self, placer: Placer) -> Dict[str, MatrixHandle]:
        """Place every matrix, applying the layout optimisations.

        Matrices consumed only as the second operand of matrix products
        (or produced by one and consumed by another) are stored
        transposed, so their columns stream contiguously onto the RM
        bus.  Matrices read by transposed matrix-vector products get a
        transposed mirror replica (both orientations are accessed).
        """
        produced = {op.output for op in self._operations}
        matmul_second = {
            op.inputs[1]
            for op in self._operations
            if op.op is TaskOp.MATMUL
        }
        non_transposable = set()
        for op in self._operations:
            if op.op is TaskOp.MATMUL:
                non_transposable.add(op.inputs[0])
            else:
                non_transposable.update(op.inputs)
                non_transposable.add(op.output)
        transposed = matmul_second - non_transposable
        matvec_t_inputs = {
            op.inputs[0]
            for op in self._operations
            if op.op in (TaskOp.MATVEC_T, TaskOp.MATVEC_T_ACC)
        }
        stale_mirrors = matvec_t_inputs & produced
        if stale_mirrors:
            raise NotImplementedError(
                f"matrices {sorted(stale_mirrors)} are written and then "
                "read column-wise; keeping their transposed mirrors "
                "coherent is not supported"
            )
        mirrored = matvec_t_inputs - transposed
        handles: Dict[str, MatrixHandle] = {}
        for name, values in self._matrices.items():
            rows, cols = values.shape
            handles[name] = placer.place_matrix(
                name,
                rows,
                cols,
                result=name in produced,
                transposed=name in transposed,
                mirror=name in mirrored,
            )
        return handles

    def _lower(
        self,
        operation: TaskOperation,
        handles: Dict[str, MatrixHandle],
        placer: Placer,
    ) -> Tuple[List[Round], OpCounts]:
        op = operation.op
        if op is TaskOp.MATMUL:
            return self._lower_matmul(operation, handles, placer)
        if op in (TaskOp.MATVEC, TaskOp.MATVEC_T, TaskOp.MATVEC_ACC,
                  TaskOp.MATVEC_T_ACC):
            return self._lower_matvec(operation, handles, placer)
        if op in (TaskOp.MAT_ADD, TaskOp.VEC_ADD):
            return self._lower_add(operation, handles, placer)
        if op in (TaskOp.MAT_SCALE, TaskOp.VEC_SCALE):
            return self._lower_scale(operation, handles, placer)
        if op is TaskOp.DOT:
            return self._lower_dot(operation, handles, placer)
        raise NotImplementedError(f"lowering for {op} missing")

    def _engine(self):
        return self.device.engine_model

    @staticmethod
    def _slices_per_row(handle) -> int:
        """Slices each stored row occupies (section IV-C slicing).

        A vector longer than a subarray's capacity is split across
        consecutive subarrays; each dot product over it becomes one
        partial dot per slice plus a partial-sum reduction.
        """
        if not handle.rows_placement:
            return 1
        return max(len(slices) for slices in handle.rows_placement)

    @staticmethod
    def _parallelism(handle, rows: int) -> int:
        """Processors available to a matrix's row-wise VPCs.

        A VPC runs where its resident row lives, so the parallelism is
        the number of distinct subarrays the matrix actually occupies —
        512 under distribute placement, a handful under base placement.
        """
        return max(1, min(rows, len(handle.subarrays_used())))

    def _lower_matmul(self, operation, handles, placer):
        """C = A @ B: column rounds over B; C rows stay with A rows.

        When A has fewer rows than the PIM pool (small-batch DNN layers),
        several columns of B are processed concurrently: the pool splits
        into ``col_groups`` replicas of A's row set, each handling one
        column per round (the layout optimisation replicates A at task
        creation, cf. section IV-D).
        """
        a = handles[operation.inputs[0]]
        b = handles[operation.inputs[1]]
        m, k = a.shape
        n = b.cols
        # Orientation: keep the larger side resident and broadcast the
        # smaller one (C = A @ B and C^T = B^T @ A^T are the same VPCs;
        # the task's layout optimisation picks whichever needs less copy
        # traffic — crucial for small-batch DNN layers).
        if n > m:
            resident, rows_count, bcast_count = b, n, m
        else:
            resident, rows_count, bcast_count = a, m, n
        parallel_rows = self._parallelism(resident, rows_count)
        pool = len(placer.operand_pool)
        col_groups = 1
        if parallel_rows == rows_count and rows_count < pool:
            col_groups = min(bcast_count, max(1, pool // rows_count))
        per_sub = math.ceil(rows_count / parallel_rows)
        slices = self._slices_per_row(resident)
        slice_length = math.ceil(k / slices)
        engine = self._engine()
        proto = VPC.mul(0, 0, 0, slice_length)
        batch = engine.batch_profile(proto, per_sub * slices)
        # The batch profile covers one subarray's share; the round's
        # energy covers every dot product of its columns (each a partial
        # dot per slice, plus the partial-sum reduction below).
        round_energy = engine.profile(proto).energy.scaled(
            float(rows_count * col_groups * slices)
        )
        reduce_time = None
        if slices > 1:
            reduce_proto = VPC.add(0, 0, 0, rows_count * (slices - 1))
            reduce_batch = engine.batch_profile(reduce_proto, 1)
            reduce_time = reduce_batch.time
            merged_energy = EnergyBreakdown()
            merged_energy.merge(round_energy)
            merged_energy.merge(engine.profile(reduce_proto).energy)
            round_energy = merged_energy
        compute_ns = batch.time_ns
        compute_time = batch.time
        if reduce_time is not None:
            compute_ns += reduce_time.total_ns
            merged_time = TimeBreakdown()
            merged_time.merge(compute_time)
            merged_time.merge(reduce_time)
            compute_time = merged_time
        rounds: List[Round] = []
        n_rounds = math.ceil(bcast_count / col_groups)
        for j in range(n_rounds):
            cols = min(col_groups, bcast_count - j * col_groups)
            prep = cols * k + k * parallel_rows * cols
            if slices > 1:
                prep += rows_count * (slices - 1) * cols
            rounds.append(
                Round(
                    label=f"{operation.output} cols {j * col_groups}..",
                    # Gather each broadcast vector from its subarrays,
                    # then copy it to its replica of the resident rows.
                    prep_words=prep,
                    prep_targets=parallel_rows * cols,
                    compute_ns=compute_ns,
                    compute_time=compute_time,
                    compute_energy=round_energy,
                    move_vpcs=rows_count * cols * slices,
                )
            )
        counts = OpCounts(
            pim_vpcs=m * n * (2 * slices - 1),
            move_vpcs=m * n * (2 * slices - 1),
        )
        return rounds, counts

    def _lower_matvec(self, operation, handles, placer):
        """y = A @ x (or A.T @ x, optionally accumulating into y)."""
        op = operation.op
        a = handles[operation.inputs[0]]
        transposed = op in (TaskOp.MATVEC_T, TaskOp.MATVEC_T_ACC)
        accumulate = op in (TaskOp.MATVEC_ACC, TaskOp.MATVEC_T_ACC)
        rows, length = (a.cols, a.rows) if transposed else (a.rows, a.cols)
        parallel = self._parallelism(a, rows)
        per_sub = math.ceil(rows / parallel)
        slices = self._slices_per_row(a)
        slice_length = math.ceil(length / slices)
        engine = self._engine()
        proto = VPC.mul(0, 0, 0, slice_length)
        batch = engine.batch_profile(proto, per_sub * slices)
        # Broadcast x to the row subarrays.  Transposed products need no
        # column gather: A^T x is executed as scalar-vector products on
        # the resident rows (y += x_i * A_i), so only x moves.
        prep_words = length * parallel + rows
        compute_ns = batch.time_ns
        compute_time = batch.time
        compute_energy = engine.profile(proto).energy.scaled(
            float(rows * slices)
        )
        pim = rows * slices
        move = rows * slices + rows  # delivery per partial + collection
        if slices > 1:
            # Partial-sum reduction: the slice results are collected to
            # the first slice's subarray and summed there.
            reduce_proto = VPC.add(0, 0, 0, rows * (slices - 1))
            reduce_batch = engine.batch_profile(reduce_proto, 1)
            compute_ns += reduce_batch.time_ns
            merged_time = TimeBreakdown()
            merged_time.merge(compute_time)
            merged_time.merge(reduce_batch.time)
            compute_time = merged_time
            merged_energy = EnergyBreakdown()
            merged_energy.merge(compute_energy)
            merged_energy.merge(engine.profile(reduce_proto).energy)
            compute_energy = merged_energy
            prep_words += rows * (slices - 1)
            pim += rows * (slices - 1)
            move += 2 * rows * (slices - 1)
        if accumulate:
            # Collected scalars land as a contiguous staging vector next
            # to the destination; the accumulation is then one pipelined
            # vector addition.  (The trace convention still counts its
            # element-wise ADD commands, matching Table IV.)
            add_proto = VPC.add(0, 0, 0, rows)
            add_batch = engine.batch_profile(add_proto, 1)
            compute_ns += add_batch.time_ns
            merged = TimeBreakdown()
            merged.merge(compute_time)
            merged.merge(add_batch.time)
            compute_time = merged
            merged_energy = EnergyBreakdown()
            merged_energy.merge(compute_energy)
            merged_energy.merge(engine.profile(add_proto).energy)
            compute_energy = merged_energy
            pim += rows
            move += 2 * rows
            prep_words += rows
        rounds = [
            Round(
                label=f"{operation.output} = "
                f"{'T' if transposed else ''}matvec",
                prep_words=prep_words,
                prep_targets=parallel,
                compute_ns=compute_ns,
                compute_time=compute_time,
                compute_energy=compute_energy,
                move_vpcs=move,
            )
        ]
        return rounds, OpCounts(pim_vpcs=pim, move_vpcs=move)

    def _lower_add(self, operation, handles, placer):
        """C = A + B, row-wise vector additions distributed over rows."""
        a = handles[operation.inputs[0]]
        m, k = a.shape
        parallel = self._parallelism(a, m)
        per_sub = math.ceil(m / parallel)
        engine = self._engine()
        proto = VPC.add(0, 0, 0, k)
        batch = engine.batch_profile(proto, per_sub)
        rounds = [
            Round(
                label=f"{operation.output} = add",
                prep_words=m * k,  # move every B row to its A row
                prep_targets=parallel,
                compute_ns=batch.time_ns,
                compute_time=batch.time,
                compute_energy=engine.profile(proto).energy.scaled(float(m)),
                move_vpcs=m,
            )
        ]
        return rounds, OpCounts(pim_vpcs=m, move_vpcs=m)

    def _lower_scale(self, operation, handles, placer):
        """B = alpha * A, row-wise SMULs; results stay in place."""
        a = handles[operation.inputs[0]]
        m, k = a.shape
        parallel = self._parallelism(a, m)
        per_sub = math.ceil(m / parallel)
        engine = self._engine()
        proto = VPC.smul(0, 0, 0, k)
        batch = engine.batch_profile(proto, per_sub)
        rounds = [
            Round(
                label=f"{operation.output} = scale",
                prep_words=parallel,  # deliver the scalar to each subarray
                prep_targets=parallel,
                compute_ns=batch.time_ns,
                compute_time=batch.time,
                compute_energy=engine.profile(proto).energy.scaled(float(m)),
                move_vpcs=m,
            )
        ]
        return rounds, OpCounts(pim_vpcs=m, move_vpcs=m)

    def _lower_dot(self, operation, handles, placer):
        """s = x . y: a single MUL VPC."""
        x = handles[operation.inputs[0]]
        length = x.cols
        engine = self._engine()
        profile = engine.profile(VPC.mul(0, 0, 0, length))
        rounds = [
            Round(
                label=f"{operation.output} = dot",
                prep_words=length,  # deliver y to x's subarray
                prep_targets=1,
                compute_ns=profile.time_ns,
                compute_time=profile.time,
                compute_energy=profile.energy,
                move_vpcs=1,
            )
        ]
        return rounds, OpCounts(pim_vpcs=1, move_vpcs=2)

    # ------------------------------------------------------------------
    # Functional execution (exact integer arithmetic)
    # ------------------------------------------------------------------
    def _apply_functional(
        self, operation: TaskOperation, results: Dict[str, np.ndarray]
    ) -> None:
        op = operation.op
        inputs = [results[name] for name in operation.inputs]
        scalar = (
            self._scalars[operation.scalar]
            if operation.scalar is not None
            else 1
        )
        if op is TaskOp.MATMUL:
            results[operation.output] = scalar * (inputs[0] @ inputs[1])
        elif op is TaskOp.MATVEC:
            results[operation.output] = scalar * (
                inputs[0] @ inputs[1].ravel()
            ).reshape(1, -1)
        elif op is TaskOp.MATVEC_T:
            results[operation.output] = scalar * (
                inputs[0].T @ inputs[1].ravel()
            ).reshape(1, -1)
        elif op is TaskOp.MATVEC_ACC:
            results[operation.output] = results[operation.output] + scalar * (
                inputs[0] @ inputs[1].ravel()
            ).reshape(1, -1)
        elif op is TaskOp.MATVEC_T_ACC:
            results[operation.output] = results[operation.output] + scalar * (
                inputs[0].T @ inputs[1].ravel()
            ).reshape(1, -1)
        elif op in (TaskOp.MAT_ADD, TaskOp.VEC_ADD):
            results[operation.output] = inputs[0] + inputs[1]
        elif op in (TaskOp.MAT_SCALE, TaskOp.VEC_SCALE):
            results[operation.output] = scalar * inputs[0]
        elif op is TaskOp.DOT:
            results[operation.output] = np.array(
                [[int(np.dot(inputs[0].ravel(), inputs[1].ravel()))]],
                dtype=np.int64,
            )
        else:  # pragma: no cover - exhaustive over TaskOp
            raise NotImplementedError(str(op))

    # ------------------------------------------------------------------
    # Explicit trace generation (event mode / Table IV validation)
    # ------------------------------------------------------------------
    def run_event(self, workload: str = "task") -> RunReport:
        """Execute this task through the event-driven engine.

        Enumerates the VPC trace, seeds the device's word store with the
        operand values, replays the trace with per-subarray blocking,
        and reads the results back.  O(#VPC) — intended for reduced
        problem sizes; use :meth:`run` at paper scale.
        """
        trace = self.to_trace()
        self.materialize(self.device)
        stats = self.device.execute_trace(trace, workload=workload)
        results = self.fetch_results(self.device)
        counts = OpCounts(
            pim_vpcs=trace.stats.pim_vpcs,
            move_vpcs=trace.stats.move_vpcs,
        )
        return RunReport(
            stats=stats, results=results, counts=counts, per_op_ns=[]
        )

    def to_trace(self, engine: str = "columnar"):
        """Enumerate the full VPC stream with placed addresses.

        One MUL per dot product, one TRAN per operand delivery, one TRAN
        per scalar collection — the Table IV counting convention.  Cost
        is O(#VPC); intended for reduced problem sizes.

        Args:
            engine: ``"columnar"`` (alias ``"vector"``, the default)
                computes the address streams as NumPy array expressions
                and returns a :class:`~repro.isa.columnar.ColumnarTrace`;
                ``"scalar"`` walks the original per-command loops and
                returns a :class:`~repro.isa.trace.VPCTrace`.  The two
                paths emit bit-identical command streams (the
                differential gate in ``tools/bench_trace_exec.py
                --compile`` and tests/test_trace_builder.py hold them to
                byte equality), so the choice only affects build speed
                and container type.

        The placement used is cached so :meth:`materialize` can seed a
        device's word store and :meth:`fetch_results` can read the
        outputs back after event-mode execution.
        """
        if engine in ("columnar", "vector"):
            return self._to_trace_columnar()
        if engine == "scalar":
            return self._to_trace_scalar()
        raise ValueError(
            f"unknown trace engine {engine!r}; choose 'columnar' or "
            f"'scalar'"
        )

    def _to_trace_scalar(self) -> VPCTrace:
        placer = self._build_placer()
        handles = self._place_all(placer)
        trace = VPCTrace()
        scratch = ScratchAllocator(placer)
        self._trace_handles = handles
        self._trace_plan = placer.plan
        self._trace_scalar_slots = {}
        for operation in self._operations:
            self._trace_operation(operation, handles, trace, scratch)
            scratch.recycle()
        return trace

    def _to_trace_columnar(self) -> ColumnarTrace:
        placer = self._build_placer()
        handles = self._place_all(placer)
        builder = ColumnarTraceBuilder()
        scratch = ScratchAllocator(placer)
        self._trace_handles = handles
        self._trace_plan = placer.plan
        self._trace_scalar_slots = {}
        row_cache: Dict[int, Tuple[np.ndarray, ...]] = {}
        for operation in self._operations:
            self._trace_operation_columnar(
                operation, handles, builder, scratch, row_cache
            )
            scratch.recycle()
            builder.mark_op_boundary()
        trace = builder.build()
        self._trace_op_starts = trace.op_starts
        return trace

    def to_trace_chunks(self, chunk_vpcs: int = 4096):
        """Incremental :meth:`to_trace`: yield the trace as chunks.

        Generator form of :meth:`_to_trace_columnar` for the streamed
        compile/execute pipeline — each operation is lowered through the
        same vectorized path, and finished records are drained as
        :class:`~repro.isa.columnar.ColumnarTrace` chunks of at least
        ``chunk_vpcs`` commands (cut only at operation boundaries, so a
        chunk never splits an op group; see
        :meth:`ColumnarTraceBuilder.drain_chunks`).  The concatenation
        of all yielded chunks is bit-identical to :meth:`to_trace`'s
        result.

        Placement state (:attr:`placement_plan`, handles) is available
        as soon as the first chunk is yielded; scalar slots accumulate
        as lowering proceeds, and every slot a chunk references exists
        in :attr:`trace_scalar_slots` by the time that chunk is yielded
        — :meth:`materialize_scalar_slots` seeds them incrementally.
        """
        if chunk_vpcs < 1:
            raise ValueError(
                f"chunk_vpcs must be positive, got {chunk_vpcs}"
            )
        placer = self._build_placer()
        handles = self._place_all(placer)
        builder = ColumnarTraceBuilder()
        scratch = ScratchAllocator(placer)
        self._trace_handles = handles
        self._trace_plan = placer.plan
        self._trace_scalar_slots = {}
        row_cache: Dict[int, Tuple[np.ndarray, ...]] = {}
        for operation in self._operations:
            self._trace_operation_columnar(
                operation, handles, builder, scratch, row_cache
            )
            scratch.recycle()
            builder.mark_op_boundary()
            yield from builder.drain_chunks(min_records=chunk_vpcs)
        yield from builder.drain_chunks(min_records=1, force=True)
        self._trace_op_starts = builder.op_starts_so_far()

    def materialize(self, device: Optional[StreamPIMDevice] = None) -> None:
        """Seed a device's word store with the placed operand values.

        Call after :meth:`to_trace`; writes every matrix (primary layout
        plus any transposed mirror) and every scalar slot the trace
        references.
        """
        self.materialize_matrices(device)
        self.materialize_scalar_slots(device)

    def materialize_matrices(
        self, device: Optional[StreamPIMDevice] = None
    ) -> None:
        """Seed every placed matrix (but not the scalar slots).

        The streamed pipeline calls this once placement exists (after
        the first chunk of :meth:`to_trace_chunks`) and seeds scalar
        slots incrementally as lowering discovers them.
        """
        device = device or self.device
        handles = self._require_trace_state()
        for name, values in self._matrices.items():
            self._write_matrix(device, handles[name], values)

    def materialize_scalar_slots(
        self, device: Optional[StreamPIMDevice] = None, start: int = 0
    ) -> int:
        """Seed scalar-slot words ``start..`` discovered so far.

        Slot addresses come from ``ScratchAllocator.unique`` and are
        never handed out again, so no trace command ever writes one —
        seeding a slot any time before the first chunk that reads it is
        exactly equivalent to the phased up-front :meth:`materialize`.

        Returns the new slot count, to pass as ``start`` next call.
        """
        device = device or self.device
        self._require_trace_state()
        slots = self._trace_scalar_slots
        items = list(slots.items())[start:]
        for address, scalar_name in items:
            value = (
                self._scalars[scalar_name] if scalar_name is not None else 1
            )
            device.store.write(address, [value])
        return len(slots)

    def fetch_results(self, device: Optional[StreamPIMDevice] = None):
        """Read every matrix back from a device's word store.

        Returns:
            {name: ndarray} in logical orientation.
        """
        device = device or self.device
        handles = self._require_trace_state()
        out: Dict[str, np.ndarray] = {}
        for name in self._matrices:
            out[name] = self._read_matrix(device, handles[name])
        return out

    def _require_trace_state(self) -> Dict[str, MatrixHandle]:
        handles = getattr(self, "_trace_handles", None)
        if handles is None:
            raise RuntimeError("call to_trace() before seeding/fetching")
        return handles

    @property
    def placement_plan(self):
        """The placement plan of the last :meth:`to_trace` call.

        Static verification (``repro-streampim check``) pairs it with
        the enumerated trace to check operand-overwrite and
        double-booking rules.

        Raises:
            RuntimeError: if :meth:`to_trace` has not run yet.
        """
        plan = getattr(self, "_trace_plan", None)
        if plan is None:
            raise RuntimeError("call to_trace() before reading the plan")
        return plan

    @property
    def trace_scalar_slots(self):
        """Scalar-slot words of the last :meth:`to_trace` call.

        ``{address: scalar_name}`` (name ``None`` for the implicit unit
        scalar); :meth:`materialize` seeds these words, so dataflow
        analysis treats them as initialised alongside the placed
        matrices.

        Raises:
            RuntimeError: if :meth:`to_trace` has not run yet.
        """
        self._require_trace_state()
        return dict(self._trace_scalar_slots)

    @staticmethod
    def _write_matrix(device, handle, values) -> None:
        stored = np.asarray(values).T if handle.stored_transposed else values
        for i, row in enumerate(np.asarray(stored)):
            piece = handle.row_slices(i)[0]
            device.store.write(piece.address, row[: piece.length])
        if handle.mirror is not None:
            PimTask._write_matrix(device, handle.mirror, np.asarray(values).T)

    @staticmethod
    def _read_matrix(device, handle) -> np.ndarray:
        rows = []
        for i in range(handle.stored_rows):
            piece = handle.row_slices(i)[0]
            rows.append(device.store.read(piece.address, piece.length))
        stored = np.vstack(rows)
        return stored.T if handle.stored_transposed else stored

    def _trace_operation(self, operation, handles, trace, scratch) -> None:
        op = operation.op
        if op is TaskOp.MATMUL:
            a = handles[operation.inputs[0]]
            b = handles[operation.inputs[1]]
            c = handles[operation.output]
            m, k = a.shape
            n = b.cols
            for j in range(n):
                column_source = self._column_source(b, j, k, trace, scratch)
                for i in range(m):
                    row = a.row_slices(i)[0]
                    column = scratch.near(row, k)
                    trace.append(VPC.tran(column_source, column, k))
                    trace.append(
                        VPC.mul(row.address, column,
                                c.element_address(i, j), k)
                    )
        elif op in (TaskOp.MATVEC, TaskOp.MATVEC_T,
                    TaskOp.MATVEC_ACC, TaskOp.MATVEC_T_ACC):
            a = handles[operation.inputs[0]]
            x = handles[operation.inputs[1]]
            y = handles[operation.output]
            transposed = op in (TaskOp.MATVEC_T, TaskOp.MATVEC_T_ACC)
            accumulate = op in (TaskOp.MATVEC_ACC, TaskOp.MATVEC_T_ACC)
            rows, length = (
                (a.cols, a.rows) if transposed else (a.rows, a.cols)
            )
            source = a.mirror if (transposed and a.mirror) else a
            if transposed and a.mirror is None and not a.stored_transposed:
                raise RuntimeError(
                    f"matrix {a.name!r} needs a transposed layout for "
                    "column access; _place_all should have mirrored it"
                )
            for i in range(rows):
                if transposed and a.stored_transposed:
                    row_piece = a.row_slices(i)[0]
                else:
                    row_piece = source.row_slices(i)[0]
                operand = scratch.near(row_piece, length)
                trace.append(VPC.tran(x.row_slices(0)[0].address,
                                      operand, length))
                result = scratch.near(row_piece, 1)
                trace.append(
                    VPC.mul(row_piece.address, operand, result, length)
                )
                dest = y.element_address(0, i)
                if accumulate:
                    # Dot collect, add delivery, the add itself, and the
                    # add's collect back into the destination vector.
                    collected = scratch.near(y.row_slices(0)[0], 1)
                    trace.append(VPC.tran(result, collected, 1))
                    old_value = scratch.near(y.row_slices(0)[0], 1)
                    trace.append(VPC.tran(dest, old_value, 1))
                    acc = scratch.near(y.row_slices(0)[0], 1)
                    trace.append(VPC.add(collected, old_value, acc, 1))
                    trace.append(VPC.tran(acc, dest, 1))
                else:
                    trace.append(VPC.tran(result, dest, 1))
        elif op in (TaskOp.MAT_ADD, TaskOp.VEC_ADD):
            a = handles[operation.inputs[0]]
            b = handles[operation.inputs[1]]
            c = handles[operation.output]
            for i in range(a.rows):
                row = a.row_slices(i)[0]
                staged = scratch.near(row, a.cols)
                trace.append(
                    VPC.tran(b.row_slices(i)[0].address, staged, a.cols)
                )
                trace.append(
                    VPC.add(row.address, staged,
                            c.row_slices(i)[0].address, a.cols)
                )
        elif op in (TaskOp.MAT_SCALE, TaskOp.VEC_SCALE):
            a = handles[operation.inputs[0]]
            c = handles[operation.output]
            for i in range(a.rows):
                row = a.row_slices(i)[0]
                scalar_slot = scratch.unique(row, 1)
                self._trace_scalar_slots[scalar_slot] = operation.scalar
                trace.append(VPC.tran(scalar_slot, scalar_slot, 1))
                trace.append(
                    VPC.smul(scalar_slot, row.address,
                             c.row_slices(i)[0].address, a.cols)
                )
        elif op is TaskOp.DOT:
            x = handles[operation.inputs[0]]
            y = handles[operation.inputs[1]]
            s = handles[operation.output]
            row = x.row_slices(0)[0]
            staged = scratch.near(row, x.cols)
            trace.append(VPC.tran(y.row_slices(0)[0].address, staged, x.cols))
            trace.append(
                VPC.mul(row.address, staged, s.row_slices(0)[0].address,
                        x.cols)
            )
        else:  # pragma: no cover - exhaustive over TaskOp
            raise NotImplementedError(str(op))

    def _column_source(self, b, j, k, trace, scratch) -> int:
        """Address of a contiguous copy of column ``j`` of ``b``.

        Transposed-stored matrices expose columns directly; otherwise
        the column is gathered element-wise into scratch (extra size-1
        TRANs beyond the Table IV counting convention — the layout
        optimisation in :meth:`_place_all` avoids this for every
        workload in the repository).
        """
        if b.stored_transposed:
            return b.row_slices(j)[0].address
        staging = scratch.near(b.row_slices(0)[0], k)
        for r in range(k):
            trace.append(VPC.tran(b.element_address(r, j), staging + r, 1))
        return staging

    # ------------------------------------------------------------------
    # Vectorized trace generation (same streams, array expressions)
    # ------------------------------------------------------------------
    @staticmethod
    def _stored_row_arrays(handle, cache):
        """First-slice columns of every stored row of ``handle``.

        Returns ``(addresses, keys, offsets, lengths)`` int64 arrays
        indexed by stored row, where ``keys`` holds the encoded
        ``(bank, subarray)`` of each slice
        (:func:`ScratchAllocator.encode_key`).  Memoised per handle for
        the duration of one :meth:`to_trace` call.
        """
        arrays = cache.get(id(handle))
        if arrays is None:
            n = len(handle.rows_placement)
            addresses = np.empty(n, dtype=np.int64)
            keys = np.empty(n, dtype=np.int64)
            offsets = np.empty(n, dtype=np.int64)
            lengths = np.empty(n, dtype=np.int64)
            for i, slices in enumerate(handle.rows_placement):
                piece = slices[0]
                addresses[i] = piece.address
                keys[i] = ScratchAllocator.encode_key(
                    piece.bank, piece.subarray
                )
                offsets[i] = piece.offset
                lengths[i] = piece.length
            arrays = (addresses, keys, offsets, lengths)
            cache[id(handle)] = arrays
        return arrays

    @classmethod
    def _element_addresses(cls, handle, rows_idx, cols_idx, cache):
        """Vectorized :meth:`MatrixHandle.element_address`.

        ``rows_idx``/``cols_idx`` broadcast; the result is the flattened
        address array in broadcast order.  Raises the same
        :class:`IndexError` as the scalar method on the first (in that
        order) element falling outside its stored row's first slice.
        """
        rows_b, cols_b = np.broadcast_arrays(
            np.asarray(rows_idx, dtype=np.int64),
            np.asarray(cols_idx, dtype=np.int64),
        )
        rows_f = rows_b.ravel()
        cols_f = cols_b.ravel()
        if handle.stored_transposed:
            stored, offset = cols_f, rows_f
        else:
            stored, offset = rows_f, cols_f
        addresses, _, offsets, lengths = cls._stored_row_arrays(
            handle, cache
        )
        piece_offset = offsets[stored]
        bad = (offset < piece_offset) | (
            offset >= piece_offset + lengths[stored]
        )
        if bad.any():
            first = int(np.argmax(bad))
            raise IndexError(
                f"element ({int(rows_f[first])}, {int(cols_f[first])}) "
                f"falls outside the first slice "
                f"of stored row {int(stored[first])}"
            )
        return addresses[stored] + (offset - piece_offset)

    def _trace_operation_columnar(
        self, operation, handles, builder, scratch, cache
    ) -> None:
        """Emit one operation's commands as bulk record blocks.

        Mirrors :meth:`_trace_operation` exactly — same commands, same
        order, same scratch-allocation sequence — but computes every
        address stream as a NumPy expression and hands the builder
        whole blocks, so the cost per command is amortised array work
        instead of a Python-level loop iteration.
        """
        op = operation.op
        if op is TaskOp.MATMUL:
            self._trace_matmul_columnar(
                operation, handles, builder, scratch, cache
            )
        elif op in (TaskOp.MATVEC, TaskOp.MATVEC_T,
                    TaskOp.MATVEC_ACC, TaskOp.MATVEC_T_ACC):
            self._trace_matvec_columnar(
                operation, handles, builder, scratch, cache
            )
        elif op in (TaskOp.MAT_ADD, TaskOp.VEC_ADD):
            a = handles[operation.inputs[0]]
            b = handles[operation.inputs[1]]
            c = handles[operation.output]
            a_addr, a_key, _, _ = self._stored_row_arrays(a, cache)
            b_addr, _, _, _ = self._stored_row_arrays(b, cache)
            c_addr, _, _, _ = self._stored_row_arrays(c, cache)
            staged = scratch.near_block(a_key, a.cols)
            rec = np.empty((a.rows, 2), dtype=RECORD_DTYPE)
            rec["opcode"][:, 0] = TRAN_BYTE
            rec["opcode"][:, 1] = ADD_BYTE
            rec["src1"][:, 0] = b_addr
            rec["src1"][:, 1] = a_addr
            rec["src2"][:, 0] = NO_OPERAND_SENTINEL
            rec["src2"][:, 1] = staged
            rec["des"][:, 0] = staged
            rec["des"][:, 1] = c_addr
            rec["size"] = a.cols
            builder.emit_records(rec)
        elif op in (TaskOp.MAT_SCALE, TaskOp.VEC_SCALE):
            a = handles[operation.inputs[0]]
            c = handles[operation.output]
            a_addr, a_key, _, _ = self._stored_row_arrays(a, cache)
            c_addr, _, _, _ = self._stored_row_arrays(c, cache)
            slots = scratch.unique_block(a_key, 1)
            for slot in slots.tolist():
                self._trace_scalar_slots[slot] = operation.scalar
            rec = np.empty((a.rows, 2), dtype=RECORD_DTYPE)
            rec["opcode"][:, 0] = TRAN_BYTE
            rec["opcode"][:, 1] = SMUL_BYTE
            rec["src1"][:, 0] = slots
            rec["src1"][:, 1] = slots
            rec["src2"][:, 0] = NO_OPERAND_SENTINEL
            rec["src2"][:, 1] = a_addr
            rec["des"][:, 0] = slots
            rec["des"][:, 1] = c_addr
            rec["size"][:, 0] = 1
            rec["size"][:, 1] = a.cols
            builder.emit_records(rec)
        elif op is TaskOp.DOT:
            x = handles[operation.inputs[0]]
            y = handles[operation.inputs[1]]
            s = handles[operation.output]
            row = x.row_slices(0)[0]
            staged = scratch.near(row, x.cols)
            rec = np.empty(2, dtype=RECORD_DTYPE)
            rec["opcode"] = (TRAN_BYTE, MUL_BYTE)
            rec["src1"] = (y.row_slices(0)[0].address, row.address)
            rec["src2"] = (NO_OPERAND_SENTINEL, staged)
            rec["des"] = (staged, s.row_slices(0)[0].address)
            rec["size"] = x.cols
            builder.emit_records(rec)
        else:  # pragma: no cover - exhaustive over TaskOp
            raise NotImplementedError(str(op))

    def _trace_matmul_columnar(
        self, operation, handles, builder, scratch, cache
    ) -> None:
        a = handles[operation.inputs[0]]
        b = handles[operation.inputs[1]]
        c = handles[operation.output]
        m, k = a.shape
        n = b.cols
        a_addr, a_key, _, _ = self._stored_row_arrays(a, cache)
        # Destination addresses in emission order: j-major, i-minor.
        jj = np.repeat(np.arange(n, dtype=np.int64), m)
        ii = np.tile(np.arange(m, dtype=np.int64), n)
        c_addr = self._element_addresses(c, ii, jj, cache)
        if b.stored_transposed:
            b_addr, _, _, _ = self._stored_row_arrays(b, cache)
            column = scratch.near_block(np.tile(a_key, n), k)
            rec = np.empty((n * m, 2), dtype=RECORD_DTYPE)
            rec["opcode"][:, 0] = TRAN_BYTE
            rec["opcode"][:, 1] = MUL_BYTE
            rec["src1"][:, 0] = np.repeat(b_addr, m)
            rec["src1"][:, 1] = np.tile(a_addr, n)
            rec["src2"][:, 0] = NO_OPERAND_SENTINEL
            rec["src2"][:, 1] = column
            rec["des"][:, 0] = column
            rec["des"][:, 1] = c_addr
            rec["size"] = k
            builder.emit_records(rec)
            return
        # Gathered columns: per column j, k element TRANs assemble the
        # column into staging before the m delivery/MUL pairs consume
        # it.  The scratch-call sequence per column is the staging slot
        # followed by the m per-row column slots (all size k).
        b0_key = ScratchAllocator.encode_key(
            *b.row_slices(0)[0].subarray_key
        )
        keys = np.empty((n, m + 1), dtype=np.int64)
        keys[:, 0] = b0_key
        keys[:, 1:] = a_key
        addrs = scratch.near_block(keys, k).reshape(n, m + 1)
        staging = addrs[:, 0]
        column = addrs[:, 1:]
        rr = np.tile(np.arange(k, dtype=np.int64), n)
        jg = np.repeat(np.arange(n, dtype=np.int64), k)
        gather_src = self._element_addresses(b, rr, jg, cache)
        rec = np.empty((n, k + 2 * m), dtype=RECORD_DTYPE)
        rec["opcode"][:, :k] = TRAN_BYTE
        rec["src1"][:, :k] = gather_src.reshape(n, k)
        rec["src2"][:, :k] = NO_OPERAND_SENTINEL
        rec["des"][:, :k] = (
            staging[:, None] + np.arange(k, dtype=np.int64)[None, :]
        )
        rec["size"][:, :k] = 1
        rec["opcode"][:, k::2] = TRAN_BYTE
        rec["opcode"][:, k + 1 :: 2] = MUL_BYTE
        rec["src1"][:, k::2] = staging[:, None]
        rec["src1"][:, k + 1 :: 2] = a_addr[None, :]
        rec["src2"][:, k::2] = NO_OPERAND_SENTINEL
        rec["src2"][:, k + 1 :: 2] = column
        rec["des"][:, k::2] = column
        rec["des"][:, k + 1 :: 2] = c_addr.reshape(n, m)
        rec["size"][:, k:] = k
        builder.emit_records(rec)

    def _trace_matvec_columnar(
        self, operation, handles, builder, scratch, cache
    ) -> None:
        op = operation.op
        a = handles[operation.inputs[0]]
        x = handles[operation.inputs[1]]
        y = handles[operation.output]
        transposed = op in (TaskOp.MATVEC_T, TaskOp.MATVEC_T_ACC)
        accumulate = op in (TaskOp.MATVEC_ACC, TaskOp.MATVEC_T_ACC)
        rows = a.cols if transposed else a.rows
        length = a.rows if transposed else a.cols
        source = a.mirror if (transposed and a.mirror) else a
        if transposed and a.mirror is None and not a.stored_transposed:
            raise RuntimeError(
                f"matrix {a.name!r} needs a transposed layout for "
                "column access; _place_all should have mirrored it"
            )
        row_handle = a if (transposed and a.stored_transposed) else source
        row_addr, row_key, _, _ = self._stored_row_arrays(
            row_handle, cache
        )
        x_addr = x.row_slices(0)[0].address
        dest = self._element_addresses(
            y, 0, np.arange(rows, dtype=np.int64), cache
        )
        y_key = ScratchAllocator.encode_key(
            *y.row_slices(0)[0].subarray_key
        )
        calls = 5 if accumulate else 2
        keys = np.empty((rows, calls), dtype=np.int64)
        keys[:, 0] = row_key
        keys[:, 1] = row_key
        sizes = np.ones((rows, calls), dtype=np.int64)
        sizes[:, 0] = length
        if accumulate:
            keys[:, 2:] = y_key
        addrs = scratch.near_block(keys, sizes).reshape(rows, calls)
        operand = addrs[:, 0]
        result = addrs[:, 1]
        width = 6 if accumulate else 3
        rec = np.empty((rows, width), dtype=RECORD_DTYPE)
        rec["opcode"][:, 0] = TRAN_BYTE
        rec["src1"][:, 0] = x_addr
        rec["src2"][:, 0] = NO_OPERAND_SENTINEL
        rec["des"][:, 0] = operand
        rec["size"][:, 0] = length
        rec["opcode"][:, 1] = MUL_BYTE
        rec["src1"][:, 1] = row_addr
        rec["src2"][:, 1] = operand
        rec["des"][:, 1] = result
        rec["size"][:, 1] = length
        rec["size"][:, 2:] = 1
        if accumulate:
            collected = addrs[:, 2]
            old_value = addrs[:, 3]
            acc = addrs[:, 4]
            rec["opcode"][:, 2] = TRAN_BYTE
            rec["src1"][:, 2] = result
            rec["src2"][:, 2] = NO_OPERAND_SENTINEL
            rec["des"][:, 2] = collected
            rec["opcode"][:, 3] = TRAN_BYTE
            rec["src1"][:, 3] = dest
            rec["src2"][:, 3] = NO_OPERAND_SENTINEL
            rec["des"][:, 3] = old_value
            rec["opcode"][:, 4] = ADD_BYTE
            rec["src1"][:, 4] = collected
            rec["src2"][:, 4] = old_value
            rec["des"][:, 4] = acc
            rec["opcode"][:, 5] = TRAN_BYTE
            rec["src1"][:, 5] = acc
            rec["src2"][:, 5] = NO_OPERAND_SENTINEL
            rec["des"][:, 5] = dest
        else:
            rec["opcode"][:, 2] = TRAN_BYTE
            rec["src1"][:, 2] = result
            rec["src2"][:, 2] = NO_OPERAND_SENTINEL
            rec["des"][:, 2] = dest
        builder.emit_records(rec)

    # ------------------------------------------------------------------
    def _validate_shapes(
        self, op: TaskOp, inputs: Tuple[str, ...], output: str
    ) -> None:
        shapes = [self._matrices[name].shape for name in inputs]
        out_shape = self._matrices[output].shape
        if op is TaskOp.MATMUL:
            if len(inputs) != 2:
                raise ValueError("MATMUL takes two inputs")
            if shapes[0][1] != shapes[1][0]:
                raise ValueError(
                    f"inner dimensions differ: {shapes[0]} @ {shapes[1]}"
                )
            if out_shape != (shapes[0][0], shapes[1][1]):
                raise ValueError(
                    f"output shape {out_shape} != "
                    f"{(shapes[0][0], shapes[1][1])}"
                )
        elif op in (TaskOp.MATVEC, TaskOp.MATVEC_ACC):
            if shapes[0][1] != shapes[1][1] or shapes[1][0] != 1:
                raise ValueError(
                    f"matvec shapes incompatible: {shapes[0]} @ {shapes[1]}"
                )
        elif op in (TaskOp.MATVEC_T, TaskOp.MATVEC_T_ACC):
            if shapes[0][0] != shapes[1][1] or shapes[1][0] != 1:
                raise ValueError(
                    f"matvec_t shapes incompatible: {shapes[0]} "
                    f"vs {shapes[1]}"
                )
        elif op in (TaskOp.MAT_ADD, TaskOp.VEC_ADD):
            if shapes[0] != shapes[1] or out_shape != shapes[0]:
                raise ValueError(
                    f"addition needs equal shapes, got {shapes} -> "
                    f"{out_shape}"
                )
        elif op in (TaskOp.MAT_SCALE, TaskOp.VEC_SCALE):
            if out_shape != shapes[0]:
                raise ValueError(
                    f"scale output {out_shape} != input {shapes[0]}"
                )
        elif op is TaskOp.DOT:
            if shapes[0] != shapes[1] or shapes[0][0] != 1:
                raise ValueError(
                    f"dot needs two equal vectors, got {shapes}"
                )


class ScratchAllocator:
    """Allocates scratch staging words near a row slice (trace
    generation).

    Staging areas are physically reused across VPCs (the bus drains one
    operand before the next arrives), so allocations of the same size in
    the same subarray cycle through a small pool of slots instead of
    consuming fresh capacity per VPC.  At operation boundaries the
    lowering calls :meth:`recycle`, which returns every pooled slot to a
    per-``(subarray, size)`` free list; the next operation's staging
    re-uses those addresses instead of advancing the cursor, so a long
    chain of operations occupies a bounded scratch region instead of
    exhausting the subarray.  :meth:`unique` slots are exempt — they
    hold constants pre-seeded by :meth:`PimTask.materialize` before the
    trace runs, so their addresses must never be aliased by later
    staging.

    The batched entry points (:meth:`near_block`, :meth:`unique_block`)
    take encoded subarray keys (:meth:`encode_key`) and evolve the
    allocator state exactly as the equivalent sequence of scalar calls
    would — the scalar and vectorized trace engines must emit
    bit-identical streams.
    """

    #: Concurrent staging slots per (subarray, size) class.
    SLOTS = 4

    #: Encoded subarray keys pack ``bank << _KEY_SHIFT | subarray``.
    _KEY_SHIFT = 32

    def __init__(self, placer: Placer) -> None:
        self._placer = placer
        self._cursors: Dict[Tuple[int, int], int] = {}
        self._pools: Dict[Tuple[Tuple[int, int], int], List[int]] = {}
        self._next_slot: Dict[Tuple[Tuple[int, int], int], int] = {}
        self._free: Dict[Tuple[Tuple[int, int], int], List[int]] = {}

    @classmethod
    def encode_key(cls, bank: int, subarray: int) -> int:
        """Pack a ``(bank, subarray)`` key into one int64-safe integer."""
        return (bank << cls._KEY_SHIFT) | subarray

    @classmethod
    def _decode_key(cls, encoded: int) -> Tuple[int, int]:
        return (
            encoded >> cls._KEY_SHIFT,
            encoded & ((1 << cls._KEY_SHIFT) - 1),
        )

    def near(self, row_slice, words: int) -> int:
        """Scratch address in the same subarray as ``row_slice``."""
        key = row_slice.subarray_key
        pool_key = (key, words)
        pool = self._pools.setdefault(pool_key, [])
        if len(pool) < self.SLOTS:
            pool.append(self._allocate(key, words))
            index = len(pool) - 1
        else:
            index = self._next_slot.get(pool_key, 0)
        self._next_slot[pool_key] = (index + 1) % self.SLOTS
        return pool[index]

    def unique(self, row_slice, words: int) -> int:
        """A never-reused scratch address (for pre-seeded constants)."""
        return self._allocate(row_slice.subarray_key, words, reuse=False)

    def recycle(self) -> None:
        """Return every pooled staging slot to the free lists.

        Called at operation boundaries: the previous operation's staging
        traffic has fully drained by the time the next operation's
        commands issue, so its slots are safe to hand out again.  Slots
        re-enter in pool order and :meth:`_allocate` pops from the tail,
        so the next operation with the same staging shape receives the
        same addresses — recycling never changes a single-operation
        trace and keeps multi-operation traces compact.
        """
        for pool_key, pool in self._pools.items():
            if pool:
                self._free.setdefault(pool_key, []).extend(reversed(pool))
        self._pools.clear()
        self._next_slot.clear()

    def near_block(self, keys, sizes) -> np.ndarray:
        """Vectorized :meth:`near` over encoded subarray keys.

        Args:
            keys: array of :meth:`encode_key` values, one per call.
            sizes: per-call word counts (broadcasts against ``keys``).

        Returns:
            The scratch addresses the equivalent sequence of scalar
            :meth:`near` calls would return, with identical end state.
        """
        keys, sizes = np.broadcast_arrays(
            np.asarray(keys, dtype=np.int64),
            np.asarray(sizes, dtype=np.int64),
        )
        keys = keys.ravel()
        sizes = sizes.ravel()
        n = keys.size
        out = np.empty(n, dtype=np.int64)
        if n == 0:
            return out
        unique_keys, key_inv = np.unique(keys, return_inverse=True)
        unique_sizes, size_inv = np.unique(sizes, return_inverse=True)
        group_ids, ginv = np.unique(
            key_inv * len(unique_sizes) + size_inv, return_inverse=True
        )
        counts = np.bincount(ginv)
        order = np.argsort(ginv, kind="stable")
        starts = np.concatenate(([0], np.cumsum(counts[:-1])))
        ranks = np.empty(n, dtype=np.int64)
        ranks[order] = np.arange(n, dtype=np.int64) - np.repeat(
            starts, counts
        )
        n_groups = len(group_ids)
        pools: List[List[int]] = []
        group_info: List[Tuple[Tuple[int, int], int]] = []
        grow = np.empty(n_groups, dtype=np.int64)
        slot_start = np.empty(n_groups, dtype=np.int64)
        for gi, gid in enumerate(group_ids.tolist()):
            key = self._decode_key(
                int(unique_keys[gid // len(unique_sizes)])
            )
            words = int(unique_sizes[gid % len(unique_sizes)])
            pool_key = (key, words)
            pool = self._pools.setdefault(pool_key, [])
            count = int(counts[gi])
            # Invariant of near(): while the pool is not full the next
            # rotation index equals the pool length, so one start value
            # covers both the growth and the steady-state phases.
            slot_start[gi] = self._next_slot.get(pool_key, 0)
            grow[gi] = (
                min(self.SLOTS - len(pool), count)
                if len(pool) < self.SLOTS
                else 0
            )
            self._next_slot[pool_key] = (
                int(slot_start[gi]) + count
            ) % self.SLOTS
            pools.append(pool)
            group_info.append((key, words))
        # Grow pools through _allocate in original call order: cursor
        # and free-list evolution must interleave across groups exactly
        # as the scalar call sequence would.
        for index in np.flatnonzero(ranks < grow[ginv]).tolist():
            gi = int(ginv[index])
            key, words = group_info[gi]
            pools[gi].append(self._allocate(key, words))
        for gi in range(n_groups):
            members = ginv == gi
            pool_arr = np.asarray(pools[gi], dtype=np.int64)
            out[members] = pool_arr[
                (slot_start[gi] + ranks[members]) % self.SLOTS
            ]
        return out

    def unique_block(self, keys, words: int) -> np.ndarray:
        """Vectorized :meth:`unique` over encoded subarray keys."""
        keys = np.asarray(keys, dtype=np.int64).ravel()
        out = np.empty(keys.size, dtype=np.int64)
        for i, encoded in enumerate(keys.tolist()):
            out[i] = self._allocate(
                self._decode_key(int(encoded)), words, reuse=False
            )
        return out

    def _allocate(
        self, key: Tuple[int, int], words: int, reuse: bool = True
    ) -> int:
        if reuse:
            free = self._free.get((key, words))
            if free:
                return free.pop()
        capacity = self._placer.subarray_capacity_words
        base = self._placer.address_map.subarray_base(*key)
        cursor = self._cursors.get(key, capacity - 1)
        cursor -= words
        if cursor < 0:
            raise MemoryError(f"scratch exhausted in subarray {key}")
        self._cursors[key] = cursor
        return base + cursor + 1


def create_pim_task(
    device: Optional[StreamPIMDevice] = None,
    config: Optional[StreamPIMConfig] = None,
) -> PimTask:
    """Create a PIM task (step 1 of Fig. 16)."""
    if device is not None and config is not None:
        raise ValueError("pass either a device or a config, not both")
    if device is None:
        device = StreamPIMDevice(config)
    return PimTask(device)
