"""Cycle-by-cycle RM-bus simulation (validation layer).

Simulates the segmented bus of Fig. 12 as an explicit segment state
machine: the wire is a chain of segments, each either carrying a data
chunk or empty; each cycle, every data segment whose downstream
neighbour is empty advances one position (the single data+empty pair a
shift current drives); a new chunk is injected at the source whenever
segment 0 is empty *and* the alternation invariant (a data segment is
always followed by an empty segment in the transfer direction) would be
preserved.

Tests use this to prove the closed-form transfer-cycle formula of
:class:`repro.core.rmbus.RMBus` and the structural invariants the paper
argues for (deterministic per-cycle shift distance, no two adjacent data
segments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.rmbus import RMBus, RMBusConfig


@dataclass
class BusCycleLog:
    """Record of one simulated transfer."""

    cycles: int = 0
    injections: List[int] = field(default_factory=list)
    arrivals: List[int] = field(default_factory=list)
    max_adjacent_data: int = 1
    segment_shift_ops: int = 0


class SegmentedBusSimulator:
    """Operational model of one segmented RM bus."""

    def __init__(self, config: Optional[RMBusConfig] = None) -> None:
        self.config = config or RMBusConfig()

    def simulate_transfer(self, words: int) -> BusCycleLog:
        """Move ``words`` across the bus, one cycle at a time.

        Returns:
            A log with total cycles, per-chunk injection/arrival cycles,
            the worst run of adjacent data segments observed (the
            alternation invariant demands this never exceeds 1), and the
            number of segment-pair shift operations performed.
        """
        if words <= 0:
            raise ValueError(f"words must be positive, got {words}")
        bus = RMBus(self.config)
        chunks_total = bus.chunks_for(words)
        n_segments = self.config.n_segments
        # Wire state: None = empty segment, int = chunk id in flight.
        wire: List[Optional[int]] = [None] * n_segments
        log = BusCycleLog()
        injected = 0
        delivered = 0
        cycle = 0
        last_injection_cycle = -2
        while delivered < chunks_total:
            # 1. Every data segment with an empty downstream neighbour
            #    advances one position; the last segment delivers.
            if wire[-1] is not None:
                log.arrivals.append(cycle)
                wire[-1] = None
                delivered += 1
                log.segment_shift_ops += 1
            for position in range(n_segments - 2, -1, -1):
                if wire[position] is not None and wire[position + 1] is None:
                    wire[position + 1] = wire[position]
                    wire[position] = None
                    log.segment_shift_ops += 1
            # 2. Inject at the source when slot 0 is empty and the
            #    alternation invariant holds (no injection two cycles in
            #    a row, so a data segment is always trailed by an empty
            #    one).
            if (
                injected < chunks_total
                and wire[0] is None
                and cycle - last_injection_cycle >= 2
            ):
                wire[0] = injected
                log.injections.append(cycle)
                injected += 1
                last_injection_cycle = cycle
            log.max_adjacent_data = max(
                log.max_adjacent_data, self._longest_data_run(wire)
            )
            cycle += 1
        # Total = the cycle the last chunk arrived (injection at cycle c
        # reaches the sink exactly n_segments hops later).
        log.cycles = log.arrivals[-1]
        return log

    @staticmethod
    def _longest_data_run(wire: List[Optional[int]]) -> int:
        longest = run = 0
        for slot in wire:
            if slot is not None:
                run += 1
                longest = max(longest, run)
            else:
                run = 0
        return longest

    def matches_closed_form(self, words: int) -> bool:
        """Whether the simulation equals the RMBus cycle formula."""
        simulated = self.simulate_transfer(words).cycles
        return simulated == RMBus(self.config).transfer_cycles(words)
