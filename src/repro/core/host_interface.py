"""Asynchronous host-device command protocol (section IV-B, Fig. 14).

"Commands are sent in an asynchronous send-response style ... incoming
commands from the host are buffered in a VPC queue within StreamPIM
devices.  After a VPC completes execution, a response message will be
sent back to the host.  This asynchronous design allows the device to
execute VPCs on different banks simultaneously."

This module simulates that protocol on the discrete-event engine: the
host streams encoded VPCs over the link (occupying it per command), the
device buffers them in a bounded VPC queue, per-bank executors drain the
queue concurrently, and completions travel back as responses.  The
simulation exposes where the bottleneck sits — link, queue, or
execution — which is the dynamic version of the granularity trade-off:
tiny commands saturate the link and queue; vector-sized commands keep
the banks the limiting resource.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.core.subarray_engine import SubarrayEngine
from repro.isa.granularity import HostLinkModel
from repro.isa.trace import VPCTrace
from repro.isa.vpc import VPC
from repro.rm.address import AddressMap, DeviceGeometry
from repro.sim.engine import Engine, Resource


@dataclass(frozen=True)
class HostProtocolConfig:
    """Protocol parameters.

    Attributes:
        link: host-device link model (bandwidth, command framing).
        queue_depth: VPC queue capacity; the host stalls when full.
        banks: concurrent executors (the device's PIM banks).
    """

    link: HostLinkModel = field(default_factory=HostLinkModel)
    queue_depth: int = 64
    banks: int = 8

    def __post_init__(self) -> None:
        if self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        if self.banks <= 0:
            raise ValueError("banks must be positive")


@dataclass
class ProtocolStats:
    """Outcome of one simulated command stream."""

    total_ns: float = 0.0
    commands: int = 0
    responses: int = 0
    link_busy_ns: float = 0.0
    host_stall_ns: float = 0.0
    peak_queue: int = 0
    bank_busy_ns: float = 0.0

    @property
    def link_utilisation(self) -> float:
        return self.link_busy_ns / self.total_ns if self.total_ns else 0.0

    @property
    def bank_utilisation(self) -> float:
        """Average executor utilisation across the simulated span."""
        return (
            self.bank_busy_ns / self.total_ns if self.total_ns else 0.0
        )

    @property
    def bottleneck(self) -> str:
        """Which resource bound the run ("link" or "execution")."""
        return (
            "link" if self.link_utilisation >= self.bank_utilisation
            else "execution"
        )


class HostProtocolSimulator:
    """Event-driven simulation of the VPC send-response protocol."""

    def __init__(
        self,
        config: Optional[HostProtocolConfig] = None,
        geometry: Optional[DeviceGeometry] = None,
        engine_model: Optional[SubarrayEngine] = None,
    ) -> None:
        self.config = config or HostProtocolConfig()
        self.geometry = geometry or DeviceGeometry()
        self.address_map = AddressMap(self.geometry)
        self.engine_model = engine_model or SubarrayEngine()

    def _command_ns(self) -> float:
        link = self.config.link
        return (
            link.command_bytes / link.bandwidth_gbps + link.decode_ns
        )

    def _response_ns(self) -> float:
        link = self.config.link
        return link.response_bytes / link.bandwidth_gbps

    # ------------------------------------------------------------------
    def simulate(self, trace: VPCTrace) -> ProtocolStats:
        """Run a VPC stream through the protocol; returns its stats."""
        if len(trace) == 0:
            raise ValueError("empty trace")
        engine = Engine()
        stats = ProtocolStats(commands=len(trace))
        queue: Deque[VPC] = deque()
        banks = [Resource(f"bank-{i}") for i in range(self.config.banks)]
        pending = list(trace)
        pending.reverse()  # pop() takes them in order
        command_ns = self._command_ns()
        response_ns = self._response_ns()
        state = {"outstanding": 0}

        def send_next() -> None:
            if not pending:
                return
            if state["outstanding"] >= self.config.queue_depth:
                # The VPC queue is full of un-responded commands: the
                # host stalls until the earliest in-flight execution
                # completes and frees a slot.
                soonest = min(
                    (b.busy_until for b in banks if b.busy_until > engine.now),
                    default=engine.now,
                )
                stall = max(soonest - engine.now, 0.0) + 1e-9
                stats.host_stall_ns += stall
                engine.schedule(stall, send_next)
                return
            vpc = pending.pop()
            stats.link_busy_ns += command_ns
            queue.append(vpc)
            state["outstanding"] += 1
            stats.peak_queue = max(stats.peak_queue, state["outstanding"])
            engine.schedule(command_ns, dispatch)
            engine.schedule(command_ns, send_next)

        def dispatch() -> None:
            if not queue:
                return
            vpc = queue.popleft()
            # The VPC executes in its home bank (first-operand routing).
            bank_index, _ = self.address_map.subarray_of(vpc.src1)
            bank = banks[bank_index % len(banks)]
            duration = self.engine_model.profile(vpc).time_ns
            _, finish = bank.acquire(engine.now, duration)
            stats.bank_busy_ns += duration
            engine.schedule_at(finish, respond)

        def respond() -> None:
            state["outstanding"] -= 1
            stats.responses += 1
            stats.link_busy_ns += response_ns

        engine.schedule(0.0, send_next)
        stats.total_ns = engine.run() + response_ns
        stats.bank_busy_ns /= len(banks)
        return stats
