"""Cached workload compilation: spec -> (task, trace) via the trace cache.

Lowering a :class:`~repro.workloads.spec.WorkloadSpec` to a VPC trace is
deterministic in the workload identity (name, operation dimensions,
operand seed), the device geometry, the placement policy, and the
lowering algorithm itself.  :func:`compile_workload` derives a cache key
from exactly those inputs and serves the compiled
:class:`~repro.isa.columnar.ColumnarTrace` (plus the placement plan and
scalar-slot map that :meth:`~repro.core.task.PimTask.materialize` and
``fetch_results`` need) from the content-addressed
:class:`~repro.isa.trace_cache.TraceCache`, so repeated benchmark
figures, sweep points and fault-campaign runs compile once.

:data:`LOWERING_VERSION` stamps the key: bump it whenever a change to
trace generation alters the emitted bytes, and every existing cache
entry becomes unreachable (no in-place invalidation to get wrong).

:func:`stream_workload` is the fused counterpart: instead of finishing
compilation before execution starts, it drives
:meth:`~repro.core.task.PimTask.to_trace_chunks` straight into the
device's streamed executor and writes the concatenated trace through to
the same cache afterwards, so a streamed cold run leaves the cache in
exactly the state a phased :func:`compile_workload` would have.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.device import StreamPIMDevice
from repro.core.placement import PlacementPlan
from repro.core.task import PimTask
from repro.isa.columnar import ColumnarTrace
from repro.isa.trace_cache import TraceCache, make_cache_key

#: Version stamp of the trace-lowering algorithm.  Part of every cache
#: key: bump on any change that alters emitted trace bytes (opcode
#: streams, scratch allocation, placement interplay).
LOWERING_VERSION = 1


@dataclass
class CompiledWorkload:
    """Result of :func:`compile_workload`.

    Attributes:
        task: the built task, with trace state (placement plan, scalar
            slots) attached whether the trace was compiled or loaded —
            ``materialize``/``fetch_results``/``placement_plan`` work
            either way.
        trace: the compiled columnar trace.
        cache_key: content key of the (workload, device, lowering)
            combination; empty when caching was disabled.
        cache_hit: True when the trace was loaded instead of compiled.
        deep_report: findings of the whole-trace dataflow pass when
            ``deep_verify`` was requested (None otherwise).  Compiling
            never raises on findings; callers decide how to gate.
    """

    task: PimTask
    trace: ColumnarTrace
    cache_key: str
    cache_hit: bool
    deep_report: Optional[object] = None

    @property
    def device(self) -> StreamPIMDevice:
        return self.task.device


def workload_fingerprint(spec) -> list:
    """JSON-stable fingerprint of a spec's operation stream."""
    return [
        [op.kind.value, list(op.dims), bool(op.accumulate)]
        for op in spec.ops
    ]


def spec_cache_key(spec, config=None, seed: int = 7) -> str:
    """Cache key of ``spec`` compiled under ``config`` — no task needed.

    The same key :func:`task_cache_key` derives, but computed from a
    device *config* alone (defaulting to the standard
    :class:`~repro.core.device.StreamPIMConfig`), so the serving layer
    can coalesce identical compile requests onto one in-flight
    computation without paying a task build per request.
    """
    if config is None:
        from repro.core.device import StreamPIMConfig

        config = StreamPIMConfig()
    return make_cache_key(
        workload=spec.name,
        ops=workload_fingerprint(spec),
        seed=int(seed),
        geometry=asdict(config.geometry),
        scheduler_policy=config.scheduler_policy.value,
        lowering_version=LOWERING_VERSION,
    )


def task_cache_key(
    spec,
    device: StreamPIMDevice,
    seed: int = 7,
) -> str:
    """Cache key of ``spec`` compiled for ``device``.

    Covers everything the trace bytes depend on: the workload identity
    (name plus the dimension fingerprint — dataset scale is already
    baked into the dimensions), the operand seed, the device geometry,
    the scheduler policy (which fixes placement policy and the disjoint
    result-set rule), and :data:`LOWERING_VERSION`.
    """
    return spec_cache_key(spec, device.config, seed=seed)


def _restore_trace_state(task: PimTask, aux: Dict[str, object]) -> bool:
    """Re-attach cached placement state to ``task``; False if ``aux`` is
    unusable (treat as a miss and recompile)."""
    try:
        plan = PlacementPlan.from_dict(aux["plan"])
        scalar_slots = {
            int(address): name
            for address, name in aux["scalar_slots"].items()
        }
    except (AttributeError, KeyError, TypeError, ValueError):
        return False
    task._trace_plan = plan
    task._trace_handles = plan.matrices
    task._trace_scalar_slots = scalar_slots
    return True


def _op_starts_aux(trace: ColumnarTrace, task: PimTask) -> Optional[list]:
    """JSON-safe operation-boundary list for the cache aux dict."""
    starts = trace.op_starts
    if starts is None:
        starts = getattr(task, "_trace_op_starts", None)
    if starts is None:
        return None
    return [int(s) for s in starts]


def _restore_op_starts(trace: ColumnarTrace, aux: Dict[str, object]) -> None:
    """Attach cached operation boundaries to a loaded trace.

    Entries written before boundaries were recorded simply lack the key;
    the trace stays boundary-free and the analytic predictor falls back
    to its single-segment model.
    """
    starts = aux.get("op_starts")
    if starts is None:
        return
    try:
        trace.op_starts = _validate_op_starts_list(starts, len(trace))
    except (TypeError, ValueError):
        trace.op_starts = None


def _validate_op_starts_list(starts, total: int):
    from repro.isa.columnar import _validate_op_starts

    return _validate_op_starts(starts, total)


def _deep_verify(compiled: CompiledWorkload, subject: str) -> None:
    """Attach the whole-trace dataflow report to ``compiled``.

    Especially cheap on cache hits — the trace was loaded, not
    recompiled, so the dataflow pass is the only work — which makes deep
    checking of cached traces the natural guard against a stale or
    corrupted cache entry reaching execution.
    """
    from repro.verify.dataflow import DataflowAnalyzer

    task = compiled.task
    analyzer = DataflowAnalyzer(
        geometry=task.device.config.geometry,
        plan=task.placement_plan,
        scalar_slots=task.trace_scalar_slots,
    )
    compiled.deep_report = analyzer.analyze(
        compiled.trace, subject=subject
    )


def compile_workload(
    spec,
    device: Optional[StreamPIMDevice] = None,
    seed: int = 7,
    cache: Optional[TraceCache] = None,
    cache_dir: Union[str, Path, None] = None,
    use_cache: bool = True,
    deep_verify: bool = False,
    inflight: Optional[object] = None,
) -> CompiledWorkload:
    """Build ``spec``'s task and obtain its trace, cached when possible.

    Args:
        spec: a :class:`~repro.workloads.spec.WorkloadSpec` with a task
            builder.
        device: target device (defaults to a fresh
            :class:`StreamPIMDevice`).
        seed: operand RNG seed passed to ``spec.build_task``.
        cache: an existing :class:`TraceCache` to use.
        cache_dir: directory for a cache created here (ignored when
            ``cache`` is passed).
        use_cache: False compiles unconditionally and touches no cache
            state (the ``--no-trace-cache`` CLI path).
        deep_verify: run the whole-trace dataflow analysis
            (:mod:`repro.verify.dataflow`) over the compiled or loaded
            trace and attach the report as ``deep_report``.  Findings do
            not raise here; callers gate on ``deep_report.ok()``.
        inflight: optional
            :class:`~repro.isa.trace_cache.InflightTracker`; cache
            misses are marked while compiling so a crash mid-compile is
            observable (and cleaned up) by the serving supervisor.
    """
    task = spec.build_task(device, seed=seed)
    subject = f"workload {spec.name}"
    if not use_cache:
        compiled = CompiledWorkload(
            task=task,
            trace=task.to_trace(),
            cache_key="",
            cache_hit=False,
        )
        if deep_verify:
            _deep_verify(compiled, subject)
        return compiled
    if cache is None:
        cache = TraceCache(cache_dir)
    key = task_cache_key(spec, task.device, seed=seed)
    entry = cache.get(key)
    if entry is not None and _restore_trace_state(task, entry.aux):
        _restore_op_starts(entry.trace, entry.aux)
        compiled = CompiledWorkload(
            task=task, trace=entry.trace, cache_key=key, cache_hit=True
        )
        if deep_verify:
            _deep_verify(compiled, subject)
        return compiled
    if inflight is not None:
        inflight.mark(key)
    try:
        trace = task.to_trace()
        aux = {
            "plan": task.placement_plan.to_dict(),
            "scalar_slots": {
                str(address): name
                for address, name in task._trace_scalar_slots.items()
            },
            "op_starts": _op_starts_aux(trace, task),
        }
        cache.put(
            key,
            trace,
            aux=aux,
            provenance={
                "workload": spec.name,
                "seed": int(seed),
                "lowering_version": LOWERING_VERSION,
                "commands": len(trace),
            },
        )
    finally:
        if inflight is not None:
            inflight.clear(key)
    compiled = CompiledWorkload(
        task=task, trace=trace, cache_key=key, cache_hit=False
    )
    if deep_verify:
        _deep_verify(compiled, subject)
    return compiled


@dataclass
class StreamedWorkload:
    """Result of :func:`stream_workload`: a fused compile+execute run.

    Attributes:
        task: the built task with trace state attached (as in
            :class:`CompiledWorkload`); the word store already holds the
            run's results — ``fetch_results`` works immediately.
        trace: the full columnar trace (concatenation of the streamed
            chunks; bit-identical to ``task.to_trace()``).
        stats: the run's :class:`~repro.sim.timing.RunStats`,
            bit-identical to the phased vector engine's.
        telemetry: the pipeline's :class:`~repro.core.stream.StreamTelemetry`.
        cache_key: content key (empty when caching was disabled).
        cache_hit: True when chunks were sliced from a cached trace
            instead of lowered live.
        deep_report: whole-trace dataflow report when ``deep_verify``
            was requested (runs after the stream completes — the
            dataflow pass needs the full def-use picture).
    """

    task: PimTask
    trace: ColumnarTrace
    stats: object
    telemetry: object
    cache_key: str
    cache_hit: bool
    deep_report: Optional[object] = None

    @property
    def device(self) -> StreamPIMDevice:
        return self.task.device


def stream_workload(
    spec,
    device: Optional[StreamPIMDevice] = None,
    seed: int = 7,
    cache: Optional[TraceCache] = None,
    cache_dir: Union[str, Path, None] = None,
    use_cache: bool = True,
    chunk_vpcs: Optional[int] = None,
    functional: bool = True,
    verify: bool = True,
    deep_verify: bool = False,
) -> StreamedWorkload:
    """Compile ``spec`` in chunks and execute them as they are lowered.

    The streamed analogue of ``compile_workload`` followed by
    ``materialize`` and ``execute_trace(engine="vector")``, with the
    phase barrier removed: every ``chunk_vpcs`` lowered records (cut at
    operation boundaries) are verified and executed before the next
    operation is lowered.  Cache interplay:

    * hit — the cached trace is sliced into ``chunk_vpcs`` chunks and
      streamed through the same executor (the chunked fast-apply path
      still applies);
    * miss — chunks are lowered live and the concatenated trace is
      written through to the cache with the same aux/provenance a
      phased compile would store.

    Results (``stats``, word-store contents, spans) are bit-identical
    to the phased path for any chunk size.
    """
    from repro.core.stream import (
        DEFAULT_CHUNK_VPCS,
        iter_trace_chunks,
        run_stream,
        task_chunk_producer,
    )

    if chunk_vpcs is None:
        chunk_vpcs = DEFAULT_CHUNK_VPCS
    task = spec.build_task(device, seed=seed)
    subject = f"workload {spec.name}"
    key = ""
    entry = None
    if use_cache:
        if cache is None:
            cache = TraceCache(cache_dir)
        key = task_cache_key(spec, task.device, seed=seed)
        entry = cache.get(key)
        if entry is not None and not _restore_trace_state(task, entry.aux):
            entry = None
    if entry is not None:
        _restore_op_starts(entry.trace, entry.aux)
        task.materialize()
        result, telemetry = run_stream(
            task.device,
            iter_trace_chunks(entry.trace, chunk_vpcs=chunk_vpcs),
            workload=spec.name,
            functional=functional,
            verify=verify,
            cache_hit=True,
        )
    else:
        result, telemetry = run_stream(
            task.device,
            task_chunk_producer(task, chunk_vpcs=chunk_vpcs),
            workload=spec.name,
            functional=functional,
            verify=verify,
        )
        if use_cache:
            cache.put(
                key,
                result.trace,
                aux={
                    "plan": task.placement_plan.to_dict(),
                    "scalar_slots": {
                        str(address): name
                        for address, name in task._trace_scalar_slots.items()
                    },
                    "op_starts": _op_starts_aux(result.trace, task),
                },
                provenance={
                    "workload": spec.name,
                    "seed": int(seed),
                    "lowering_version": LOWERING_VERSION,
                    "commands": len(result.trace),
                },
            )
    if result.trace.op_starts is None:
        starts = (
            entry.trace.op_starts
            if entry is not None
            else getattr(task, "_trace_op_starts", None)
        )
        if starts is not None and len(result.trace):
            try:
                result.trace.op_starts = _validate_op_starts_list(
                    starts, len(result.trace)
                )
            except (TypeError, ValueError):
                pass
    streamed = StreamedWorkload(
        task=task,
        trace=result.trace,
        stats=result.stats,
        telemetry=telemetry,
        cache_key=key,
        cache_hit=entry is not None,
    )
    if deep_verify:
        _deep_verify(streamed, subject)
    return streamed
