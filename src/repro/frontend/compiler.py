"""Compiler: expression graphs -> PIM tasks.

Walks each assignment's expression tree bottom-up, allocating a
temporary for every compound sub-expression, and records the equivalent
Fig. 16 operations on a :class:`~repro.core.task.PimTask` — after which
the task's own layout/scheduling optimisations (distribute, unblock,
transposed storage) apply as usual.

Lowering rules:

* ``A @ B``          -> MATMUL
* ``A @ x``          -> MATVEC
* ``A.T @ x``        -> MATVEC_T
* ``X + Y``          -> MAT_ADD / VEC_ADD
* ``alpha * X``      -> MAT_SCALE / VEC_SCALE (fused into the operand
  registration when X is a leaf, a fresh temporary otherwise)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.device import StreamPIMDevice
from repro.core.task import PimTask, TaskOp, create_pim_task
from repro.frontend.expr import (
    Add,
    Expression,
    MatMul,
    Matrix,
    Scalar,
    Scale,
    Transpose,
)


@dataclass
class Program:
    """An ordered set of named assignments."""

    assignments: List[Tuple[str, Expression]] = field(default_factory=list)

    def assign(self, name: str, expression: Expression) -> None:
        """Record ``name = expression`` (names must be unique)."""
        if not name:
            raise ValueError("assignment needs a target name")
        if any(existing == name for existing, _ in self.assignments):
            raise ValueError(f"{name!r} already assigned")
        if not isinstance(expression, Expression):
            raise TypeError("assignment value must be an Expression")
        if isinstance(expression, Transpose):
            raise NotImplementedError(
                "bare transposes are views; materialising them is not "
                "supported — use them inside a product (A.T @ x)"
            )
        self.assignments.append((name, expression))


class _Compiler:
    def __init__(self, program: Program, device: Optional[StreamPIMDevice]):
        self.task = create_pim_task(device)
        self._registered: Dict[int, str] = {}  # id(Matrix) -> name
        self._names: set = set()
        self._scalars: Dict[str, int] = {}
        self._temp_index = 0

    # ------------------------------------------------------------------
    def compile(self, program: Program) -> PimTask:
        for target, expression in program.assignments:
            self._lower_into(target, expression)
        return self.task

    # ------------------------------------------------------------------
    def _lower_into(self, target: str, expression: Expression) -> None:
        """Lower ``expression`` and store its value under ``target``."""
        if isinstance(expression, Matrix):
            source = self._register_leaf(expression)
            self._declare(target, expression.shape)
            # A bare copy: scale by one (the cheapest value-preserving op).
            one = self._register_scalar(Scalar.literal(1))
            op = (
                TaskOp.VEC_SCALE
                if expression.is_vector
                else TaskOp.MAT_SCALE
            )
            self.task.add_operation(op, source, target, scalar=one)
            return
        if isinstance(expression, MatMul):
            self._lower_matmul(target, expression)
            return
        if isinstance(expression, Add):
            left = self._lower_operand(expression.left)
            right = self._lower_operand(expression.right)
            self._declare(target, expression.shape)
            op = TaskOp.VEC_ADD if expression.is_vector else TaskOp.MAT_ADD
            self.task.add_operation(op, left, right, target)
            return
        if isinstance(expression, Scale):
            inner = self._lower_operand(expression.inner)
            scalar = self._register_scalar(expression.scalar)
            self._declare(target, expression.shape)
            op = (
                TaskOp.VEC_SCALE
                if expression.is_vector
                else TaskOp.MAT_SCALE
            )
            self.task.add_operation(op, inner, target, scalar=scalar)
            return
        raise NotImplementedError(
            f"cannot lower {type(expression).__name__}"
        )

    def _lower_matmul(self, target: str, expression: MatMul) -> None:
        right = self._lower_operand(expression.right)
        self._declare(target, expression.shape)
        if isinstance(expression.left, Transpose):
            left = self._lower_operand(expression.left.inner)
            if not expression.right.is_vector:
                raise NotImplementedError(
                    "transposed operands are supported for matrix-vector "
                    "products only (A.T @ x)"
                )
            self.task.add_operation(TaskOp.MATVEC_T, left, right, target)
            return
        left = self._lower_operand(expression.left)
        if expression.right.is_vector:
            self.task.add_operation(TaskOp.MATVEC, left, right, target)
        else:
            self.task.add_operation(TaskOp.MATMUL, left, right, target)

    # ------------------------------------------------------------------
    def _lower_operand(self, expression: Expression) -> str:
        """Lower a sub-expression, returning the operand name."""
        if isinstance(expression, Matrix):
            return self._register_leaf(expression)
        if isinstance(expression, Transpose):
            raise NotImplementedError(
                "transposes may only appear as the left operand of '@'"
            )
        temp = self._fresh_temp()
        self._lower_into(temp, expression)
        return temp

    def _register_leaf(self, leaf: Matrix) -> str:
        key = id(leaf)
        existing = self._registered.get(key)
        if existing is not None:
            return existing
        if leaf.name in self._names:
            raise ValueError(
                f"operand name {leaf.name!r} used by two different objects"
            )
        if leaf.values is not None:
            self.task.add_matrix(leaf.name, leaf.values)
        else:
            self.task.add_matrix(leaf.name, shape=leaf.shape)
        self._registered[key] = leaf.name
        self._names.add(leaf.name)
        return leaf.name

    def _register_scalar(self, scalar: Scalar) -> str:
        if scalar.name not in self._scalars:
            self.task.add_scalar(scalar.name, scalar.value)
            self._scalars[scalar.name] = scalar.value
        elif self._scalars[scalar.name] != scalar.value:
            raise ValueError(
                f"scalar {scalar.name!r} redefined with a different value"
            )
        return scalar.name

    def _declare(self, name: str, shape: Tuple[int, int]) -> None:
        if name in self._names:
            raise ValueError(f"name {name!r} already declared")
        self.task.add_matrix(name, shape=shape)
        self._names.add(name)

    def _fresh_temp(self) -> str:
        self._temp_index += 1
        return f"_t{self._temp_index}"


def compile_program(
    program: Program, device: Optional[StreamPIMDevice] = None
) -> PimTask:
    """Compile a program's computation graph onto a PIM task.

    Returns:
        A ready-to-run :class:`PimTask`; assignment targets appear as
        matrices of the same names in the task's results.
    """
    if not program.assignments:
        raise ValueError("program has no assignments")
    return _Compiler(program, device).compile(program)
