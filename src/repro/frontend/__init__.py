"""Expression frontend: the runtime library's compiler layer.

Section VI: StreamPIM "chooses to deliver this interface level as a suite
of libraries, including code compiler and device driver" able to
"extract the computation graph from applications and decide the
optimization strategy".  This package is that compiler layer: symbolic
matrices and operator-overloaded expressions build a computation graph,
which :func:`compile_expression` lowers onto the Fig. 16 task interface
(allocating temporaries, mapping scalar factors onto SMUL scaling, and
ordering operations by data dependence).
"""

from repro.frontend.expr import Matrix, Vector, Expression, Scalar
from repro.frontend.compiler import compile_program, Program

__all__ = [
    "Matrix",
    "Vector",
    "Scalar",
    "Expression",
    "Program",
    "compile_program",
]
