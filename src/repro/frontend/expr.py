"""Symbolic matrix expressions (the computation graph).

Operands are declared once (:class:`Matrix`, :class:`Vector`,
:class:`Scalar`) and combined with Python operators:

* ``A @ B`` — matrix / matrix-vector product;
* ``A.T @ x`` — transposed matrix-vector product;
* ``X + Y`` — element-wise addition;
* ``alpha * X`` — scalar scaling.

Expressions are immutable trees with shape inference; the compiler
lowers them onto the PIM task interface.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np


class Expression:
    """Base class of all expression nodes."""

    #: (rows, cols) of the expression's value.
    shape: Tuple[int, int]

    def __matmul__(self, other: "Expression") -> "Expression":
        return MatMul(self, _as_expression(other))

    def __add__(self, other: "Expression") -> "Expression":
        return Add(self, _as_expression(other))

    def __mul__(self, other) -> "Expression":
        return _scale(other, self)

    def __rmul__(self, other) -> "Expression":
        return _scale(other, self)

    @property
    def is_vector(self) -> bool:
        return self.shape[0] == 1

    @property
    def T(self) -> "Expression":  # noqa: N802 - mirrors numpy
        return Transpose(self)


class Scalar:
    """A named scalar factor (becomes an SMUL operand)."""

    _anonymous = 0

    def __init__(self, name: str, value: int) -> None:
        if not name:
            raise ValueError("scalar needs a name")
        self.name = name
        self.value = int(value)

    @classmethod
    def literal(cls, value: int) -> "Scalar":
        cls._anonymous += 1
        return cls(f"_s{cls._anonymous}", value)

    def __mul__(self, other) -> Expression:
        return _scale(self, _as_expression(other))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Scalar({self.name}={self.value})"


class Matrix(Expression):
    """A named matrix operand.

    Args:
        name: unique operand name.
        values: concrete entries; or pass ``shape`` for a destination /
            timing-only operand.
        shape: (rows, cols) when no values are given.
    """

    def __init__(
        self,
        name: str,
        values: Optional[np.ndarray] = None,
        shape: Optional[Tuple[int, int]] = None,
    ) -> None:
        if not name:
            raise ValueError("matrix needs a name")
        self.name = name
        if values is not None:
            self.values: Optional[np.ndarray] = np.asarray(
                values, dtype=np.int64
            )
            if self.values.ndim == 1:
                self.values = self.values.reshape(1, -1)
            if self.values.ndim != 2:
                raise ValueError("matrices are 2-D")
            self.shape = self.values.shape
        else:
            if shape is None:
                raise ValueError("provide values or shape")
            rows, cols = shape
            if rows <= 0 or cols <= 0:
                raise ValueError(f"bad shape {shape}")
            self.values = None
            self.shape = (rows, cols)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Matrix({self.name}{self.shape})"


class Vector(Matrix):
    """A named vector operand (stored as a single-row matrix)."""

    def __init__(
        self,
        name: str,
        values: Optional[np.ndarray] = None,
        length: Optional[int] = None,
    ) -> None:
        if values is not None:
            flat = np.asarray(values, dtype=np.int64).reshape(1, -1)
            super().__init__(name, flat)
        else:
            if length is None or length <= 0:
                raise ValueError("provide values or a positive length")
            super().__init__(name, shape=(1, length))


class Transpose(Expression):
    """Transposed view; only consumable directly under ``@``."""

    def __init__(self, inner: Expression) -> None:
        if isinstance(inner, Transpose):
            raise ValueError("double transpose — drop both")
        self.inner = inner
        rows, cols = inner.shape
        self.shape = (cols, rows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"({self.inner!r}).T"


class MatMul(Expression):
    """Matrix product (matrix @ matrix, matrix @ vector, A.T @ vector)."""

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right
        lr, lc = left.shape
        rr, rc = right.shape
        if right.is_vector:
            # A @ x with x a row-stored vector of length lc.
            if rc != lc:
                raise ValueError(
                    f"matvec shapes incompatible: {left.shape} @ len {rc}"
                )
            self.shape = (1, lr)
        else:
            if lc != rr:
                raise ValueError(
                    f"inner dimensions differ: {left.shape} @ {right.shape}"
                )
            self.shape = (lr, rc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"({self.left!r} @ {self.right!r})"


class Add(Expression):
    """Element-wise addition."""

    def __init__(self, left: Expression, right: Expression) -> None:
        if left.shape != right.shape:
            raise ValueError(
                f"addition needs equal shapes, got {left.shape} vs "
                f"{right.shape}"
            )
        self.left = left
        self.right = right
        self.shape = left.shape

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"({self.left!r} + {self.right!r})"


class Scale(Expression):
    """Scalar times expression."""

    def __init__(self, scalar: Scalar, inner: Expression) -> None:
        self.scalar = scalar
        self.inner = inner
        self.shape = inner.shape

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"({self.scalar.name} * {self.inner!r})"


def _as_expression(value) -> Expression:
    if isinstance(value, Expression):
        return value
    raise TypeError(f"expected an expression, got {type(value).__name__}")


def _scale(scalar, expr) -> Expression:
    if isinstance(scalar, Scalar):
        return Scale(scalar, _as_expression(expr))
    if isinstance(scalar, int):
        return Scale(Scalar.literal(scalar), _as_expression(expr))
    raise TypeError(
        f"can only scale by Scalar or int, got {type(scalar).__name__}"
    )
