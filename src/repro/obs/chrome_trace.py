"""Chrome ``trace_event`` export of a collected span stream.

Produces the JSON Object Format consumed by ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_: one complete (``"ph": "X"``)
event per span, one trace "thread" per track, with thread-name metadata
so the timeline shows resource names.  Chrome timestamps are
microseconds; the exact nanosecond values are preserved in each event's
``args`` (``ts_ns``/``dur_ns``) so tooling can reconcile the export
against engine-reported breakdowns without unit loss.

:func:`validate_chrome_trace` is the schema check the tests and the
``profile`` CLI run on every export: required keys present, and ``ts``
monotonically non-decreasing per track — the property that makes the
trace loadable as non-overlapping slices.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs.spans import Span

#: Synthetic process id of the simulated device in the export.
DEVICE_PID = 1


def chrome_trace_dict(
    spans: Sequence[Span],
    metrics: Optional[Mapping[str, object]] = None,
    label: str = "repro-streampim",
) -> Dict[str, object]:
    """Build the Chrome trace JSON object for a span stream.

    Tracks become trace threads in order of first appearance; events
    within a track are emitted sorted by start time (stable), which the
    exclusive-resource span streams already satisfy.
    """
    tids: Dict[str, int] = {}
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": DEVICE_PID,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    for span in spans:
        if span.track not in tids:
            tids[span.track] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": DEVICE_PID,
                    "tid": tids[span.track],
                    "args": {"name": span.track},
                }
            )
    slices = []
    for order, span in enumerate(spans):
        args = dict(span.args)
        args["ts_ns"] = span.ts_ns
        args["dur_ns"] = span.dur_ns
        slices.append(
            (
                tids[span.track],
                span.ts_ns,
                order,
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "pid": DEVICE_PID,
                    "tid": tids[span.track],
                    "ts": span.ts_ns / 1e3,
                    "dur": span.dur_ns / 1e3,
                    "args": args,
                },
            )
        )
    slices.sort(key=lambda item: (item[0], item[1], item[2]))
    events.extend(item[3] for item in slices)
    payload: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
    }
    if metrics is not None:
        payload["otherData"] = {"metrics": dict(metrics)}
    return payload


def write_chrome_trace(
    path: str,
    spans: Sequence[Span],
    metrics: Optional[Mapping[str, object]] = None,
    label: str = "repro-streampim",
) -> Dict[str, object]:
    """Write a span stream as Chrome trace JSON; returns the payload."""
    payload = chrome_trace_dict(spans, metrics=metrics, label=label)
    validate_chrome_trace(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return payload


def validate_chrome_trace(payload: Mapping[str, object]) -> None:
    """Schema-check one Chrome trace payload; raises ValueError.

    Checks the Object Format skeleton, per-event required keys, and
    that ``ts`` is monotonically non-decreasing within every track
    (pid, tid) — exported resources are exclusive, so out-of-order or
    overlapping slices indicate a corrupted export.
    """
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    last_ts: Dict[tuple, float] = {}
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event #{position} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(
                    f"event #{position} is missing required key {key!r}"
                )
        if event["ph"] == "M":
            continue
        if event["ph"] != "X":
            raise ValueError(
                f"event #{position} has unsupported phase "
                f"{event['ph']!r}"
            )
        for key in ("cat", "ts", "dur"):
            if key not in event:
                raise ValueError(
                    f"event #{position} is missing required key {key!r}"
                )
        if event["dur"] < 0:
            raise ValueError(f"event #{position} has negative duration")
        track = (event["pid"], event["tid"])
        previous = last_ts.get(track)
        if previous is not None and event["ts"] < previous:
            raise ValueError(
                f"event #{position} rewinds track {track}: ts "
                f"{event['ts']} after {previous}"
            )
        last_ts[track] = event["ts"]
