"""Named counters, gauges and histograms with a no-op disabled mode.

The registry is the numeric half of the observability layer
(:mod:`repro.obs`): code under instrumentation asks the registry for a
metric *by name* and bumps it; the registry memoises the metric objects
so repeated lookups are dictionary hits.  The disabled path is a
singleton :data:`NULL_REGISTRY` whose metrics swallow every update —
call sites check ``collector.enabled`` once at run start and skip the
instrumentation block entirely, so a disabled run pays one attribute
read per *run*, not per event.

Determinism contract: every aggregate a metric keeps (counter totals,
histogram sums) is accumulated with compensated (Neumaier) summation
and, for histogram percentiles, a reservoir driven by a name-seeded
RNG — so two engines feeding the same values in the same order, or
batched as one array, report identical totals and percentiles.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, List, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing named total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount


class Gauge:
    """A named last-written value (plus the extremes seen)."""

    __slots__ = ("name", "value", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[Number] = None
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)


#: Samples retained per histogram for percentile estimation.  Below
#: this many observations percentiles are exact; beyond it a uniform
#: reservoir (Vitter's algorithm R) keeps memory and percentile cost
#: bounded on long-lived services.
RESERVOIR_SIZE = 4096


class Histogram:
    """Streaming summary (count/sum/min/max/percentiles) of a quantity.

    The sum is a compensated (Neumaier) running total, so batched and
    one-at-a-time feeding of the same values report identical sums.
    Memory is bounded: only a ``reservoir_size`` uniform sample of the
    observations is retained for percentiles (exact until the
    reservoir fills), with a name-seeded RNG so runs are reproducible.
    """

    __slots__ = (
        "name",
        "count",
        "min",
        "max",
        "_sum",
        "_comp",
        "_capacity",
        "_samples",
        "_rng",
    )

    def __init__(
        self, name: str, reservoir_size: int = RESERVOIR_SIZE
    ) -> None:
        if reservoir_size < 1:
            raise ValueError(
                f"reservoir_size must be >= 1, got {reservoir_size}"
            )
        self.name = name
        self.count = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self._sum = 0.0
        self._comp = 0.0
        self._capacity = reservoir_size
        self._samples: List[float] = []
        seed = int.from_bytes(
            hashlib.sha256(name.encode("utf-8")).digest()[:8], "big"
        )
        self._rng = random.Random(seed)

    def observe(self, value: Number) -> None:
        self.count += 1
        val = float(value)
        # Neumaier compensated add: the (sum, compensation) pair loses
        # nothing to cancellation, whatever order the stream arrives.
        total = self._sum + val
        if abs(self._sum) >= abs(val):
            self._comp += (self._sum - total) + val
        else:
            self._comp += (val - total) + self._sum
        self._sum = total
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._samples) < self._capacity:
            self._samples.append(val)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._capacity:
                self._samples[slot] = val

    def observe_many(self, values: Iterable[Number]) -> None:
        for value in values:
            self.observe(value)

    @property
    def sum(self) -> float:
        return self._sum + self._comp

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Linear-interpolated ``q``-th percentile (q in [0, 100]).

        Exact while the observation count is within the reservoir
        capacity; a uniform-sample estimate beyond it (the serving
        layer's p50/p99 gates tolerate reservoir error at that scale).
        None before the first observation.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac


class MetricsRegistry:
    """Memoising name -> metric map with a text/JSON summary."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._kinds: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def _claim(self, name: str, kind: str) -> None:
        # One name, one kind: snapshot() flattens all three maps into a
        # single key space, so a collision would silently shadow data.
        held = self._kinds.setdefault(name, kind)
        if held != kind:
            raise ValueError(
                f"metric {name!r} is already a {held}, not a {kind}"
            )

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._claim(name, "counter")
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._claim(name, "gauge")
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._claim(name, "histogram")
            metric = self._histograms[name] = Histogram(name)
        return metric

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """All metrics as one JSON-serialisable mapping."""
        out: Dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = {
                "value": gauge.value,
                "min": gauge.min,
                "max": gauge.max,
            }
        for name, hist in self._histograms.items():
            out[name] = {
                "count": hist.count,
                "sum": hist.sum,
                "min": hist.min,
                "max": hist.max,
                "mean": hist.mean,
            }
        return out

    def render(self) -> str:
        """Aligned text table of every metric, sorted by name."""
        from repro.analysis.report import format_table

        rows = []
        for name in sorted(self._counters):
            rows.append([name, "counter", str(self._counters[name].value)])
        for name in sorted(self._gauges):
            gauge = self._gauges[name]
            rows.append([name, "gauge", f"{gauge.value}"])
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            rows.append(
                [
                    name,
                    "histogram",
                    f"n={hist.count} sum={hist.sum:.6g} "
                    f"mean={hist.mean:.6g}",
                ]
            )
        return format_table(["metric", "kind", "value"], rows)

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._histograms)
        )


# ----------------------------------------------------------------------
# Disabled mode
# ----------------------------------------------------------------------
class _NullMetric:
    """Accepts every update and records nothing."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    min = None
    max = None
    sum = 0.0
    mean = 0.0

    def inc(self, amount: Number = 1) -> None:
        return None

    def set(self, value: Number) -> None:
        return None

    def observe(self, value: Number) -> None:
        return None

    def observe_many(self, values: Iterable[Number]) -> None:
        return None

    def percentile(self, q: float) -> None:
        return None


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """The disabled sink: every lookup returns the shared no-op metric."""

    __slots__ = ()

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> Dict[str, object]:
        return {}

    def render(self) -> str:
        return "(metrics disabled)"

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()
