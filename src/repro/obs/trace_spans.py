"""Batched span construction for the trace engines.

Both trace engines record every busy interval as parallel
``(start, finish, is_rw)`` arrays — the scalar event loop as a list of
``_Span`` records, the vector engine as the columns it feeds
``sweep_spans``.  Neither engine knows (or should pay for) span *names*;
this module reconstructs the attribution afterwards, entirely from the
columnar trace, because the per-command emission order is deterministic:

* compute VPC — optional operand copy (``rw``), the engine execution
  (``pim``), optional result copy (``rw``);
* in-subarray TRAN — one ``pim`` shift span;
* cross-subarray TRAN — one ``rw`` bus-transfer span.

Because attribution is derived from the same columns on both engines
and the interval arrays are bit-identical (the standing parity
invariant), the two engines emit *identical* span streams and metric
totals — the differential tests in ``tests/test_obs.py`` assert exact
equality.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.isa.encoding import BYTE_TO_OPCODE
from repro.obs.spans import Span

#: Track name of the shared internal bus.
BUS_TRACK = "bus"


def engine_spans(
    device,
    cols,
    starts: np.ndarray,
    finishes: np.ndarray,
    is_rw: np.ndarray,
) -> List[Span]:
    """Name and attribute the engines' interval arrays as spans.

    Args:
        device: the executing
            :class:`~repro.core.device.StreamPIMDevice` (for geometry).
        cols: the executed
            :class:`~repro.isa.columnar.ColumnarTrace`.
        starts/finishes/is_rw: the engine's busy-interval columns, in
            emission order.

    Returns:
        One :class:`~repro.obs.spans.Span` per interval, in the same
        order, each carrying its trace index and word count in ``args``.
    """
    n = len(cols)
    if n == 0:
        return []
    words_per_subarray = device.address_map.words_per_subarray
    opcode = cols.opcode
    compute = cols.is_compute
    sub1 = cols.src1 // words_per_subarray
    sub2 = cols.src2 // words_per_subarray
    subd = cols.des // words_per_subarray
    operand_copy = compute & (sub2 != sub1)
    result_copy = compute & (subd != sub1)
    cross_tran = ~compute & (sub1 != subd)

    counts = np.where(
        compute,
        1 + operand_copy.astype(np.int64) + result_copy.astype(np.int64),
        1,
    )
    total = int(counts.sum())
    if total != len(starts):
        raise RuntimeError(
            f"span attribution mismatch: trace implies {total} spans, "
            f"engine recorded {len(starts)}"
        )

    cmd = np.repeat(np.arange(n), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    pos = np.arange(total) - np.repeat(offsets, counts)

    comp = compute[cmd]
    oc = operand_copy[cmd]
    rc = result_copy[cmd]
    exec_pos = oc.astype(np.int64)
    is_opcopy = comp & oc & (pos == 0)
    is_exec = comp & (pos == exec_pos)
    is_rescopy = comp & rc & (pos == exec_pos + 1)
    is_cross = ~comp & cross_tran[cmd]
    is_local = ~comp & ~cross_tran[cmd]

    expected_rw = is_opcopy | is_rescopy | is_cross
    if bool(np.any(expected_rw != np.asarray(is_rw, dtype=bool))):
        raise RuntimeError(
            "span attribution mismatch: rw/pim classes disagree with "
            "the trace structure"
        )

    # Per-span display name: the opcode name for executions, fixed
    # labels for the copy classes.
    opcode_names = np.array(
        [
            BYTE_TO_OPCODE[code].name if code in BYTE_TO_OPCODE else "?"
            for code in np.unique(opcode).tolist()
        ]
    )
    name_index = np.searchsorted(np.unique(opcode), opcode)
    exec_names = opcode_names[name_index]

    names = np.empty(total, dtype=object)
    names[is_exec] = exec_names[cmd[is_exec]]
    names[is_local] = exec_names[cmd[is_local]]
    names[is_opcopy] = "copy.operand"
    names[is_rescopy] = "copy.result"
    names[is_cross] = "bus.TRAN"

    # Track: the resource each span primarily occupies (matching the
    # engines' busy-until bookkeeping).
    track_id = np.where(is_rescopy, subd[cmd], sub1[cmd])
    categories = np.where(expected_rw, "rw", "pim")

    sizes = cols.size
    spans: List[Span] = []
    append = spans.append
    for name, category, begin, finish, tid, on_bus, index in zip(
        names.tolist(),
        categories.tolist(),
        np.asarray(starts, dtype=np.float64).tolist(),
        np.asarray(finishes, dtype=np.float64).tolist(),
        track_id.tolist(),
        is_cross.tolist(),
        cmd.tolist(),
    ):
        track = BUS_TRACK if on_bus else f"subarray-{tid}"
        append(
            Span(
                name,
                category,
                begin,
                finish - begin,
                track,
                {"index": index, "words": int(sizes[index])},
            )
        )
    return spans


def record_trace_run(
    obs,
    device,
    cols,
    starts: np.ndarray,
    finishes: np.ndarray,
    is_rw: np.ndarray,
    stats,
) -> List[Span]:
    """Emit one trace run's spans and metric totals into ``obs``.

    Called identically by both engines (the scalar loop converts its
    span records to arrays first), so the recorded observation stream
    is engine-independent.  Returns the spans it emitted.
    """
    spans = engine_spans(device, cols, starts, finishes, is_rw)
    obs.extend(spans)
    registry = obs.registry
    n = len(cols)
    compute = cols.is_compute
    pim = int(compute.sum())
    registry.counter("trace.vpcs").inc(n)
    registry.counter("trace.pim_vpcs").inc(pim)
    registry.counter("trace.move_vpcs").inc(n - pim)
    registry.counter("trace.spans").inc(len(spans))
    by_name = {}
    for span in spans:
        by_name[span.name] = by_name.get(span.name, 0) + 1
    for name in sorted(by_name):
        registry.counter(f"trace.span.{name}").inc(by_name[name])
    registry.counter("trace.bus_transfers").inc(by_name.get("bus.TRAN", 0))
    registry.gauge("trace.time_ns").set(stats.time_ns)
    registry.gauge("trace.energy_pj").set(stats.energy.total_pj)
    durations = (
        np.asarray(finishes, dtype=np.float64)
        - np.asarray(starts, dtype=np.float64)
    )
    hist = registry.histogram("trace.span_ns")
    hist.observe_many(durations.tolist())
    return spans
