"""Structured span tracing: the event half of the observability layer.

A :class:`Span` is one ``(name, category, ts, dur, args)`` record on a
named *track* (a resource: one subarray, the internal bus, the recovery
ledger, a scheduler lane).  A :class:`Collector` bundles a span log with
a :class:`~repro.obs.metrics.MetricsRegistry`; instrumented code holds
one collector and checks ``collector.enabled`` **once per run** — the
disabled singleton :data:`NULL_COLLECTOR` makes every hook a no-op
without per-event branching in hot loops.

Span categories used by the trace engines:

* ``"rw"`` — read/write-class busy time (operand/result copies,
  cross-subarray bus transfers);
* ``"pim"`` — shift/compute-class busy time (VPC execution,
  in-subarray TRAN shifts);
* ``"recovery"`` — detect-and-repair work charged by a fault session;
* ``"sched"`` — analytic-mode scheduler rounds (prep/compute lanes).

:func:`exclusive_breakdown` sweeps a span list back into the exclusive
time categories of :class:`~repro.sim.stats.TimeBreakdown` with the same
interval scan the engines use, so an exported trace can always be
reconciled against the run's reported breakdown.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)

#: Span categories swept as read/write-class busy time.
RW_CATEGORIES = ("rw",)
#: Span categories swept as shift/compute-class busy time.
PIM_CATEGORIES = ("pim",)


@dataclass(frozen=True)
class Span:
    """One named busy interval on one track.

    Attributes:
        name: what ran ("MUL", "copy.operand", "bus.TRAN", ...).
        category: coarse class ("rw", "pim", "recovery", "sched").
        ts_ns: start timestamp (simulated ns).
        dur_ns: duration (simulated ns).
        track: the resource the span occupied ("subarray-12", "bus").
        args: free-form structured payload (trace index, word count...).
    """

    name: str
    category: str
    ts_ns: float
    dur_ns: float
    track: str
    args: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.dur_ns < 0:
            raise ValueError(
                f"span duration must be non-negative, got {self.dur_ns}"
            )

    @property
    def end_ns(self) -> float:
        return self.ts_ns + self.dur_ns


class Collector:
    """An enabled observation sink: spans plus a metrics registry."""

    enabled = True

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.spans: List[Span] = []

    # ------------------------------------------------------------------
    def emit(
        self,
        name: str,
        category: str,
        ts_ns: float,
        dur_ns: float,
        track: str,
        args: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record one span."""
        self.spans.append(
            Span(name, category, ts_ns, dur_ns, track, args or {})
        )

    def extend(self, spans: Sequence[Span]) -> None:
        """Record a pre-built span batch (the vectorized path)."""
        self.spans.extend(spans)

    # ------------------------------------------------------------------
    def counter(self, name: str):
        return self.registry.counter(name)

    def gauge(self, name: str):
        return self.registry.gauge(name)

    def histogram(self, name: str):
        return self.registry.histogram(name)


class NullCollector:
    """The disabled sink; all methods are no-ops.

    ``enabled`` is False — instrumented code checks it once per run and
    skips every span/metric call, so the only disabled-mode cost is that
    single check.
    """

    enabled = False
    spans: Tuple[Span, ...] = ()
    registry: NullRegistry = NULL_REGISTRY

    __slots__ = ()

    def emit(self, *args, **kwargs) -> None:
        return None

    def extend(self, spans) -> None:
        return None

    def counter(self, name: str):
        return NULL_REGISTRY.counter(name)

    def gauge(self, name: str):
        return NULL_REGISTRY.gauge(name)

    def histogram(self, name: str):
        return NULL_REGISTRY.histogram(name)


NULL_COLLECTOR = NullCollector()


# ----------------------------------------------------------------------
# Derived views
# ----------------------------------------------------------------------
def spans_to_intervals(spans: Sequence[Span]) -> list:
    """Per-resource utilisation timeline as
    :class:`repro.analysis.timeline.Interval` rows (lane = track)."""
    from repro.analysis.timeline import Interval

    return [
        Interval(span.track, span.ts_ns, span.end_ns, span.name)
        for span in spans
    ]


def track_utilisation(
    spans: Sequence[Span], elapsed_ns: float
) -> List[Tuple[str, float, int, float]]:
    """Per-track ``(track, busy_ns, spans, utilisation)`` rows.

    Tracks are exclusive resources (their spans never overlap), so busy
    time is the plain sum of durations; rows are sorted by descending
    busy time.  ``utilisation`` is the *raw* busy/elapsed ratio — a
    value above 1.0 means the span stream double-books the resource and
    should be treated as a ledger bug, exactly like
    :meth:`repro.sim.engine.Resource.utilisation`.
    """
    busy: Dict[str, List[float]] = {}
    counts: Dict[str, int] = {}
    for span in spans:
        busy.setdefault(span.track, []).append(span.dur_ns)
        counts[span.track] = counts.get(span.track, 0) + 1
    rows = []
    for track, durations in busy.items():
        busy_ns = math.fsum(durations)
        ratio = busy_ns / elapsed_ns if elapsed_ns > 0 else 0.0
        rows.append((track, busy_ns, counts[track], ratio))
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows


def exclusive_breakdown(spans: Sequence[Span]):
    """Sweep engine spans back into a
    :class:`~repro.sim.stats.TimeBreakdown`.

    Applies the engines' exclusive-category interval scan
    (:func:`repro.sim.vector_exec.sweep_spans`) to the ``rw``/``pim``
    spans and adds the ``recovery`` spans' summed duration, mirroring
    how both engines build ``RunStats.time_breakdown``.  Matches the
    engine-reported breakdown to float tolerance (spans store
    ``(ts, dur)``, so reconstructed interval ends can differ from the
    engine's internal finish times by an ulp).
    """
    import numpy as np

    from repro.sim.vector_exec import sweep_spans

    engine_spans = [
        s for s in spans if s.category in RW_CATEGORIES + PIM_CATEGORIES
    ]
    starts = np.array([s.ts_ns for s in engine_spans], dtype=np.float64)
    ends = np.array([s.end_ns for s in engine_spans], dtype=np.float64)
    is_rw = np.array(
        [s.category in RW_CATEGORIES for s in engine_spans], dtype=bool
    )
    breakdown = sweep_spans(starts, ends, is_rw)
    recovery = 0.0
    for span in spans:
        if span.category == "recovery":
            recovery += span.dur_ns
    if recovery > 0:
        breakdown.add("recovery", recovery)
    return breakdown
