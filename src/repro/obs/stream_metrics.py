"""``stream.*`` metrics family for the streamed compile/execute pipeline.

:func:`~repro.core.stream.run_stream` calls :func:`record_stream_run`
once per streamed run (when the device's collector is enabled), so the
pipeline's chunking behaviour is auditable next to the ``trace.*``
family recorded by :func:`~repro.obs.trace_spans.record_trace_run`:

* ``stream.runs`` / ``stream.chunks`` / ``stream.records`` /
  ``stream.fallbacks`` — counters across runs;
* ``stream.cache_hits`` — runs fed from the content-addressed trace
  cache rather than live lowering;
* ``stream.produce_ns`` / ``stream.consume_ns`` / ``stream.wall_ns``
  / ``stream.stall_ns`` — last run's pipeline timing (gauges);
* ``stream.overlap_ratio`` — last run's producer/consumer overlap
  (gauge, ~0 for the interleaved single-thread driver);
* ``stream.chunk_records`` — histogram of chunk sizes is not
  reconstructable after concatenation, so the per-run mean is
  observed into the histogram instead.
"""

from __future__ import annotations


def record_stream_run(obs, telemetry) -> None:
    """Record one streamed run's telemetry into ``obs``'s registry.

    Args:
        obs: an enabled :class:`~repro.obs.spans.Collector`.
        telemetry: a :class:`~repro.core.stream.StreamTelemetry`.
    """
    registry = obs.registry
    registry.counter("stream.runs").inc(1)
    registry.counter("stream.chunks").inc(telemetry.chunks)
    registry.counter("stream.records").inc(telemetry.records)
    registry.counter("stream.fallbacks").inc(telemetry.fallbacks)
    if telemetry.cache_hit:
        registry.counter("stream.cache_hits").inc(1)
    registry.gauge("stream.produce_ns").set(telemetry.produce_ns)
    registry.gauge("stream.consume_ns").set(telemetry.consume_ns)
    registry.gauge("stream.wall_ns").set(telemetry.wall_ns)
    registry.gauge("stream.stall_ns").set(telemetry.stall_ns)
    registry.gauge("stream.overlap_ratio").set(telemetry.overlap_ratio)
    if telemetry.chunks:
        registry.histogram("stream.chunk_records").observe(
            telemetry.records / telemetry.chunks
        )


__all__ = ["record_stream_run"]
