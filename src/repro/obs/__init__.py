"""Observability layer: metrics registry + span tracing + trace export.

The paper's evaluation is built on *breakdowns* (Fig. 19's exclusive
time split, Fig. 20's energy split, Fig. 22's unblock overlap); this
package makes the simulators' runs auditable at that granularity:

* :class:`~repro.obs.metrics.MetricsRegistry` — named counters, gauges
  and histograms with a no-op disabled sink
  (:data:`~repro.obs.metrics.NULL_REGISTRY`);
* :class:`~repro.obs.spans.Collector` /
  :data:`~repro.obs.spans.NULL_COLLECTOR` — span-based structured
  tracing; every VPC execution, bus transfer, recovery retry and
  scheduler round emits a ``(name, category, ts, dur, args)`` span;
* :func:`~repro.obs.chrome_trace.write_chrome_trace` — export to Chrome
  ``trace_event`` JSON, loadable in ``chrome://tracing`` / Perfetto;
* :func:`~repro.obs.trace_spans.record_trace_run` — the batched hook
  both trace engines share, so scalar and vector runs emit identical
  observation streams.

Instrumentation is attached per device with
``StreamPIMDevice.observe(Collector())`` and is off by default; the
disabled path costs one ``enabled`` check per run.  See
``docs/observability.md`` and ``repro-streampim profile``.
"""

from repro.obs.chrome_trace import (
    chrome_trace_dict,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.spans import (
    Collector,
    NULL_COLLECTOR,
    NullCollector,
    Span,
    exclusive_breakdown,
    spans_to_intervals,
    track_utilisation,
)
from repro.obs.stream_metrics import record_stream_run
from repro.obs.trace_spans import engine_spans, record_trace_run

__all__ = [
    "Collector",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COLLECTOR",
    "NULL_REGISTRY",
    "NullCollector",
    "NullRegistry",
    "Span",
    "chrome_trace_dict",
    "engine_spans",
    "exclusive_breakdown",
    "record_stream_run",
    "record_trace_run",
    "spans_to_intervals",
    "track_utilisation",
    "validate_chrome_trace",
    "write_chrome_trace",
]
