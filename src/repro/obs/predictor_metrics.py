"""``predictor.*`` metrics family for the analytic performance model.

:func:`~repro.analysis.predictor.predict_workload` (and the explorer's
batch paths) call :func:`record_prediction` per evaluated configuration
when the device's collector is enabled, so analytic-sweep behaviour is
auditable next to the ``trace.*`` / ``stream.*`` families:

* ``predictor.predictions`` — configurations evaluated;
* ``predictor.commands`` — trace commands covered by predictions;
* ``predictor.cache_hits`` — predictions served from a cached compile;
* ``predictor.predict_us`` — histogram of per-prediction wall time;
* ``predictor.time_ns`` / ``predictor.energy_pj`` — last prediction's
  headline figures (gauges);
* ``predictor.abs_rel_error`` — histogram of |predicted-simulated| /
  simulated time, recorded by calibration/explore verification passes.
"""

from __future__ import annotations


def record_prediction(
    obs, predicted, predict_seconds: float = 0.0, cache_hit: bool = False
) -> None:
    """Record one analytic prediction into ``obs``'s registry.

    Args:
        obs: an enabled :class:`~repro.obs.spans.Collector`.
        predicted: a :class:`~repro.analysis.predictor.PredictedStats`.
        predict_seconds: wall time of the predict call.
        cache_hit: whether the compile behind it was a cache hit.
    """
    registry = obs.registry
    registry.counter("predictor.predictions").inc(1)
    registry.counter("predictor.commands").inc(predicted.commands)
    if cache_hit:
        registry.counter("predictor.cache_hits").inc(1)
    registry.histogram("predictor.predict_us").observe(
        predict_seconds * 1e6
    )
    registry.gauge("predictor.time_ns").set(predicted.time_ns)
    registry.gauge("predictor.energy_pj").set(predicted.energy.total_pj)


def record_prediction_error(obs, rel_error: float) -> None:
    """Record one predicted-vs-simulated relative time error."""
    registry = obs.registry
    registry.counter("predictor.verifications").inc(1)
    registry.histogram("predictor.abs_rel_error").observe(
        abs(rel_error)
    )


__all__ = ["record_prediction", "record_prediction_error"]
