"""Command-line interface for the StreamPIM reproduction.

Subcommands:

* ``repro-streampim run <workload> [--platform P] [--scale S]`` — run one
  workload on one platform and print its timing/energy report;
* ``repro-streampim sweep [--workloads ...]`` — regenerate the Fig. 17/18
  platform comparison table;
* ``repro-streampim counts`` — print the Table IV VPC-count comparison;
* ``repro-streampim info`` — show the default device configuration and
  area breakdown;
* ``repro-streampim trace <workload> --scale S [-o FILE]`` — enumerate a
  VPC trace at reduced scale and write it out;
* ``repro-streampim check <trace|workload>`` — static trace/placement
  verification (the ``SPV`` rule catalogue, ``docs/static_analysis.md``);
* ``repro-streampim faults run|campaign`` — seeded fault-injection runs
  and Monte-Carlo reliability campaigns (``docs/reliability.md``);
* ``repro-streampim profile <workload>`` — instrumented run writing a
  Chrome-trace JSON plus a metrics/utilisation summary
  (``docs/observability.md``); ``replay`` and ``faults run`` accept
  ``--profile FILE`` for the same export;
* ``repro-streampim lint`` — repository-invariant AST lint (``SPL``
  rules) over ``src/repro``;
* ``repro-streampim cache stats|clear`` — inspect or empty the
  content-addressed trace cache (``docs/compile_pipeline.md``);
* ``repro-streampim calibrate`` — analytic-predictor error report
  against the cycle-level engines (``docs/modeling.md``);
* ``repro-streampim explore`` — closed-form design-space sweep with
  Pareto-frontier re-simulation (``docs/modeling.md``);
* ``repro-streampim serve`` — long-lived simulation service with a
  supervised worker pool, deadlines/retries, admission control and
  graceful drain (``docs/serving.md``);
* ``repro-streampim client <method>`` — send one request to a running
  service and print the JSON response.

Commands that lower workloads to traces (``trace``, ``profile``,
``check``, ``faults``) serve repeat compilations from the trace cache;
``--no-trace-cache`` forces a fresh compile and ``--cache-dir``
relocates the store.

Installed as the ``repro-streampim`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.area import AreaModel
from repro.analysis.report import format_table
from repro.baselines import default_platforms
from repro.isa.trace import read_trace, write_trace
from repro.workloads import (
    DNN_WORKLOADS,
    EXTRA_WORKLOADS,
    POLYBENCH,
    extra_workload,
    polybench_workload,
)


def _lookup_workload(name: str, scale: float):
    from repro.workloads import find_workload

    try:
        return find_workload(name, scale=scale)
    except KeyError as exc:
        raise SystemExit(exc.args[0] if exc.args else str(exc))


def _compile_spec(spec, args):
    """Compile one workload's trace, honouring the cache CLI flags."""
    from repro.core.compile import compile_workload

    return compile_workload(
        spec,
        use_cache=not getattr(args, "no_trace_cache", False),
        cache_dir=getattr(args, "cache_dir", None),
        deep_verify=getattr(args, "deep", False),
    )


def _print_stream_summary(telemetry) -> None:
    """One-line pipeline telemetry for streamed runs."""
    print(
        f"stream : {telemetry.chunks} chunks "
        f"({telemetry.records:,} records), "
        f"{telemetry.fallbacks} exact-replay fallbacks, "
        f"produce {telemetry.produce_ns / 1e6:.2f} ms / "
        f"consume {telemetry.consume_ns / 1e6:.2f} ms "
        f"(overlap {telemetry.overlap_ratio:.0%})"
    )


def _stream_spec(spec, args, device=None, functional: bool = True):
    """Streamed counterpart of :func:`_compile_spec` (fused execution)."""
    from repro.core.compile import stream_workload

    return stream_workload(
        spec,
        device=device,
        use_cache=not getattr(args, "no_trace_cache", False),
        cache_dir=getattr(args, "cache_dir", None),
        chunk_vpcs=getattr(args, "chunk_vpcs", None),
        functional=functional,
        deep_verify=getattr(args, "deep", False),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _lookup_workload(args.workload, args.scale)
    platforms = default_platforms()
    if args.platform not in platforms:
        raise SystemExit(
            f"unknown platform {args.platform!r}; choose from "
            f"{sorted(platforms)}"
        )
    stats = platforms[args.platform].run(spec)
    print(f"workload : {spec.name} ({spec.description})")
    print(f"platform : {stats.platform}")
    print(f"time     : {stats.time_ns / 1e6:.3f} ms")
    print(f"energy   : {stats.energy.total_pj / 1e9:.3f} mJ")
    fractions = stats.time_breakdown.fractions()
    shares = ", ".join(
        f"{k} {v:.1%}" for k, v in fractions.items() if v > 0.0005
    )
    print(f"time breakdown : {shares}")
    fractions = stats.energy.fractions()
    shares = ", ".join(
        f"{k} {v:.1%}" for k, v in fractions.items() if v > 0.0005
    )
    print(f"energy breakdown : {shares}")
    if stats.counters:
        print(f"counters : {stats.counters}")
    return 0


def _sweep_worker(job):
    """Run one (platform, workload) pair; top-level so it pickles."""
    pname, wname, scale = job
    spec = _lookup_workload(wname, scale)
    stats = default_platforms()[pname].run(spec)
    return pname, wname, stats.time_ns, stats.energy.total_pj


class JobTimeout:
    """Typed sweep-cell result: the job exceeded ``--job-timeout``.

    Stored in the metrics map in place of the ``(time_ns, total_pj)``
    tuple so the report can name the cell instead of the whole sweep
    hanging on one stuck process.
    """

    __slots__ = ("platform", "workload", "timeout_s")

    def __init__(self, platform: str, workload: str, timeout_s: float):
        self.platform = platform
        self.workload = workload
        self.timeout_s = timeout_s

    def __repr__(self) -> str:
        return (
            f"JobTimeout({self.platform}/{self.workload} "
            f"> {self.timeout_s:g}s)"
        )


def _sweep_metrics(
    names, scale: float, jobs: int, job_timeout: Optional[float] = None
):
    """(time_ns, total_pj) per (platform, workload), optionally parallel.

    The (platform x workload) grid is embarrassingly parallel — every
    cell builds its own spec and platform, so with ``--jobs N`` the
    cells run in a process pool and results are identical to the
    sequential order (each cell is deterministic).

    With ``job_timeout`` set, cells always run in a pool (even at
    ``--jobs 1``) so a stuck cell can be abandoned: its slot in the
    result map becomes a :class:`JobTimeout` and the pool is torn down
    at the end, killing any still-hung process.  Waits are sequential,
    so a cell queued behind a slow one gets its full budget only once
    it is being waited on — the timeout bounds *additional* wait, not
    queue time.
    """
    platform_names = list(default_platforms())
    jobs_list = [
        (pname, wname, scale)
        for pname in platform_names
        for wname in names
    ]
    metrics = {}
    if jobs <= 1 and job_timeout is None:
        results = [_sweep_worker(job) for job in jobs_list]
        for pname, wname, time_ns, total_pj in results:
            metrics[(pname, wname)] = (time_ns, total_pj)
        return platform_names, metrics
    import multiprocessing

    with multiprocessing.Pool(processes=max(1, jobs)) as pool:
        handles = [
            (job, pool.apply_async(_sweep_worker, (job,)))
            for job in jobs_list
        ]
        for (pname, wname, _), handle in handles:
            try:
                _, _, time_ns, total_pj = handle.get(timeout=job_timeout)
                metrics[(pname, wname)] = (time_ns, total_pj)
            except multiprocessing.TimeoutError:
                metrics[(pname, wname)] = JobTimeout(
                    pname, wname, job_timeout
                )
        # Pool.__exit__ terminates the workers, so a job that timed
        # out cannot outlive the sweep.
    return platform_names, metrics


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.stream or args.chunk_vpcs is not None:
        print(
            "warning: sweep uses the analytic platform models and "
            "neither lowers nor executes traces; --stream/--chunk-vpcs "
            "have no effect here",
            file=sys.stderr,
        )
    names = args.workloads or list(POLYBENCH)
    for name in names:
        _lookup_workload(name, args.scale)  # fail fast on bad names
    platform_names, metrics = _sweep_metrics(
        names, args.scale, args.jobs, job_timeout=args.job_timeout
    )
    timeouts = [
        cell for cell in metrics.values() if isinstance(cell, JobTimeout)
    ]

    def _ok(pname, wname):
        return not isinstance(metrics[(pname, wname)], JobTimeout)

    rows = []
    for pname in platform_names:
        # A timed-out cell drops its workload from this platform's
        # averages (the two ratio baselines must have finished too).
        usable = [
            w
            for w in names
            if _ok(pname, w) and _ok("CPU-RM", w) and _ok("StPIM", w)
        ]
        if not usable:
            rows.append([pname, "timeout", "timeout"])
            continue
        speedups = [
            metrics[("CPU-RM", w)][0] / metrics[(pname, w)][0]
            for w in usable
        ]
        energies = [
            metrics[(pname, w)][1] / metrics[("StPIM", w)][1]
            for w in usable
        ]
        rows.append(
            [
                pname,
                sum(speedups) / len(speedups),
                sum(energies) / len(energies),
            ]
        )
    print(f"workloads: {', '.join(names)} (scale {args.scale})")
    print(
        format_table(
            ["platform", "avg speedup vs CPU-RM", "avg energy vs StPIM"],
            rows,
        )
    )
    for cell in timeouts:
        print(
            f"JobTimeout: {cell.platform}/{cell.workload} exceeded "
            f"{cell.timeout_s:g}s and was killed; excluded from the "
            f"averages above",
            file=sys.stderr,
        )
    return 1 if timeouts else 0


def _cmd_counts(_args: argparse.Namespace) -> int:
    rows = []
    for name, spec in POLYBENCH.items():
        pim, move = spec.vpc_counts()
        rows.append(
            [
                name,
                f"{pim:,}",
                f"{spec.paper_pim_vpcs:.3g}",
                f"{move:,}",
                f"{spec.paper_move_vpcs:.3g}",
            ]
        )
    print(
        format_table(
            ["workload", "#PIM-VPC", "paper", "#move-VPC", "paper"], rows
        )
    )
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    from repro.core.device import StreamPIMConfig

    config = StreamPIMConfig()
    geometry = config.geometry
    timing = config.timing
    print("StreamPIM default configuration (paper Table III)")
    print(
        f"  device   : {geometry.banks} banks "
        f"({geometry.pim_banks} PIM) x {geometry.subarrays_per_bank} "
        f"subarrays, {geometry.capacity_bytes / 2**30:.0f} GiB"
    )
    print(f"  PIM subarrays : {geometry.pim_subarrays}")
    print(
        f"  latencies : read {timing.read_ns} ns, write "
        f"{timing.write_ns} ns, shift {timing.shift_ns} ns"
    )
    print(
        f"  energies  : read {timing.read_pj} pJ, write "
        f"{timing.write_pj} pJ, shift {timing.shift_pj} pJ, "
        f"add {timing.pim_add_pj} pJ, mul {timing.pim_mul_pj} pJ"
    )
    print(
        f"  core clock : {timing.core_freq_mhz:.0f} MHz, process "
        f"{timing.process_nm:.0f} nm"
    )
    print(
        f"  bus : {config.bus.segment_domains}-domain segments, "
        f"{config.bus.n_segments} hops"
    )
    model = AreaModel()
    breakdown = model.breakdown()
    print("area breakdown:")
    print(f"  RM bus        : {breakdown.fraction('bus'):.2%}")
    print(f"  RM processor  : {breakdown.fraction('processor'):.2%}")
    print(
        f"  transfer tracks (of PIM bank) : "
        f"{model.transfer_fraction_of_pim_bank_area():.2%}"
    )
    from repro.analysis.datasheet import build_datasheet

    print("derived datasheet:")
    for line in build_datasheet(config).render().splitlines():
        print(f"  {line}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    spec = _lookup_workload(args.workload, args.scale)
    if spec.build is None:
        raise SystemExit(f"workload {spec.name!r} has no task builder")
    if args.stream:
        streamed = _stream_spec(spec, args)
        trace = streamed.trace
        source = (
            "cache hit, streamed"
            if streamed.cache_hit
            else "streamed compile+execute"
        )
    else:
        compiled = _compile_spec(spec, args)
        trace = compiled.trace
        source = "cache hit" if compiled.cache_hit else "compiled"
    stats = trace.stats
    print(
        f"{spec.name} @ scale {args.scale}: {stats.pim_vpcs:,} PIM VPCs, "
        f"{stats.move_vpcs:,} move VPCs ({source})"
    )
    if args.stream:
        _print_stream_summary(streamed.telemetry)
    if args.output:
        write_trace(trace, args.output)
        print(f"wrote {len(trace):,} commands to {args.output}")
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    """List every available workload with its shape summary."""
    suites = (
        ("polybench", POLYBENCH),
        ("dnn", DNN_WORKLOADS),
        ("extra", EXTRA_WORKLOADS),
    )
    if getattr(args, "json", False):
        import json

        entries = []
        for suite, table in suites:
            for name, spec in table.items():
                pim, move = spec.vpc_counts()
                entries.append(
                    {
                        "workload": name,
                        "suite": suite,
                        "pim_vpcs": pim,
                        "move_vpcs": move,
                        "buildable": spec.build is not None,
                        "class": _workload_class(name),
                        "description": spec.description,
                    }
                )
        print(json.dumps(entries, indent=1))
        return 0
    rows = []
    for suite, table in suites:
        for name, spec in table.items():
            pim, move = spec.vpc_counts()
            rows.append(
                [name, suite, f"{pim:,}", f"{move:,}", spec.description]
            )
    print(
        format_table(
            ["workload", "suite", "#PIM-VPC", "#move-VPC", "description"],
            rows,
        )
    )
    return 0


def _workload_class(name: str) -> str:
    from repro.analysis.calibrate import workload_class

    return workload_class(name)


def _parse_cases(items):
    """Parse ``name`` / ``name:scale`` CLI items into (name, scale) pairs."""
    cases = []
    for item in items:
        name, sep, scale = item.partition(":")
        try:
            cases.append((name, float(scale) if sep else None))
        except ValueError:
            raise SystemExit(f"bad workload spec {item!r}: scale must be a number")
        _lookup_workload(name, 1.0)  # fail fast on bad names
    return cases


def _cmd_calibrate(args: argparse.Namespace) -> int:
    """Predictor calibration: analytic model vs a cycle-level engine."""
    from repro.analysis.calibrate import run_calibration

    cases = _parse_cases(args.workloads) if args.workloads else None

    def show(result):
        print(
            f"{result.workload:>11}"
            f"{'' if result.scale is None else f'@{result.scale:g}':<6} "
            f"{result.commands:>9,} cmds  "
            f"time {result.time_rel_error * 100:+7.3f}% "
            f"(bound {result.class_time_bound * 100:.0f}%)  "
            f"energy {result.energy_rel_error * 100:+.2e}%  "
            f"sim {result.sim_seconds:6.2f}s  "
            f"predict {result.predict_seconds * 1e3:7.2f}ms"
        )

    report = run_calibration(
        cases,
        seed=args.seed,
        cache_dir=getattr(args, "cache_dir", None),
        use_cache=not getattr(args, "no_trace_cache", False),
        engine=args.engine,
        heavy=args.heavy,
        progress=show,
    )
    print(
        f"max |time err| {report.max_abs_time_error * 100:.3f}%, "
        f"max |energy err| {report.max_abs_energy_error * 100:.2e}%, "
        f"{'OK' if report.ok() else 'OUT OF BOUNDS'}"
    )
    if args.output:
        import json

        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=1)
        print(f"wrote {args.output}")
    return 0 if report.ok() else 1


def _cmd_explore(args: argparse.Namespace) -> int:
    """Analytic design-space exploration with Pareto re-simulation."""
    from repro.analysis.explore import build_grid, run_explore

    kwargs = {}
    if args.workloads:
        kwargs["workloads"] = _parse_cases(args.workloads)
    if args.policies:
        kwargs["policies"] = args.policies
    if args.read_scales:
        kwargs["read_scales"] = args.read_scales
    if args.write_scales:
        kwargs["write_scales"] = args.write_scales
    if args.decode_ns:
        kwargs["decode_ns"] = args.decode_ns
    grid = build_grid(**kwargs)
    print(f"exploring {len(grid)} design points")
    report = run_explore(
        grid,
        seed=args.seed,
        cache_dir=getattr(args, "cache_dir", None),
        use_cache=not getattr(args, "no_trace_cache", False),
        verify_limit=args.verify_limit,
        progress=lambda stage, detail: print(f"[{stage}] {detail}"),
    )
    print(
        f"frontier {report.frontier_points}/{report.total_points} points "
        f"(pruned {report.pruning_ratio:.1%}), "
        f"re-simulated {report.verified}, "
        f"max |time err| {report.max_abs_time_error * 100:.3f}%, "
        f"max |energy err| {report.max_abs_energy_error * 100:.2e}%"
    )
    print(
        f"wall: compile {report.compile_seconds:.2f}s + "
        f"predict {report.predict_seconds:.2f}s analytic vs "
        f"~{report.estimated_speedup:.0f}x that to simulate the grid"
    )
    if args.output:
        import json

        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=1)
        print(f"wrote {args.output}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Replay a saved VPC trace through the event-driven device."""
    from repro.core.device import StreamPIMDevice

    if args.stream and args.engine != "vector":
        raise SystemExit(
            "--stream replays through the chunked vector executor; "
            "use --engine vector (or drop --stream)"
        )
    if args.engine == "vector":
        # Columnar bulk decode feeds the vectorized executor directly.
        from repro.isa.columnar import read_trace_columnar

        trace = read_trace_columnar(args.trace)
    else:
        trace = _load_trace_file(args.trace)
    device = StreamPIMDevice()
    collector = None
    if args.profile:
        from repro.obs import Collector

        collector = Collector()
        device.observe(collector)
    if args.stream:
        from repro.core.stream import (
            DEFAULT_CHUNK_VPCS,
            iter_trace_chunks,
            run_stream,
        )

        chunk_vpcs = args.chunk_vpcs or DEFAULT_CHUNK_VPCS
        result, telemetry = run_stream(
            device,
            iter_trace_chunks(trace, chunk_vpcs=chunk_vpcs),
            workload="replay",
            functional=False,
            verify=not args.no_verify,
        )
        stats = result.stats
    else:
        stats = device.execute_trace(
            trace,
            functional=False,
            verify=not args.no_verify,
            engine=args.engine,
        )
    print(f"replayed {len(trace):,} commands from {args.trace}")
    print(f"time   : {stats.time_ns / 1e3:.2f} us")
    print(f"energy : {stats.energy.total_pj / 1e3:.2f} nJ")
    fractions = stats.time_breakdown.fractions()
    shares = ", ".join(
        f"{k} {v:.1%}" for k, v in fractions.items() if v > 0.0005
    )
    print(f"time breakdown : {shares}")
    if args.stream:
        _print_stream_summary(telemetry)
    if collector is not None:
        return _export_profile(collector, stats, args.profile)
    return 0


def _breakdown_rows(stats, collector):
    """(category, span-derived ns, engine ns, delta) reconciliation rows."""
    from repro.obs import exclusive_breakdown

    swept = exclusive_breakdown(collector.spans)
    reported = stats.time_breakdown
    rows = []
    worst = 0.0
    for category in (
        "read", "write", "shift", "process", "overlapped", "recovery"
    ):
        field = f"{category}_ns"
        from_spans = getattr(swept, field)
        from_engine = getattr(reported, field)
        scale = max(abs(from_spans), abs(from_engine), 1.0)
        delta = abs(from_spans - from_engine) / scale
        worst = max(worst, delta)
        rows.append([category, from_spans, from_engine, delta])
    return rows, worst


def _export_profile(collector, stats, path: str) -> int:
    """Write the Chrome trace and print the observation summary."""
    from repro.analysis.report import format_table
    from repro.obs import track_utilisation, write_chrome_trace

    payload = write_chrome_trace(
        path, collector.spans, metrics=collector.registry.snapshot()
    )
    print(
        f"wrote {path} ({len(payload['traceEvents']):,} trace events; "
        f"open in chrome://tracing or https://ui.perfetto.dev)"
    )
    print()
    print(collector.registry.render())
    if stats is None:
        return 0
    elapsed = stats.time_ns
    rows = [
        [track, busy, count, ratio]
        for track, busy, count, ratio in track_utilisation(
            collector.spans, elapsed
        )[:12]
    ]
    if rows:
        print()
        print(
            format_table(
                ["track", "busy_ns", "spans", "utilisation"], rows
            )
        )
    recon_rows, worst = _breakdown_rows(stats, collector)
    print()
    print(
        format_table(
            ["category", "spans_ns", "engine_ns", "rel_delta"],
            [[c, s, e, f"{d:.2e}"] for c, s, e, d in recon_rows],
            float_format="{:.3f}",
        )
    )
    if worst > 1e-9:
        print(
            f"FAIL: span-derived breakdown diverges from the engine's "
            f"by {worst:.3e} (relative)"
        )
        return 1
    print("breakdown reconciliation: OK (span sums match the engine)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run one workload instrumented; export trace.json + summaries."""
    from repro.obs import Collector

    spec = _lookup_workload(args.workload, args.scale)
    if spec.build is None:
        raise SystemExit(f"workload {args.workload!r} has no task builder")
    if args.stream and args.engine != "vector":
        raise SystemExit(
            "--stream profiles through the chunked vector executor; "
            "use --engine vector (or drop --stream)"
        )
    collector = Collector()
    if args.stream:
        from repro.core.device import StreamPIMDevice

        device = StreamPIMDevice().observe(collector)
        streamed = _stream_spec(
            spec, args, device=device, functional=args.functional
        )
        trace = streamed.trace
        stats = streamed.stats
        engine_label = "vector (streamed)"
    else:
        compiled = _compile_spec(spec, args)
        trace = compiled.trace  # columnar; both engines consume directly
        device = compiled.device.observe(collector)
        stats = device.execute_trace(
            trace,
            workload=spec.name,
            functional=args.functional,
            engine=args.engine,
        )
        engine_label = args.engine
    print(
        f"profiled {spec.name} @ scale {args.scale}: {len(trace):,} "
        f"commands, engine {engine_label}"
    )
    print(f"time   : {stats.time_ns / 1e3:.2f} us")
    print(f"energy : {stats.energy.total_pj / 1e3:.2f} nJ")
    if args.stream:
        _print_stream_summary(streamed.telemetry)
    return _export_profile(collector, stats, args.output)


def _load_trace_file(path: str):
    """Read a trace file, sniffing the binary magic prefix."""
    from repro.isa.trace import _BINARY_MAGIC, read_trace_binary

    with open(path, "rb") as handle:
        head = handle.read(len(_BINARY_MAGIC))
    if head == _BINARY_MAGIC:
        return read_trace_binary(path)
    return read_trace(path)


def _check_specs(scale: float):
    """Every shipped workload generator at a reduced, checkable size."""
    from repro.workloads.dnn import (
        BERTShape,
        MLPShape,
        bert_spec,
        mlp_spec,
    )

    for name in POLYBENCH:
        spec = polybench_workload(name, scale=scale)
        if spec.build is not None:
            yield spec
    for name in EXTRA_WORKLOADS:
        spec = extra_workload(name, scale=scale)
        if spec.build is not None:
            yield spec
    yield mlp_spec(MLPShape(batch=4, layers=(16, 12, 8)))
    yield bert_spec(
        BERTShape(seq_len=4, hidden=8, ffn=16, heads=2, layers=1)
    )


def _verify_spec(spec, hazard_window: int, args=None):
    """Enumerate a workload's trace and verify it with its placement.

    When ``args.deep`` is set, :func:`_compile_spec` already ran the
    whole-trace dataflow pass (SPV008–SPV012) during compilation —
    including on cache hits — and its findings are merged here.
    """
    from repro.verify import TraceVerifier

    compiled = _compile_spec(spec, args if args is not None else object())
    verifier = TraceVerifier(
        geometry=compiled.device.config.geometry,
        plan=compiled.task.placement_plan,
        hazard_window=hazard_window,
    )
    report = verifier.verify(
        compiled.trace, subject=f"workload {spec.name}"
    )
    if compiled.deep_report is not None:
        report.extend(compiled.deep_report.diagnostics)
        report.suppressed += compiled.deep_report.suppressed
    return report


def _parse_rule_filter(value: Optional[str]):
    """Validate a comma-separated ``--select``/``--ignore`` rule list."""
    from repro.verify import validate_rule_ids

    if value is None:
        return None
    ids = [item.strip() for item in value.split(",") if item.strip()]
    try:
        return validate_rule_ids(ids)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _report_findings(reports, args, strict: bool) -> int:
    """Print reports (text or ``--json`` NDJSON); count the failures.

    ``--select``/``--ignore`` filter diagnostics before the pass/fail
    decision, so ignoring a rule also stops it from failing the run.
    """
    import json

    select = _parse_rule_filter(getattr(args, "select", None))
    ignore = _parse_rule_filter(getattr(args, "ignore", None))
    failed = 0
    for report in reports:
        if select is not None:
            report.diagnostics = [
                d for d in report.diagnostics if d.rule_id in select
            ]
        if ignore is not None:
            report.diagnostics = [
                d for d in report.diagnostics if d.rule_id not in ignore
            ]
        ok = report.ok(strict=strict)
        failed += 0 if ok else 1
        if getattr(args, "json", False):
            for diagnostic in report.diagnostics:
                print(
                    json.dumps(
                        diagnostic.to_dict(subject=report.subject),
                        sort_keys=True,
                    )
                )
        elif ok and len(reports) > 1 and not report.diagnostics:
            print(f"{report.subject}: PASS")
        else:
            print(report.render(strict=strict))
    return failed


def _cmd_check(args: argparse.Namespace) -> int:
    """Statically verify traces/workloads against the SPV rules."""
    import os

    from repro.verify import TraceVerifier

    reports = []
    if args.all_workloads:
        for spec in _check_specs(args.scale):
            reports.append(_verify_spec(spec, args.hazard_window, args))
    elif args.target is None:
        raise SystemExit("check needs a trace file or workload name")
    elif os.path.exists(args.target):
        trace = _load_trace_file(args.target)
        verifier = TraceVerifier(hazard_window=args.hazard_window)
        report = verifier.verify(trace, subject=f"trace {args.target}")
        if args.deep:
            # Bare trace files carry no placement plan, so the dataflow
            # pass runs degraded: SPV008/SPV011 need initialised spans
            # and are skipped, SPV009/SPV010/SPV012 still apply.
            from repro.isa.columnar import ColumnarTrace
            from repro.verify import DataflowAnalyzer

            cols = (
                trace
                if isinstance(trace, ColumnarTrace)
                else ColumnarTrace.from_trace(trace)
            )
            deep = DataflowAnalyzer().analyze(
                cols, subject=report.subject
            )
            report.extend(deep.diagnostics)
            report.suppressed += deep.suppressed
        reports.append(report)
    else:
        spec = _lookup_workload(args.target, args.scale)
        reports.append(_verify_spec(spec, args.hazard_window, args))
    failed = _report_findings(reports, args, strict=args.strict)
    if failed:
        summary = f"{failed} of {len(reports)} target(s) FAILED"
        # Keep stdout pure NDJSON under --json.
        print(summary, file=sys.stderr if args.json else sys.stdout)
        return 1
    return 0


def _fault_config(args: argparse.Namespace):
    """Build a FaultCampaignConfig from the shared faults CLI flags."""
    from repro.resilience import FaultCampaignConfig, RecoveryPolicy
    from repro.rm.faults import ShiftFaultConfig

    try:
        return FaultCampaignConfig(
            faults=ShiftFaultConfig(
                p_per_step=args.p_per_step,
                guard_detection=args.guard_detection,
            ),
            policy=RecoveryPolicy(args.policy),
            max_retries=args.max_retries,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def _print_run_report(report) -> None:
    print(f"workload : {report.workload} (seed {report.seed})")
    print(f"policy   : {report.policy}")
    print(
        f"hops     : {report.hops:,} "
        f"(p_hop {report.p_hop:.3e})"
    )
    print(
        f"faults   : {report.injected} injected, "
        f"{report.detected} detected, {report.undetected} silent"
    )
    print(
        f"recovery : {report.retries} retries, "
        f"{report.recovered} recovered, "
        f"{report.recovery_ns / 1e3:.3f} us / "
        f"{report.recovery_pj / 1e3:.3f} nJ charged"
    )
    if report.quarantined:
        pairs = ", ".join(
            f"(bank {bank}, subarray {sub})"
            for bank, sub in report.quarantined
        )
        print(f"quarantined : {pairs}")
    if report.aborted:
        print(f"aborted  : yes, at vpc #{report.abort_index}")
    elif report.time_ns is not None:
        print(f"time     : {report.time_ns / 1e3:.2f} us")
    print(
        f"SDC      : {report.sdc_events} corrupted VPC(s), "
        f"rate {report.sdc_rate:.3e} "
        f"(analytic expectation {report.expected_undetected:.3e})"
    )
    if report.mttf_ns is not None:
        print(f"MTTF     : {report.mttf_ns / 1e3:.2f} us")


def _cmd_faults_run(args: argparse.Namespace) -> int:
    """One fault-injected trace execution with a reliability report."""
    import json

    from repro.resilience import run_with_faults

    spec = _lookup_workload(args.workload, args.scale)
    if spec.build is None:
        raise SystemExit(f"workload {args.workload!r} has no task builder")
    compiled = _compile_spec(spec, args)
    trace = compiled.trace  # columnar; both engines consume it directly
    collector = None
    if args.profile:
        from repro.obs import Collector

        collector = Collector()
        compiled.device.observe(collector)
    stats, report = run_with_faults(
        compiled.device,
        trace,
        config=_fault_config(args),
        seed=args.seed,
        workload=spec.name,
        engine=args.engine,
    )
    _print_run_report(report)
    if stats is not None and stats.time_breakdown.recovery_ns > 0.0:
        share = stats.time_breakdown.fractions()["recovery"]
        print(f"recovery time share : {share:.2%}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=1)
        print(f"report written to {args.output}")
    if collector is not None:
        return _export_profile(collector, stats, args.profile)
    return 0


def _cmd_faults_campaign(args: argparse.Namespace) -> int:
    """Monte-Carlo fault campaign over independent seeds."""
    from repro.resilience import run_campaign
    from repro.verify import TraceVerificationError

    try:
        report = run_campaign(
            args.workload,
            config=_fault_config(args),
            scale=args.scale,
            runs=args.runs,
            master_seed=args.master_seed,
            jobs=args.jobs,
            engine=args.engine,
            use_cache=not args.no_trace_cache,
            cache_dir=args.cache_dir,
            deep_check=args.deep,
        )
    except TraceVerificationError as exc:
        print(exc.report.render())
        print(
            "campaign aborted: the workload's dataflow is already "
            "broken, so fault attribution would be meaningless"
        )
        return 1
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(
        f"campaign : {report.workload} (scale {report.scale}), "
        f"{report.n_runs} runs, engine {report.engine}, "
        f"policy {report.policy}"
    )
    print(
        f"faults   : {report.total_injected} injected, "
        f"{report.total_detected} detected, "
        f"{report.total_undetected} silent"
    )
    print(
        f"runs     : {report.aborted_runs} aborted, "
        f"{report.sdc_runs} with silent corruption"
    )
    print(
        f"undetected/run : observed {report.observed_undetected_mean:.4f}"
        f" vs analytic {report.expected_undetected_per_run:.4f}"
    )
    if report.mttf_ns is not None:
        print(f"observed MTTF : {report.mttf_ns / 1e3:.2f} us")
    if report.analytic_mttf_ns is not None:
        print(f"analytic MTTF : {report.analytic_mttf_ns / 1e3:.2f} us")
    if args.output:
        report.to_json(args.output)
        print(f"report written to {args.output}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the content-addressed trace cache."""
    import json

    from repro.isa.trace_cache import TraceCache

    cache = TraceCache(args.cache_dir)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(
            f"removed {removed} cached trace(s) from {cache.cache_dir}"
        )
        return 0
    stats = cache.stats()
    if args.json:
        print(json.dumps(stats, indent=1, sort_keys=True))
        return 0
    print(f"cache dir : {stats['cache_dir']}")
    print(
        f"entries   : {stats['entries']} "
        f"({stats['entry_bytes']:,} bytes)"
    )
    print(
        f"hits      : {stats['hits']} "
        f"({stats['memory_hits']} served from memory)"
    )
    print(f"misses    : {stats['misses']}")
    print(f"puts      : {stats['puts']}")
    print(f"corrupt   : {stats['corrupt']} (detected and recompiled)")
    print(
        f"io        : {stats['bytes_read']:,} B read, "
        f"{stats['bytes_written']:,} B written"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the repository-invariant AST lint (SPL rules)."""
    from repro.verify import lint_paths

    report = lint_paths(args.paths or None)
    failed = _report_findings([report], args, strict=False)
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived simulation service (docs/serving.md)."""
    from repro.serve import CoreConfig, RetryPolicy, ServeConfig, run_server

    if args.socket is None and args.host is None:
        raise SystemExit("serve needs --socket PATH or --host HOST")
    core = CoreConfig(
        queue_limit=args.queue_limit,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        max_batch=args.max_batch,
        batch_linger_s=args.batch_linger_ms / 1000.0,
        drr_quantum=args.drr_quantum,
        default_deadline_s=args.default_deadline,
        hang_grace_s=args.hang_grace,
        max_redeliveries=args.max_redeliveries,
        retry=RetryPolicy(max_attempts=args.max_attempts),
        breaker_failure_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        responded_ledger_limit=args.responded_ledger_limit,
        enable_debug_methods=args.chaos,
    )
    config = ServeConfig(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        http_host=args.http_host,
        http_port=args.http_port,
        workers=args.workers,
        core=core,
        drain_timeout_s=args.drain_timeout,
        cache_dir=getattr(args, "cache_dir", None),
    )
    try:
        return run_server(config)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


def _cmd_client(args: argparse.Namespace) -> int:
    """Send one request to a running service and print the response."""
    import json

    from repro.serve import ServeClient, ServeClientError

    params = {}
    if args.params:
        try:
            params = json.loads(args.params)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"--params must be valid JSON: {exc}")
        if not isinstance(params, dict):
            raise SystemExit("--params must be a JSON object")
    if args.workload is not None:
        params.setdefault("workload", args.workload)
    if args.platform is not None:
        params.setdefault("platform", args.platform)
    if args.scale is not None:
        params.setdefault("scale", args.scale)
    try:
        with ServeClient(
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            timeout_s=args.timeout,
            tenant=args.tenant,
        ) as client:
            response = client.call(
                args.method, params, deadline_ms=args.deadline_ms
            )
    except (ServeClientError, ValueError) as exc:
        raise SystemExit(str(exc))
    print(json.dumps(response.to_dict(), indent=1, sort_keys=True))
    if response.ok:
        return 0
    # Distinguish "try again later" from "this request will never
    # work" in the exit status for scripting.
    return 2 if response.error is not None and response.error.retryable else 1


def _add_rule_filter_flags(cmd: argparse.ArgumentParser) -> None:
    """``--json``/``--select``/``--ignore`` on a diagnostics command.

    The NDJSON schema (one diagnostic object per line) is documented in
    ``docs/static_analysis.md`` and stable across releases.
    """
    cmd.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON diagnostic per line instead of text "
        "(stable schema; see docs/static_analysis.md)",
    )
    cmd.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule IDs to report (all others dropped); "
        "unknown IDs are an error",
    )
    cmd.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule IDs to suppress; unknown IDs are "
        "an error",
    )


def _add_cache_flags(
    cmd: argparse.ArgumentParser, no_compile: str = ""
) -> None:
    """``--no-trace-cache``/``--cache-dir`` on a trace-lowering command.

    ``no_compile`` notes that a command accepts the flags only for
    interface uniformity (it never lowers a trace itself).
    """
    suffix = f" ({no_compile})" if no_compile else ""
    cmd.add_argument(
        "--no-trace-cache",
        dest="no_trace_cache",
        action="store_true",
        help="compile the trace fresh instead of using the "
        "content-addressed cache" + suffix,
    )
    cmd.add_argument(
        "--cache-dir",
        default=None,
        help="trace cache directory (default: "
        "$REPRO_STREAMPIM_CACHE_DIR or ~/.cache/repro-streampim)",
    )


def _add_stream_flags(
    cmd: argparse.ArgumentParser, no_stream: str = ""
) -> None:
    """``--stream/--no-stream``/``--chunk-vpcs`` on an execution command.

    ``no_stream`` notes that a command accepts the flags only for
    interface uniformity (it never drives the chunk pipeline itself).
    """
    suffix = f" ({no_stream})" if no_stream else ""
    cmd.add_argument(
        "--stream",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="stream chunked lowering straight into the vector "
        "executor instead of finishing compilation first" + suffix,
    )
    cmd.add_argument(
        "--chunk-vpcs",
        dest="chunk_vpcs",
        type=int,
        default=None,
        metavar="N",
        help="minimum records per streamed chunk, cut at operation "
        "boundaries (default 4096)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-streampim",
        description="StreamPIM (HPCA 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one workload on one platform")
    run.add_argument("workload")
    run.add_argument("--platform", default="StPIM")
    run.add_argument("--scale", type=float, default=1.0)
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser("sweep", help="Fig. 17/18 platform comparison")
    sweep.add_argument("--workloads", nargs="*", default=None)
    sweep.add_argument("--scale", type=float, default=1.0)
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run (platform, workload) pairs in N parallel processes",
    )
    sweep.add_argument(
        "--job-timeout",
        dest="job_timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abandon any single (platform, workload) cell after this "
        "many seconds: the cell is reported as JobTimeout and excluded "
        "from the averages instead of hanging the sweep",
    )
    _add_cache_flags(
        sweep,
        no_compile="sweep uses the analytic model and lowers no "
        "traces; accepted for interface uniformity",
    )
    _add_stream_flags(
        sweep,
        no_stream="sweep uses the analytic model and executes no "
        "traces; accepted for interface uniformity",
    )
    sweep.set_defaults(func=_cmd_sweep)

    counts = sub.add_parser("counts", help="Table IV VPC counts")
    counts.set_defaults(func=_cmd_counts)

    info = sub.add_parser("info", help="device configuration and area")
    info.set_defaults(func=_cmd_info)

    trace = sub.add_parser("trace", help="enumerate a VPC trace")
    trace.add_argument("workload")
    trace.add_argument("--scale", type=float, default=0.01)
    trace.add_argument("-o", "--output", default=None)
    _add_cache_flags(trace)
    _add_stream_flags(trace)
    trace.set_defaults(func=_cmd_trace)

    replay = sub.add_parser(
        "replay", help="replay a saved trace on the event engine"
    )
    replay.add_argument("trace")
    replay.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the pre-execution bounds verification",
    )
    replay.add_argument(
        "--engine",
        choices=("scalar", "vector"),
        default="scalar",
        help="event executor: the reference per-VPC loop or the "
        "columnar vectorized fast path (identical results)",
    )
    replay.add_argument(
        "--profile",
        metavar="FILE",
        default=None,
        help="collect metrics and spans; write a Chrome trace to FILE",
    )
    _add_cache_flags(
        replay,
        no_compile="replay executes an already-saved trace file and "
        "lowers nothing; accepted for interface uniformity",
    )
    _add_stream_flags(replay)
    replay.set_defaults(func=_cmd_replay)

    profile = sub.add_parser(
        "profile",
        help="instrumented workload run: Chrome trace + metrics summary",
    )
    profile.add_argument("workload")
    profile.add_argument("--scale", type=float, default=0.05)
    profile.add_argument(
        "--engine",
        choices=("scalar", "vector"),
        default="vector",
        help="trace engine (both emit identical span streams)",
    )
    profile.add_argument(
        "--functional",
        action="store_true",
        help="also execute word-level semantics during the run",
    )
    profile.add_argument(
        "-o",
        "--output",
        default="trace.json",
        help="Chrome trace_event JSON output path",
    )
    _add_cache_flags(profile)
    _add_stream_flags(profile)
    profile.set_defaults(func=_cmd_profile)

    check = sub.add_parser(
        "check",
        help="static trace/placement verification (SPV rules)",
    )
    check.add_argument(
        "target",
        nargs="?",
        help="a trace file (text or binary) or a workload name",
    )
    check.add_argument(
        "--all-workloads",
        action="store_true",
        help="check every shipped workload generator at reduced size",
    )
    check.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors",
    )
    check.add_argument("--scale", type=float, default=0.01)
    check.add_argument(
        "--hazard-window",
        type=int,
        default=4,
        help="pipeline depth for the SPV004 hazard scan",
    )
    check.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-trace dataflow analysis "
        "(SPV008-SPV012: uninitialised reads, dead stores, schedule "
        "races, scratch leaks, redundant copies)",
    )
    _add_rule_filter_flags(check)
    _add_cache_flags(check)
    check.set_defaults(func=_cmd_check)

    faults = sub.add_parser(
        "faults",
        help="fault-injection runs and Monte-Carlo campaigns",
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)

    def _add_fault_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("workload")
        cmd.add_argument("--scale", type=float, default=0.01)
        cmd.add_argument(
            "--policy",
            choices=("retry", "abort", "degrade"),
            default="retry",
            help="recovery policy for guard-detected faults",
        )
        cmd.add_argument(
            "--p-per-step",
            type=float,
            default=1e-7,
            help="per-step shift misalignment probability",
        )
        cmd.add_argument(
            "--guard-detection",
            type=float,
            default=0.99,
            help="probability a guard domain catches a misaligned hop",
        )
        cmd.add_argument(
            "--max-retries",
            type=int,
            default=3,
            help="re-shift attempts before retry escalates to abort",
        )
        cmd.add_argument(
            "--engine",
            choices=("scalar", "vector"),
            default="scalar",
            help="trace engine (both produce identical reports)",
        )
        cmd.add_argument(
            "-o",
            "--output",
            default=None,
            help="write the JSON report to this file",
        )
        _add_cache_flags(cmd)

    faults_run = faults_sub.add_parser(
        "run", help="one seeded fault-injected trace execution"
    )
    _add_fault_flags(faults_run)
    faults_run.add_argument("--seed", type=int, default=0)
    faults_run.add_argument(
        "--profile",
        metavar="FILE",
        default=None,
        help="collect metrics and spans; write a Chrome trace to FILE",
    )
    faults_run.set_defaults(func=_cmd_faults_run)

    faults_campaign = faults_sub.add_parser(
        "campaign", help="Monte-Carlo campaign over independent seeds"
    )
    _add_fault_flags(faults_campaign)
    faults_campaign.add_argument("--runs", type=int, default=16)
    faults_campaign.add_argument("--master-seed", type=int, default=0)
    faults_campaign.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="distribute runs over N processes (same report as jobs=1)",
    )
    faults_campaign.add_argument(
        "--deep",
        action="store_true",
        help="gate the campaign on the whole-trace dataflow analysis: "
        "abort before injecting faults if the program already has "
        "error-severity findings",
    )
    faults_campaign.set_defaults(func=_cmd_faults_campaign)

    cache = sub.add_parser(
        "cache", help="inspect or clear the trace cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="hit/miss counters and on-disk footprint"
    )
    cache_stats.add_argument(
        "--json",
        action="store_true",
        help="emit the counters as JSON (machine-readable)",
    )
    cache_clear = cache_sub.add_parser(
        "clear", help="delete every cached trace and the counters"
    )
    for cmd in (cache_stats, cache_clear):
        cmd.add_argument(
            "--cache-dir",
            default=None,
            help="trace cache directory (default: "
            "$REPRO_STREAMPIM_CACHE_DIR or ~/.cache/repro-streampim)",
        )
        cmd.set_defaults(func=_cmd_cache)

    lint = sub.add_parser(
        "lint", help="repository-invariant AST lint (SPL rules)"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the repro package)",
    )
    _add_rule_filter_flags(lint)
    lint.set_defaults(func=_cmd_lint)

    workloads = sub.add_parser("workloads", help="list available workloads")
    workloads.add_argument(
        "--json",
        action="store_true",
        help="emit the registry as JSON (machine-readable)",
    )
    workloads.set_defaults(func=_cmd_workloads)

    calibrate = sub.add_parser(
        "calibrate",
        help="analytic predictor error vs a cycle-level engine",
    )
    calibrate.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        metavar="NAME[:SCALE]",
        help="cases to calibrate (default: the full buildable set)",
    )
    calibrate.add_argument(
        "--engine",
        choices=("vector", "scalar"),
        default="vector",
        help="reference simulator (bit-identical by contract)",
    )
    calibrate.add_argument(
        "--heavy",
        action="store_true",
        help="include bert (~24M commands; the simulation side alone "
        "takes ~10 minutes)",
    )
    calibrate.add_argument("--seed", type=int, default=7)
    calibrate.add_argument(
        "-o", "--output", default=None, help="write the report as JSON"
    )
    _add_cache_flags(calibrate)
    calibrate.set_defaults(func=_cmd_calibrate)

    explore = sub.add_parser(
        "explore",
        help="analytic design-space sweep + Pareto re-simulation",
    )
    explore.add_argument(
        "--workloads",
        nargs="*",
        default=None,
        metavar="NAME[:SCALE]",
        help="workload axis of the grid (default: gemm:0.02 plus the "
        "full-scale matvec family)",
    )
    explore.add_argument(
        "--policies",
        nargs="*",
        default=None,
        choices=("base", "distribute", "unblock"),
        help="scheduler-policy axis (default: all three)",
    )
    explore.add_argument(
        "--read-scales",
        nargs="*",
        type=float,
        default=None,
        metavar="X",
        help="read-port latency multipliers (energy scales inversely)",
    )
    explore.add_argument(
        "--write-scales",
        nargs="*",
        type=float,
        default=None,
        metavar="X",
        help="write-port latency multipliers (energy scales inversely)",
    )
    explore.add_argument(
        "--decode-ns",
        nargs="*",
        type=float,
        default=None,
        metavar="NS",
        help="host decode overheads per VPC",
    )
    explore.add_argument(
        "--verify-limit",
        type=int,
        default=None,
        metavar="N",
        help="re-simulate at most N frontier points per workload "
        "(default: the whole frontier)",
    )
    explore.add_argument("--seed", type=int, default=7)
    explore.add_argument(
        "-o", "--output", default=None, help="write the report as JSON"
    )
    _add_cache_flags(explore)
    explore.set_defaults(func=_cmd_explore)

    serve = sub.add_parser(
        "serve",
        help="long-lived simulation service over a unix socket / TCP",
    )
    serve.add_argument(
        "--socket", default=None, metavar="PATH", help="unix socket path"
    )
    serve.add_argument(
        "--host",
        default=None,
        help="TCP bind host (alternative to --socket)",
    )
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve the HTTP/REST API on this port (0 = ephemeral; "
        "POST /v1/run, POST /v1/compile, GET /v1/stats, POST /v1/drain)",
    )
    serve.add_argument(
        "--http-host",
        default="127.0.0.1",
        help="HTTP bind host (with --http-port)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="worker process count"
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=1,
        help="most compatible run requests one worker dispatch may "
        "carry (1 disables batching)",
    )
    serve.add_argument(
        "--batch-linger-ms",
        type=float,
        default=0.0,
        help="milliseconds a partial batch may wait for more "
        "compatible requests before dispatching anyway",
    )
    serve.add_argument(
        "--drr-quantum",
        type=float,
        default=1.0,
        help="deficit-round-robin quantum granted per tenant per "
        "round (cost is 1 per request)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="bounded accept queue; beyond it requests shed QUEUE_FULL",
    )
    serve.add_argument(
        "--tenant-rate",
        type=float,
        default=50.0,
        help="per-tenant token refill rate (requests/second)",
    )
    serve.add_argument(
        "--tenant-burst",
        type=float,
        default=100.0,
        help="per-tenant token bucket capacity",
    )
    serve.add_argument(
        "--default-deadline",
        type=float,
        default=30.0,
        help="deadline (seconds) for requests that set none",
    )
    serve.add_argument(
        "--hang-grace",
        type=float,
        default=2.0,
        help="seconds past its deadline an in-flight request may run "
        "before its worker is presumed hung and killed",
    )
    serve.add_argument(
        "--max-redeliveries",
        type=int,
        default=2,
        help="crash redeliveries per request before DEAD_LETTER",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="total attempts per request for retryable failures",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive worker-killing failures that open a "
        "workload class's circuit",
    )
    serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=5.0,
        help="seconds an open circuit waits before half-opening",
    )
    serve.add_argument(
        "--responded-ledger-limit",
        type=int,
        default=8192,
        help="request ids remembered by the exactly-once ledger "
        "(duplicate-id rejection window; retries need fresh ids)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds accepted work may finish after SIGTERM/drain",
    )
    serve.add_argument(
        "--chaos",
        action="store_true",
        help="honour x-crash/x-sleep/x-fault debug methods "
        "(chaos benching only; never in production)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="trace cache directory workers compile into (default: "
        "$REPRO_STREAMPIM_CACHE_DIR or ~/.cache/repro-streampim)",
    )
    serve.set_defaults(func=_cmd_serve)

    client = sub.add_parser(
        "client", help="send one request to a running service"
    )
    client.add_argument(
        "method",
        help="request method: run, compile, ping, stats, drain",
    )
    client.add_argument(
        "--socket", default=None, metavar="PATH", help="unix socket path"
    )
    client.add_argument("--host", default=None, help="TCP host")
    client.add_argument("--port", type=int, default=0, help="TCP port")
    client.add_argument(
        "--workload", default=None, help="params.workload shorthand"
    )
    client.add_argument(
        "--platform", default=None, help="params.platform shorthand"
    )
    client.add_argument(
        "--scale", type=float, default=None, help="params.scale shorthand"
    )
    client.add_argument(
        "--params",
        default=None,
        metavar="JSON",
        help="request params as a JSON object (merged under the "
        "shorthand flags)",
    )
    client.add_argument(
        "--deadline-ms",
        dest="deadline_ms",
        type=float,
        default=None,
        help="per-request deadline in milliseconds",
    )
    client.add_argument(
        "--tenant", default="default", help="admission tenant label"
    )
    client.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="socket timeout in seconds",
    )
    client.set_defaults(func=_cmd_client)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - direct invocation
    sys.exit(main())
