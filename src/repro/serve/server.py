"""The asyncio shell around the service core and the worker pool.

One event loop owns everything: socket accept/readers, the periodic
tick that drains worker-pool events and advances the core's clock, and
the drain sequence.  All decisions live in
:class:`~repro.serve.core.ServiceCore`; this module only moves bytes
and executes the actions the core returns, so the failure semantics
exercised by the property tests are exactly what runs in production.

Lifecycle: ``SIGTERM``/``SIGINT`` (or the ``drain`` control method)
stop the listener, let accepted work finish within
``drain_timeout_s``, answer anything still unresolved with a typed
``DRAINING`` error, shut the pool down, and exit.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.serve.core import (
    CoreConfig,
    Dispatch,
    KillWorker,
    Respond,
    ServiceCore,
)
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ErrorCode,
    ProtocolError,
    Request,
    Response,
    ServeError,
    decode_line,
    encode_message,
    parse_request,
)
from repro.serve.supervisor import WorkerOptions, WorkerPool

logger = logging.getLogger("repro.serve")


@dataclass(frozen=True)
class ServeConfig:
    """Everything the ``repro-streampim serve`` command can tune."""

    socket_path: Optional[str] = None
    host: Optional[str] = None
    port: int = 0
    #: Bind an additional stdlib HTTP/REST frontend
    #: (:mod:`repro.serve.http`) when not None; 0 picks a free port.
    http_port: Optional[int] = None
    http_host: str = "127.0.0.1"
    workers: int = 2
    core: CoreConfig = field(default_factory=CoreConfig)
    tick_interval_s: float = 0.02
    drain_timeout_s: float = 10.0
    heartbeat_interval_s: float = 0.2
    heartbeat_timeout_s: float = 5.0
    cache_dir: Optional[str] = None
    mp_context: Optional[str] = None

    def __post_init__(self) -> None:
        if self.socket_path is None and self.host is None:
            raise ValueError(
                "serve needs a unix socket path or a host/port"
            )


def request_coalesce_key(request: Request) -> Optional[str]:
    """Coalescing key of a request, or None when it must not coalesce.

    Identical ``compile`` requests are keyed by the same content hash
    the trace cache uses (:func:`repro.core.compile.spec_cache_key`),
    so every concurrent compile of one (workload, scale, seed,
    geometry, lowering) lands on a single in-flight computation.
    Unresolvable params return None — the worker will produce the
    typed error.
    """
    if request.method != "compile":
        return None
    try:
        from repro.core.compile import spec_cache_key
        from repro.workloads import find_workload

        spec = find_workload(
            str(request.params.get("workload", "")),
            scale=float(request.params.get("scale", 0.01)),
        )
        key = spec_cache_key(spec, seed=int(request.params.get("seed", 7)))
    except (KeyError, TypeError, ValueError):
        return None
    deep = bool(request.params.get("deep", False))
    no_cache = bool(request.params.get("no_cache", False))
    if no_cache:
        # An explicit fresh compile must actually run.
        return None
    return f"{key}:deep={int(deep)}"


def request_batch_key(request: Request) -> Optional[str]:
    """Batching key of a request, or None when it must run alone.

    ``run`` requests naming the same (workload, scale, geometry,
    lowering) content hash — the :func:`spec_cache_key` the trace cache
    uses — and the same platform are *compatible*: a warm worker can
    execute them back to back in one dispatch, amortizing process
    round-trips the way PIRM amortizes one racetrack access across a
    multi-operand batch.  Unlike coalescing, every batched request
    still executes (results are per-request), so requests that differ
    only in deadline or tenant batch fine.
    """
    if request.method != "run":
        return None
    try:
        from repro.core.compile import spec_cache_key
        from repro.workloads import find_workload

        spec = find_workload(
            str(request.params.get("workload", "")),
            scale=float(request.params.get("scale", 1.0)),
        )
        key = spec_cache_key(spec, seed=0)
    except (KeyError, TypeError, ValueError):
        return None
    platform = str(request.params.get("platform", "StPIM"))
    return f"run:{platform}:{key}"


class SimulationServer:
    """Long-lived simulation service over a unix socket / localhost TCP."""

    def __init__(
        self,
        config: ServeConfig,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self.core = ServiceCore(config.core, registry=self.registry)
        self.pool = WorkerPool(
            size=config.workers,
            options=WorkerOptions(
                heartbeat_interval_s=config.heartbeat_interval_s,
                cache_dir=config.cache_dir,
                enable_debug_methods=config.core.enable_debug_methods,
            ),
            heartbeat_timeout_s=config.heartbeat_timeout_s,
            context=config.mp_context,
        )
        self.started_at = 0.0
        self._server: Optional[asyncio.AbstractServer] = None
        self._tick_task: Optional[asyncio.Task] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._stopped = asyncio.Event()
        # Request id -> response sink: a StreamWriter (line protocol)
        # or a plain callable taking the Response (HTTP adapter).
        self._routes: Dict[str, object] = {}
        self._writers: set = set()
        self._http = None  # HttpFrontend when http_port is configured

    # ------------------------------------------------------------------
    @property
    def endpoint(self) -> str:
        if self.config.socket_path is not None:
            return f"unix:{self.config.socket_path}"
        return f"tcp:{self.config.host}:{self.bound_port}"

    @property
    def bound_port(self) -> int:
        if self._server is None or not self._server.sockets:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def http_endpoint(self) -> Optional[str]:
        if self._http is None:
            return None
        return f"http://{self.config.http_host}:{self._http.bound_port}"

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn workers, bind the socket, start ticking."""
        now = time.time()
        self.started_at = now
        for worker_id in self.pool.start(now):
            self._apply(self.core.register_worker(worker_id, now))
        if self.config.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=self.config.socket_path,
                limit=MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=MAX_LINE_BYTES,
            )
        if self.config.http_port is not None:
            from repro.serve.http import HttpFrontend

            self._http = HttpFrontend(self)
            await self._http.start(
                self.config.http_host, self.config.http_port
            )
        self._tick_task = asyncio.get_running_loop().create_task(
            self._tick_loop()
        )

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, self.request_drain)

    def request_drain(self) -> None:
        """Begin graceful shutdown (idempotent; signal-handler safe)."""
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain()
            )

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    # ------------------------------------------------------------------
    async def _tick_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                self._tick_once(time.time())
            except Exception:
                # The tick is the service's heartbeat: if it dies the
                # server accepts connections but never dispatches or
                # expires anything.  Log and keep ticking — the pool
                # treats any worker whose pipe misbehaves as crashed,
                # so a single bad event cannot wedge the loop.
                self.registry.counter("serve.tick.errors").inc()
                logger.exception("serve tick failed; continuing")
            await asyncio.sleep(self.config.tick_interval_s)

    def _tick_once(self, now: float) -> None:
        for event in self.pool.poll(now):
            kind = event[0]
            if kind == "ready":
                self._apply(self.core.register_worker(event[1], now))
            elif kind == "exit":
                self.registry.counter("serve.worker.restarts").inc()
                self._apply(
                    self.core.worker_exit(event[1], now, reason=event[2])
                )
            elif kind == "result":
                self._apply(
                    self.core.worker_result(
                        event[1], event[2], event[3], now
                    )
                )
        self._apply(self.core.tick(now))

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                    ConnectionResetError,
                ):
                    break
                except asyncio.CancelledError:
                    # Loop teardown after drain: end the handler
                    # normally so asyncio's connection callback does
                    # not log the cancellation as an error.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self._handle_line(line, writer)
                with contextlib.suppress(ConnectionResetError):
                    await writer.drain()
        finally:
            self._writers.discard(writer)
            dead = [
                rid for rid, w in self._routes.items() if w is writer
            ]
            for rid in dead:
                # The client vanished: the core still resolves the
                # request (exactly-once internally); the response is
                # simply undeliverable.
                self._routes[rid] = None  # type: ignore[assignment]
            with contextlib.suppress(Exception):
                writer.close()

    def _handle_line(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        now = time.time()
        try:
            obj = decode_line(line)
            request = parse_request(obj)
        except ProtocolError as exc:
            request_id = ""
            if isinstance(line, bytes):
                try:
                    raw = decode_line(line[:MAX_LINE_BYTES])
                    if isinstance(raw.get("id"), str):
                        request_id = raw["id"]
                except ProtocolError:
                    pass
            self._write(
                writer,
                Response.failure(
                    request_id, ServeError(exc.code, str(exc))
                ),
            )
            return
        if request.method == "ping":
            self._write(
                writer,
                Response.success(
                    request.id,
                    {
                        "pong": True,
                        "draining": self.core.draining,
                        "uptime_s": round(now - self.started_at, 3),
                    },
                ),
            )
            return
        if request.method == "stats":
            self._write(
                writer, Response.success(request.id, self.stats(now))
            )
            return
        if request.method == "drain":
            self.request_drain()
            self._write(
                writer, Response.success(request.id, {"draining": True})
            )
            return
        self.submit_request(request, writer, now)

    def submit_request(
        self, request: Request, sink: object, now: float
    ) -> None:
        """Route + submit one parsed worker-method request.

        ``sink`` receives the eventual response: a StreamWriter for the
        line protocol, or any callable taking a
        :class:`~repro.serve.protocol.Response` (the HTTP adapter
        passes a future-resolving closure).  Shared by both frontends
        so they get identical duplicate-id and exactly-once semantics.
        """
        if request.id in self._routes:
            # A response for this id is still owed to some client
            # (possibly on another connection).  Registering this
            # sink would overwrite the original's route and let the
            # duplicate's rejection pop it, silently dropping the
            # original response — so answer the duplicate directly
            # without touching the routing table.
            self.registry.counter("serve.requests.duplicate_id").inc()
            self._deliver(
                sink,
                Response.failure(
                    request.id,
                    ServeError(
                        ErrorCode.INVALID_REQUEST,
                        f"duplicate request id {request.id!r} "
                        "(a response for it is still pending)",
                    ),
                ),
            )
            return
        self._routes[request.id] = sink
        self._apply(
            self.core.submit(
                request,
                now,
                coalesce_key=request_coalesce_key(request),
                batch_key=request_batch_key(request),
            )
        )

    # ------------------------------------------------------------------
    def _apply(self, actions: List[object]) -> None:
        for action in actions:
            if isinstance(action, Respond):
                sink = self._routes.pop(action.response.id, None)
                if sink is not None:
                    self._deliver(sink, action.response)
            elif isinstance(action, Dispatch):
                if not self.pool.dispatch(action.worker_id, action.message):
                    # The worker died between poll and dispatch; the
                    # exit event will requeue via the normal path on
                    # the next poll, because the core still holds the
                    # request as in-flight on that worker.
                    self.registry.counter(
                        "serve.dispatch.to_dead_worker"
                    ).inc()
            elif isinstance(action, KillWorker):
                self.registry.counter("serve.worker.kills").inc()
                self.pool.kill(action.worker_id)

    def _deliver(self, sink: object, response: Response) -> None:
        """Hand ``response`` to a route sink of either frontend."""
        if callable(sink) and not hasattr(sink, "write"):
            try:
                sink(response)
            except Exception:  # pragma: no cover - defensive
                self.registry.counter("serve.sink.errors").inc()
        else:
            self._write(sink, response)

    def _write(
        self, writer: Optional[asyncio.StreamWriter], response: Response
    ) -> None:
        if writer is None:
            return
        try:
            writer.write(encode_message(response.to_dict()))
        except (ConnectionResetError, RuntimeError):
            pass

    # ------------------------------------------------------------------
    def stats(self, now: float) -> Dict[str, object]:
        latency = self.registry.histogram("serve.latency_ms")
        snapshot = {
            "core": self.core.snapshot(now),
            "pool": self.pool.snapshot(now),
            "latency_ms": {
                "count": latency.count,
                "p50": latency.percentile(50.0),
                "p99": latency.percentile(99.0),
                "max": latency.max,
            },
            "metrics": self.registry.snapshot(),
            "uptime_s": round(now - self.started_at, 3),
        }
        return snapshot

    # ------------------------------------------------------------------
    async def _drain(self) -> None:
        now = time.time()
        self.core.begin_drain(now)
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        if self._http is not None:
            # Stop accepting HTTP connections; requests already routed
            # keep their sinks and are answered by the drain sweep.
            await self._http.stop_listening()
        deadline = now + self.config.drain_timeout_s
        while not self.core.is_quiescent() and time.time() < deadline:
            await asyncio.sleep(self.config.tick_interval_s)
        self._apply(self.core.abort_remaining(time.time()))
        for writer in list(self._writers):
            with contextlib.suppress(ConnectionResetError):
                await writer.drain()
        self._stopped.set()
        if self._tick_task is not None:
            self._tick_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._tick_task
        self.pool.shutdown()
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()


async def _amain(config: ServeConfig, ready_line: bool = True) -> int:
    server = SimulationServer(config)
    await server.start()
    server.install_signal_handlers()
    if ready_line:
        http = server.http_endpoint
        print(
            f"repro-streampim serve: listening on {server.endpoint}"
            + (f" and {http}" if http else "")
            + f" ({config.workers} workers)",
            flush=True,
        )
    await server.serve_forever()
    if ready_line:
        print("repro-streampim serve: drained, bye", flush=True)
    return 0


def run_server(config: ServeConfig) -> int:
    """Blocking entry point used by the CLI."""
    return asyncio.run(_amain(config))
