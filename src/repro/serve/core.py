"""The service core: a pure state machine over requests and workers.

Everything that makes the service *robust* lives here — admission,
deadlines, bounded retry with backoff, crash redelivery with a
dead-letter bound, request coalescing, circuit breaking, drain — as a
single deterministic state machine with **no I/O, no clock, no
randomness**.  The asyncio server (:mod:`repro.serve.server`)
translates real events (socket lines, worker pipe messages, process
exits, timer ticks) into calls on this class and executes the returned
:class:`Action` list; property tests drive the same calls with a
virtual clock and assert the exactly-once contract over arbitrary
interleavings.

Invariants the core maintains (and tests assert):

* every submitted request is answered **exactly once** — with a result
  or a typed :class:`~repro.serve.protocol.ErrorCode` — no matter how
  worker deaths, deadline expiries, retries and drain interleave; the
  supporting id ledger is LRU-bounded (``responded_ledger_limit``), so
  client retries must use fresh ids;
* a request past its deadline is never dispatched, and an in-flight
  request past ``deadline + hang_grace`` gets its worker killed and a
  ``DEADLINE_EXCEEDED`` answer;
* a crashed worker's request is redelivered at most
  ``max_redeliveries`` times, then answered with ``DEAD_LETTER``;
* coalesced followers never run — they share their leader's result,
  keep their own deadlines, and are promoted to leader if the leader
  fails terminally;
* queued work is served **deficit-round-robin across tenants**
  (:mod:`repro.serve.scheduling`): while N tenants are backlogged each
  receives ~1/N of the dispatches, so one tenant's burst adds no
  queueing delay to another tenant's admitted requests;
* compatible queued requests (same ``batch_key``) may be **batched**
  into one worker dispatch (up to ``max_batch``, optionally lingering
  ``batch_linger_s`` for peers) — each batched request keeps its own
  deadline, attempt budget and response envelope, and results are
  demultiplexed per request id.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.serve.admission import AdmissionController
from repro.serve.scheduling import DeficitRoundRobin
from repro.serve.protocol import (
    DEBUG_METHODS,
    WORKER_METHODS,
    ErrorCode,
    Request,
    Response,
    ServeError,
)
from repro.serve.retry import BreakerBoard, RetryPolicy


@dataclass(frozen=True)
class CoreConfig:
    """Tuning knobs of the service core (all durations in seconds)."""

    #: Accepted-but-unstarted bound; 0 disables queuing entirely
    #: (every request must find an idle worker immediately).
    queue_limit: int = 64
    tenant_rate: float = 50.0
    tenant_burst: float = 100.0
    #: Most requests one worker dispatch may carry (1 disables
    #: batching).  Only requests sharing a ``batch_key`` are grouped;
    #: each keeps its own deadline, attempts and response envelope.
    max_batch: int = 1
    #: How long a partial batch may wait for more compatible requests
    #: before dispatching anyway (0 = never hold work back).
    batch_linger_s: float = 0.0
    #: Deficit granted per tenant per round of the fair scheduler.
    drr_quantum: float = 1.0
    default_deadline_s: float = 30.0
    max_deadline_s: float = 300.0
    #: Extra time an in-flight request may run past its deadline before
    #: the worker is presumed hung and killed (cooperative cancellation
    #: should have returned ``DEADLINE_EXCEEDED`` long before this).
    hang_grace_s: float = 2.0
    #: Crash redeliveries per request before it dead-letters.
    max_redeliveries: int = 2
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 5.0
    #: Most recent request ids remembered by the exactly-once ledger
    #: (LRU on response order).  Reusing an id while it is remembered
    #: is rejected with ``INVALID_REQUEST``; clients must retry with
    #: fresh ids.  Bounded so a long-lived service does not grow a
    #: per-request memory footprint forever.
    responded_ledger_limit: int = 8192
    #: Most recent dead-letter records kept for ``stats`` (the total
    #: count is tracked separately and never resets).
    dead_letter_limit: int = 256
    #: Honour chaos/debug methods (``x-crash``/``x-sleep``/``x-fault``).
    enable_debug_methods: bool = False

    def __post_init__(self) -> None:
        if self.queue_limit < 0:
            raise ValueError(
                f"queue_limit must be >= 0, got {self.queue_limit}"
            )
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.batch_linger_s < 0:
            raise ValueError(
                f"batch_linger_s must be >= 0, got {self.batch_linger_s}"
            )
        if self.drr_quantum <= 0:
            raise ValueError(
                f"drr_quantum must be positive, got {self.drr_quantum}"
            )
        if self.tenant_rate <= 0 or self.tenant_burst <= 0:
            raise ValueError(
                "tenant_rate and tenant_burst must be positive, got "
                f"{self.tenant_rate}/{self.tenant_burst}"
            )
        if not 0 < self.default_deadline_s <= self.max_deadline_s:
            raise ValueError(
                "need 0 < default_deadline_s <= max_deadline_s, got "
                f"{self.default_deadline_s}/{self.max_deadline_s}"
            )
        if self.hang_grace_s < 0:
            raise ValueError(
                f"hang_grace_s must be >= 0, got {self.hang_grace_s}"
            )
        if self.max_redeliveries < 0:
            raise ValueError(
                f"max_redeliveries must be >= 0, got "
                f"{self.max_redeliveries}"
            )
        if self.breaker_failure_threshold < 1:
            raise ValueError(
                f"breaker_failure_threshold must be >= 1, got "
                f"{self.breaker_failure_threshold}"
            )
        if self.breaker_cooldown_s <= 0:
            raise ValueError(
                f"breaker_cooldown_s must be positive, got "
                f"{self.breaker_cooldown_s}"
            )
        if self.responded_ledger_limit < 1:
            raise ValueError(
                f"responded_ledger_limit must be >= 1, got "
                f"{self.responded_ledger_limit}"
            )
        if self.dead_letter_limit < 1:
            raise ValueError(
                f"dead_letter_limit must be >= 1, got "
                f"{self.dead_letter_limit}"
            )


# ----------------------------------------------------------------------
# Actions the surrounding I/O layer executes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Respond:
    """Deliver ``response`` to the client that sent ``request``."""

    response: Response
    tenant: str = "default"


@dataclass(frozen=True)
class Dispatch:
    """Send ``message`` to worker ``worker_id``."""

    worker_id: str
    message: Dict[str, object]


@dataclass(frozen=True)
class KillWorker:
    """Forcibly terminate a worker (hang / overdue in-flight work)."""

    worker_id: str
    reason: str


Action = object


@dataclass
class _Pending:
    """Book-keeping for one accepted, not-yet-answered request."""

    request: Request
    submitted_at: float
    deadline: float
    coalesce_key: Optional[str] = None
    batch_key: Optional[str] = None  # compatible-work class for batching
    leader_id: Optional[str] = None  # set on coalesced followers
    attempts: int = 0  # dispatches performed
    redeliveries: int = 0  # crash-caused re-queues
    not_before: float = 0.0  # backoff gate


class ServiceCore:
    """Deterministic request/worker state machine (see module doc)."""

    def __init__(
        self,
        config: Optional[CoreConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or CoreConfig()
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.admission = AdmissionController(
            queue_limit=self.config.queue_limit,
            tenant_rate=self.config.tenant_rate,
            tenant_burst=self.config.tenant_burst,
        )
        self.breakers = BreakerBoard(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        self.retry = self.config.retry
        self.draining = False

        self._pending: Dict[str, _Pending] = {}
        # Deficit-round-robin fair queue across tenants (replaces the
        # old single global FIFO behind the token buckets).
        self._queue = DeficitRoundRobin(quantum=self.config.drr_quantum)
        self._delayed: List[Tuple[float, int, str]] = []  # heap
        self._delayed_seq = 0
        # Worker -> the (possibly batched) request ids it is executing.
        self._inflight: Dict[str, List[str]] = {}
        self._idle: "OrderedDict[str, None]" = OrderedDict()
        self._doomed: set = set()  # killed workers whose exit is pending
        # Exactly-once ledger: request id -> outcome, LRU-bounded at
        # ``responded_ledger_limit`` so a long-lived service does not
        # remember every id forever (clients must retry with fresh
        # ids; see docs/serving.md).  Ids of *pending* requests are
        # never in here, so eviction cannot cause a double response.
        self._responded: "OrderedDict[str, str]" = OrderedDict()
        self.responded_total = 0
        self._leaders: Dict[str, str] = {}  # coalesce key -> leader id
        self._followers: Dict[str, List[str]] = {}  # leader -> followers
        self.dead_letters = deque(maxlen=self.config.dead_letter_limit)
        self.dead_letter_total = 0
        #: Multi-request dispatches performed / requests they carried.
        self.batch_dispatches = 0
        self.batched_requests = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Accepted-but-unstarted requests (queued + in backoff)."""
        return len(self._queue) + len(self._delayed)

    @property
    def inflight_count(self) -> int:
        return sum(len(held) for held in self._inflight.values())

    @property
    def unresolved_count(self) -> int:
        return len(self._pending)

    def is_quiescent(self) -> bool:
        """No accepted work left anywhere (drain can complete)."""
        return not self._pending

    def outcome(self, request_id: str) -> Optional[str]:
        """How ``request_id`` was answered ("ok" or an error code).

        None for never-seen ids and for ids evicted from the bounded
        ledger (older than the last ``responded_ledger_limit``
        responses).
        """
        return self._responded.get(request_id)

    def _record_outcome(self, request_id: str, outcome: str) -> None:
        self._responded[request_id] = outcome
        self.responded_total += 1
        while len(self._responded) > self.config.responded_ledger_limit:
            self._responded.popitem(last=False)

    def snapshot(self, now: float) -> Dict[str, object]:
        """Operational state for the ``stats`` control method."""
        return {
            "queue_depth": self.queue_depth,
            "inflight": self.inflight_count,
            "idle_workers": len(self._idle),
            "draining": self.draining,
            "responded": self.responded_total,
            "responded_ledger": len(self._responded),
            "dead_letters": self.dead_letter_total,
            "admission": self.admission.snapshot(now),
            "breakers": self.breakers.snapshot(now),
            "scheduler": self._queue.snapshot(),
            "batch": {
                "max_batch": self.config.max_batch,
                "linger_s": self.config.batch_linger_s,
                "dispatches": self.batch_dispatches,
                "batched_requests": self.batched_requests,
            },
        }

    # ------------------------------------------------------------------
    # Worker roster
    # ------------------------------------------------------------------
    def register_worker(self, worker_id: str, now: float) -> List[Action]:
        """A (re)spawned worker is ready for dispatch."""
        self._doomed.discard(worker_id)
        self._idle[worker_id] = None
        return self._dispatch_ready(now)

    def worker_exit(
        self, worker_id: str, now: float, reason: str = "crash"
    ) -> List[Action]:
        """A worker died (crash, hang kill, or deliberate kill).

        Every in-flight request it held (one, or a whole batch) is
        re-queued with backoff, up to ``max_redeliveries`` each, after
        which it is answered with ``DEAD_LETTER`` and recorded in
        :attr:`dead_letters`.
        """
        actions: List[Action] = []
        self._idle.pop(worker_id, None)
        was_doomed = worker_id in self._doomed
        self._doomed.discard(worker_id)
        held = [
            rid
            for rid in self._inflight.pop(worker_id, [])
            if rid in self._pending
        ]
        if not held:
            return actions
        if not was_doomed:
            # Unexpected death while holding work: breaker food — one
            # failure per workload class lost, not per batched request
            # (a single death must not trip a breaker N times over).
            for workload_class in dict.fromkeys(
                self._pending[rid].request.workload_class for rid in held
            ):
                self.breakers.breaker(workload_class).record_failure(now)
        for request_id in held:
            pending = self._pending[request_id]
            self.registry.counter("serve.worker.lost_inflight").inc()
            pending.redeliveries += 1
            if pending.redeliveries > self.config.max_redeliveries:
                record = {
                    "request_id": request_id,
                    "method": pending.request.method,
                    "workload_class": pending.request.workload_class,
                    "redeliveries": pending.redeliveries - 1,
                    "last_worker": worker_id,
                    "reason": reason,
                }
                self.dead_letters.append(record)
                self.dead_letter_total += 1
                self.registry.counter("serve.dead_letters").inc()
                actions.extend(
                    self._respond_error(
                        request_id,
                        ErrorCode.DEAD_LETTER,
                        f"request redelivered "
                        f"{pending.redeliveries - 1} time(s) after worker "
                        f"{reason}; giving up",
                        now,
                        detail=record,
                    )
                )
                continue
            self.registry.counter("serve.redeliveries").inc()
            self._schedule_retry(pending, now)
        return actions

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def submit(
        self,
        request: Request,
        now: float,
        coalesce_key: Optional[str] = None,
        batch_key: Optional[str] = None,
    ) -> List[Action]:
        """Accept, coalesce, or fast-reject one request.

        ``batch_key`` marks the request batchable: queued requests with
        equal keys may share one worker dispatch (same workload class,
        geometry and policy — the caller derives the key from the spec
        cache machinery).  ``None`` always dispatches alone.
        """
        self.registry.counter("serve.requests.submitted").inc()
        if request.id in self._pending or request.id in self._responded:
            # A duplicate id would break response correlation; reject
            # the duplicate without touching the original.
            return [
                Respond(
                    Response.failure(
                        request.id,
                        ServeError(
                            ErrorCode.INVALID_REQUEST,
                            f"duplicate request id {request.id!r}",
                        ),
                    ),
                    tenant=request.tenant,
                )
            ]
        if self.draining:
            return self._reject(
                request, ErrorCode.DRAINING, "service is draining", now
            )
        allowed = WORKER_METHODS | (
            DEBUG_METHODS if self.config.enable_debug_methods else frozenset()
        )
        if request.method not in allowed:
            return self._reject(
                request,
                ErrorCode.UNKNOWN_METHOD,
                f"unknown method {request.method!r}",
                now,
            )
        breaker = self.breakers.breaker(request.workload_class)
        if not breaker.allow(now):
            self.registry.counter("serve.breaker.rejected").inc()
            return self._reject(
                request,
                ErrorCode.CIRCUIT_OPEN,
                f"circuit open for {request.workload_class!r}",
                now,
            )
        code = self.admission.admit(
            request.tenant,
            self.queue_depth,
            now,
            idle_workers=len(self._idle),
        )
        if code is not None:
            self.registry.counter("serve.admission.rejected").inc()
            self.registry.counter(
                f"serve.admission.rejected.{code.value.lower()}"
            ).inc()
            return self._reject(
                request, code, f"admission rejected: {code.value}", now
            )

        deadline_s = (
            min(request.deadline_ms / 1000.0, self.config.max_deadline_s)
            if request.deadline_ms is not None
            else self.config.default_deadline_s
        )
        pending = _Pending(
            request=request,
            submitted_at=now,
            deadline=now + deadline_s,
            coalesce_key=coalesce_key,
            batch_key=batch_key,
        )
        self._pending[request.id] = pending

        if coalesce_key is not None:
            leader_id = self._leaders.get(coalesce_key)
            if leader_id is not None and leader_id in self._pending:
                pending.leader_id = leader_id
                self._followers.setdefault(leader_id, []).append(
                    request.id
                )
                self.registry.counter("serve.coalesced").inc()
                return []
            self._leaders[coalesce_key] = request.id

        self._queue.push(request.tenant, request.id)
        self._gauges()
        return self._dispatch_ready(now)

    # ------------------------------------------------------------------
    # Worker messages
    # ------------------------------------------------------------------
    def worker_result(
        self,
        worker_id: str,
        request_id: str,
        payload: Dict[str, object],
        now: float,
    ) -> List[Action]:
        """A worker finished a request (successfully or not).

        ``payload`` is the worker's ``{"ok": bool, ...}`` envelope.
        Results for already-answered requests (deadline fired first,
        worker was being killed) are dropped — exactly-once wins.
        """
        actions: List[Action] = []
        held = self._inflight.get(worker_id)
        if held is not None and request_id in held:
            held.remove(request_id)
            if not held:
                # Last item of the (possibly batched) dispatch done.
                del self._inflight[worker_id]
                if worker_id not in self._doomed:
                    self._idle[worker_id] = None
        pending = self._pending.get(request_id)
        if pending is None:
            self.registry.counter("serve.responses.stale_dropped").inc()
            actions.extend(self._dispatch_ready(now))
            return actions
        breaker = self.breakers.breaker(pending.request.workload_class)
        if payload.get("ok"):
            # Any completed round-trip proves the worker healthy, so
            # the breaker heals even on typed failures below.
            breaker.record_success(now)
            result = payload.get("result")
            actions.extend(
                self._respond_success(
                    request_id,
                    result if isinstance(result, dict) else {},
                    now,
                )
            )
        else:
            breaker.record_success(now)
            try:
                code = ErrorCode(payload.get("code"))
            except ValueError:
                code = ErrorCode.INTERNAL
            message = str(payload.get("message", code.value))
            if (
                self.retry.is_retryable(code)
                and pending.attempts < self.retry.max_attempts
            ):
                self.registry.counter("serve.retries").inc()
                self._schedule_retry(pending, now)
            else:
                actions.extend(
                    self._respond_error(request_id, code, message, now)
                )
        actions.extend(self._dispatch_ready(now))
        return actions

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def tick(self, now: float) -> List[Action]:
        """Advance time: expire deadlines, release backoffs, dispatch."""
        actions: List[Action] = []
        # Backoffs that have matured re-enter the fair queue.
        while self._delayed and self._delayed[0][0] <= now:
            _, _, request_id = heapq.heappop(self._delayed)
            pending = self._pending.get(request_id)
            if pending is not None:
                self._queue.push(pending.request.tenant, request_id)
        # Queued/followed requests past their deadline fail fast.
        for request_id in [
            rid
            for rid, p in self._pending.items()
            if p.deadline <= now and rid not in self._responded
        ]:
            pending = self._pending.get(request_id)
            if pending is None:
                continue
            holder = self._worker_of(request_id)
            if holder is None:
                self.registry.counter("serve.deadline.expired_queued").inc()
                actions.extend(
                    self._respond_error(
                        request_id,
                        ErrorCode.DEADLINE_EXCEEDED,
                        "deadline expired before execution finished",
                        now,
                    )
                )
            elif pending.deadline + self.config.hang_grace_s <= now:
                # In-flight and overdue past the grace window: the
                # worker missed cooperative cancellation — presume it
                # hung, kill it, answer the client now.  Batch-mates
                # that are not overdue stay attributed to the doomed
                # worker and are redelivered when its exit lands.
                held = self._inflight.get(holder)
                if held is not None and request_id in held:
                    held.remove(request_id)
                    if not held:
                        del self._inflight[holder]
                if holder not in self._doomed:
                    self.registry.counter("serve.worker.hang_kills").inc()
                    self.breakers.breaker(
                        pending.request.workload_class
                    ).record_failure(now)
                    self._idle.pop(holder, None)
                    self._doomed.add(holder)
                    actions.append(
                        KillWorker(holder, reason="deadline+grace exceeded")
                    )
                actions.extend(
                    self._respond_error(
                        request_id,
                        ErrorCode.DEADLINE_EXCEEDED,
                        "deadline and hang grace expired in flight; "
                        "worker killed",
                        now,
                    )
                )
        actions.extend(self._dispatch_ready(now))
        return actions

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def begin_drain(self, now: float) -> None:
        """Refuse new requests; accepted work keeps running."""
        self.draining = True
        self.registry.counter("serve.drain.begun").inc()

    def abort_remaining(self, now: float) -> List[Action]:
        """Drain deadline passed: answer everything still unresolved."""
        actions: List[Action] = []
        for worker_id in list(self._inflight):
            if worker_id not in self._doomed:
                self._doomed.add(worker_id)
                actions.append(
                    KillWorker(worker_id, reason="drain deadline")
                )
            del self._inflight[worker_id]
        for request_id in list(self._pending):
            actions.extend(
                self._respond_error(
                    request_id,
                    ErrorCode.DRAINING,
                    "service shut down before the request finished",
                    now,
                )
            )
        self._queue.clear()
        self._delayed.clear()
        self._gauges()
        return actions

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _worker_of(self, request_id: str) -> Optional[str]:
        for worker_id, held in self._inflight.items():
            if request_id in held:
                return worker_id
        return None

    def _reject(
        self, request: Request, code: ErrorCode, message: str, now: float
    ) -> List[Action]:
        """Immediate typed rejection of a never-accepted request."""
        self._record_outcome(request.id, code.value)
        self.registry.counter(
            f"serve.responses.error.{code.value.lower()}"
        ).inc()
        return [
            Respond(
                Response.failure(request.id, ServeError(code, message)),
                tenant=request.tenant,
            )
        ]

    def _schedule_retry(self, pending: _Pending, now: float) -> None:
        delay = self.retry.delay(
            max(1, pending.attempts), key=pending.request.id
        )
        pending.not_before = now + delay
        self._delayed_seq += 1
        heapq.heappush(
            self._delayed,
            (pending.not_before, self._delayed_seq, pending.request.id),
        )
        self._gauges()

    def _assemble_batch(
        self, leader_id: str, pending: _Pending, now: float
    ) -> List[str]:
        """Pull queued peers of ``leader_id`` into one dispatch.

        Peers share the leader's ``batch_key`` and are still within
        deadline; each is charged to its own tenant's deficit by
        :meth:`DeficitRoundRobin.take_matching`, so opportunistic
        batching does not distort fairness.
        """
        batch = [leader_id]
        if self.config.max_batch <= 1 or pending.batch_key is None:
            return batch
        key = pending.batch_key

        def compatible(rid: str) -> bool:
            peer = self._pending.get(rid)
            return (
                peer is not None
                and peer.batch_key == key
                and peer.leader_id is None
                and peer.deadline > now
            )

        taken = self._queue.take_matching(
            compatible, self.config.max_batch - 1
        )
        batch.extend(rid for _, rid in taken)
        return batch

    def _dispatch_ready(self, now: float) -> List[Action]:
        """Pair idle workers with dispatchable queued requests.

        Queued work is served deficit-round-robin across tenants; a
        popped batchable request additionally pulls compatible peers
        (same ``batch_key``) into the same dispatch, up to
        ``max_batch``.  A partial batch younger than ``batch_linger_s``
        is held back to wait for peers — the held requests are pushed
        back (deficit-refunded) after the loop so fairness accounting
        and queue order are preserved.
        """
        actions: List[Action] = []
        # (tenant, request_id) pairs held back to linger this round, in
        # the order they were removed from the queue.
        lingering: List[Tuple[str, str]] = []
        linger_keys: set = set()
        while self._idle and self._queue:
            popped = self._queue.pop()
            if popped is None:
                break
            tenant, request_id = popped
            pending = self._pending.get(request_id)
            if pending is None or request_id in self._responded:
                continue
            if pending.deadline <= now:
                self.registry.counter("serve.deadline.expired_queued").inc()
                actions.extend(
                    self._respond_error(
                        request_id,
                        ErrorCode.DEADLINE_EXCEEDED,
                        "deadline expired while queued",
                        now,
                    )
                )
                continue
            if pending.batch_key is not None and (
                pending.batch_key in linger_keys
            ):
                # This key's batch is already lingering this round;
                # joining it keeps arrival order within the batch.
                lingering.append((tenant, request_id))
                continue
            batch = self._assemble_batch(request_id, pending, now)
            if (
                len(batch) < self.config.max_batch
                and pending.batch_key is not None
                and self.config.batch_linger_s > 0.0
                and not self.draining
                and now - pending.submitted_at < self.config.batch_linger_s
            ):
                # Partial batch, still young: hold it back for peers.
                # The next tick (or submit) retries; once the oldest
                # member has lingered long enough it dispatches as-is.
                linger_keys.add(pending.batch_key)
                lingering.append((tenant, request_id))
                # ``_assemble_batch`` already removed the peers; keep
                # them with the leader so the hold releases together.
                lingering.extend(
                    (self._pending[rid].request.tenant, rid)
                    for rid in batch[1:]
                    if rid in self._pending
                )
                continue
            worker_id, _ = self._idle.popitem(last=False)
            self._inflight[worker_id] = list(batch)
            if len(batch) == 1:
                pending.attempts += 1
                message: Dict[str, object] = {
                    "type": "request",
                    "id": request_id,
                    "method": pending.request.method,
                    "params": dict(pending.request.params),
                    "tenant": pending.request.tenant,
                    "deadline_ts": pending.deadline,
                    "attempt": pending.attempts,
                }
            else:
                items: List[Dict[str, object]] = []
                for rid in batch:
                    peer = self._pending[rid]
                    peer.attempts += 1
                    items.append(
                        {
                            "id": rid,
                            "method": peer.request.method,
                            "params": dict(peer.request.params),
                            "tenant": peer.request.tenant,
                            "deadline_ts": peer.deadline,
                            "attempt": peer.attempts,
                        }
                    )
                message = {"type": "batch", "items": items}
                self.batch_dispatches += 1
                self.batched_requests += len(batch)
                self.registry.counter("serve.batch.dispatches").inc()
            actions.append(Dispatch(worker_id, message))
        # Restore held-back work at the heads of its tenant queues
        # (reverse order re-establishes FIFO within each tenant).
        for tenant, request_id in reversed(lingering):
            self._queue.push_front(tenant, request_id)
        self._gauges()
        return actions

    def _finish(self, request_id: str) -> Optional[_Pending]:
        """Drop all tracking state of a resolved request."""
        pending = self._pending.pop(request_id, None)
        if pending is None:
            return None
        if (
            pending.coalesce_key is not None
            and self._leaders.get(pending.coalesce_key) == request_id
        ):
            del self._leaders[pending.coalesce_key]
        if pending.leader_id is not None:
            siblings = self._followers.get(pending.leader_id)
            if siblings and request_id in siblings:
                siblings.remove(request_id)
        self._queue.remove(request_id)
        return pending

    def _observe_latency(self, pending: _Pending, now: float, ok: bool) -> None:
        self.registry.histogram("serve.latency_ms").observe(
            max(0.0, (now - pending.submitted_at) * 1000.0)
        )
        self.registry.counter(
            "serve.responses.ok" if ok else "serve.responses.error"
        ).inc()

    def _respond_success(
        self, request_id: str, result: Dict[str, object], now: float
    ) -> List[Action]:
        actions: List[Action] = []
        pending = self._finish(request_id)
        if pending is None or request_id in self._responded:
            self.registry.counter("serve.responses.duplicate_suppressed").inc()
            return actions
        self._record_outcome(request_id, "ok")
        self._observe_latency(pending, now, ok=True)
        actions.append(
            Respond(
                Response.success(request_id, result),
                tenant=pending.request.tenant,
            )
        )
        # Followers share the leader's result verbatim (plus a marker).
        for follower_id in self._followers.pop(request_id, []):
            follower = self._finish(follower_id)
            if follower is None or follower_id in self._responded:
                continue
            self._record_outcome(follower_id, "ok")
            self._observe_latency(follower, now, ok=True)
            shared = dict(result)
            shared["coalesced"] = True
            actions.append(
                Respond(
                    Response.success(follower_id, shared),
                    tenant=follower.request.tenant,
                )
            )
        return actions

    def _respond_error(
        self,
        request_id: str,
        code: ErrorCode,
        message: str,
        now: float,
        detail: Optional[Dict[str, object]] = None,
    ) -> List[Action]:
        actions: List[Action] = []
        pending = self._finish(request_id)
        if pending is None or request_id in self._responded:
            self.registry.counter("serve.responses.duplicate_suppressed").inc()
            return actions
        self._record_outcome(request_id, code.value)
        self._observe_latency(pending, now, ok=False)
        self.registry.counter(
            f"serve.responses.error.{code.value.lower()}"
        ).inc()
        actions.append(
            Respond(
                Response.failure(
                    request_id,
                    ServeError(
                        code,
                        message,
                        attempts=max(1, pending.attempts),
                        redeliveries=pending.redeliveries,
                        detail=detail or {},
                    ),
                ),
                tenant=pending.request.tenant,
            )
        )
        # The leader failed terminally: promote the oldest follower to
        # a queued request of its own rather than failing it by proxy
        # (it keeps its own deadline and a fresh attempt budget).
        followers = self._followers.pop(request_id, [])
        promoted = False
        for follower_id in followers:
            follower = self._pending.get(follower_id)
            if follower is None:
                continue
            follower.leader_id = None
            if not promoted:
                promoted = True
                if follower.coalesce_key is not None:
                    self._leaders[follower.coalesce_key] = follower_id
                new_leader = follower_id
                self._queue.push(follower.request.tenant, follower_id)
                self.registry.counter("serve.coalesce.promotions").inc()
            else:
                follower.leader_id = new_leader
                self._followers.setdefault(new_leader, []).append(
                    follower_id
                )
        self._gauges()
        return actions

    def _gauges(self) -> None:
        self.registry.gauge("serve.queue.depth").set(self.queue_depth)
        self.registry.gauge("serve.inflight").set(self.inflight_count)
        self.registry.gauge("serve.workers.idle").set(len(self._idle))
