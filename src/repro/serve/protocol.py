"""Wire protocol of the long-lived simulation service.

The service speaks newline-delimited JSON over a unix socket (or a
localhost TCP port): one request object per line in, one response
object per line out, correlated by a caller-chosen ``id``.  The
protocol is deliberately tiny — the contract that matters is the
*failure* half:

* every accepted request is answered **exactly once**, with either a
  result or a typed error;
* every error carries an :class:`ErrorCode` whose ``retryable`` flag
  tells the client whether resubmitting later can succeed (queue
  pressure, open breaker, crashed worker) or never will (verifier
  findings, simulation faults, malformed requests);
* rejections that protect the service (admission, breaker, drain) are
  *fast* — they are produced without dispatching any work, the
  ``503``-style shed path.

The failure-semantics table (code -> retryable? -> client guidance)
is documented in ``docs/serving.md``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Protocol revision; servers reject requests from newer majors.
PROTOCOL_VERSION = 1

#: Upper bound on one encoded request/response line (guards the reader
#: against unbounded buffering from a misbehaving peer).
MAX_LINE_BYTES = 1 << 20


class ErrorCode(str, enum.Enum):
    """Typed failure classes a response can carry.

    Members are grouped by *who* decided to fail the request:

    * admission/shed (never dispatched): ``QUEUE_FULL``,
      ``RATE_LIMITED``, ``CIRCUIT_OPEN``, ``DRAINING``;
    * caller mistakes: ``INVALID_REQUEST``, ``UNKNOWN_METHOD``,
      ``UNKNOWN_WORKLOAD``;
    * execution outcomes: ``DEADLINE_EXCEEDED``, ``VERIFY_FAILED``,
      ``SIMULATION_FAULT``, ``CACHE_IO``, ``WORKER_CRASH``,
      ``DEAD_LETTER``, ``INTERNAL``.
    """

    # Admission / shed path (request was never dispatched).
    QUEUE_FULL = "QUEUE_FULL"
    RATE_LIMITED = "RATE_LIMITED"
    CIRCUIT_OPEN = "CIRCUIT_OPEN"
    DRAINING = "DRAINING"

    # Caller mistakes.
    INVALID_REQUEST = "INVALID_REQUEST"
    UNKNOWN_METHOD = "UNKNOWN_METHOD"
    UNKNOWN_WORKLOAD = "UNKNOWN_WORKLOAD"

    # Execution outcomes.
    DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"
    VERIFY_FAILED = "VERIFY_FAILED"
    SIMULATION_FAULT = "SIMULATION_FAULT"
    CACHE_IO = "CACHE_IO"
    WORKER_CRASH = "WORKER_CRASH"
    DEAD_LETTER = "DEAD_LETTER"
    INTERNAL = "INTERNAL"


#: Errors the *server* retries internally (bounded, with backoff)
#: before one of them ever reaches a client.
SERVER_RETRYABLE = frozenset({ErrorCode.WORKER_CRASH, ErrorCode.CACHE_IO})

#: Errors a *client* may meaningfully retry later: the condition is
#: transient (load, churn, transient I/O), not a property of the
#: request itself.
CLIENT_RETRYABLE = frozenset(
    {
        ErrorCode.QUEUE_FULL,
        ErrorCode.RATE_LIMITED,
        ErrorCode.CIRCUIT_OPEN,
        ErrorCode.DRAINING,
        ErrorCode.CACHE_IO,
        ErrorCode.WORKER_CRASH,
        ErrorCode.DEAD_LETTER,
    }
)

#: ErrorCode -> HTTP status, used by the REST adapter
#: (:mod:`repro.serve.http`).  Shed-path rejections map to the classic
#: load-shedding statuses so off-the-shelf HTTP clients can apply their
#: stock retry policies: 429 Too Many Requests, 503 Service
#: Unavailable, 504 Gateway Timeout.
HTTP_STATUS: Dict[ErrorCode, int] = {
    ErrorCode.QUEUE_FULL: 503,
    ErrorCode.RATE_LIMITED: 429,
    ErrorCode.CIRCUIT_OPEN: 503,
    ErrorCode.DRAINING: 503,
    ErrorCode.INVALID_REQUEST: 400,
    ErrorCode.UNKNOWN_METHOD: 404,
    ErrorCode.UNKNOWN_WORKLOAD: 404,
    ErrorCode.DEADLINE_EXCEEDED: 504,
    ErrorCode.VERIFY_FAILED: 422,
    ErrorCode.SIMULATION_FAULT: 422,
    ErrorCode.CACHE_IO: 502,
    ErrorCode.WORKER_CRASH: 502,
    ErrorCode.DEAD_LETTER: 502,
    ErrorCode.INTERNAL: 500,
}


def http_status(code: ErrorCode) -> int:
    """HTTP status for one typed failure code (500 for unmapped)."""
    return HTTP_STATUS.get(code, 500)


#: Methods executed on pool workers (everything else is answered by the
#: server process directly).
WORKER_METHODS = frozenset({"run", "compile"})

#: Server-answered control methods.
CONTROL_METHODS = frozenset({"ping", "stats", "drain"})

#: Debug/chaos methods, only honoured when the server was started with
#: debug methods enabled (``serve --chaos``); used by the chaos bench
#: to crash workers and inject slow requests through the normal queue.
DEBUG_METHODS = frozenset({"x-crash", "x-sleep", "x-fault"})


class ProtocolError(ValueError):
    """A request that cannot be accepted; carries its rejection code."""

    def __init__(self, code: ErrorCode, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class Request:
    """One parsed request line."""

    id: str
    method: str
    params: Dict[str, object] = field(default_factory=dict)
    tenant: str = "default"
    deadline_ms: Optional[float] = None

    @property
    def workload_class(self) -> str:
        """Circuit-breaker class: method plus the workload it names."""
        workload = self.params.get("workload")
        if isinstance(workload, str) and workload:
            return f"{self.method}:{workload}"
        return self.method

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "v": PROTOCOL_VERSION,
            "id": self.id,
            "method": self.method,
            "params": dict(self.params),
            "tenant": self.tenant,
        }
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        return out


@dataclass(frozen=True)
class ServeError:
    """The typed error half of a response."""

    code: ErrorCode
    message: str
    attempts: int = 1
    redeliveries: int = 0
    detail: Dict[str, object] = field(default_factory=dict)

    @property
    def retryable(self) -> bool:
        return self.code in CLIENT_RETRYABLE

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "code": self.code.value,
            "message": self.message,
            "retryable": self.retryable,
            "attempts": self.attempts,
            "redeliveries": self.redeliveries,
        }
        if self.detail:
            out["detail"] = dict(self.detail)
        return out


@dataclass(frozen=True)
class Response:
    """One response line: a result or a typed error, never both."""

    id: str
    ok: bool
    result: Optional[Dict[str, object]] = None
    error: Optional[ServeError] = None

    @staticmethod
    def success(request_id: str, result: Dict[str, object]) -> "Response":
        return Response(id=request_id, ok=True, result=result)

    @staticmethod
    def failure(request_id: str, error: ServeError) -> "Response":
        return Response(id=request_id, ok=False, error=error)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"v": PROTOCOL_VERSION, "id": self.id, "ok": self.ok}
        if self.ok:
            out["result"] = self.result if self.result is not None else {}
        else:
            if self.error is None:
                raise ValueError("failure response without an error")
            out["error"] = self.error.to_dict()
        return out


# ----------------------------------------------------------------------
# Encoding / decoding
# ----------------------------------------------------------------------
def encode_message(payload: Dict[str, object]) -> bytes:
    """One JSON object, newline-terminated (the only framing)."""
    return json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, object]:
    """Parse one received line into a dict.

    Raises:
        ProtocolError: on oversized, undecodable or non-object lines.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"line exceeds {MAX_LINE_BYTES} bytes",
        )
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, f"undecodable request line: {exc}"
        )
    if not isinstance(obj, dict):
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, "request line is not a JSON object"
        )
    return obj


def parse_request(obj: Dict[str, object]) -> Request:
    """Validate a decoded request object.

    Raises:
        ProtocolError: with ``INVALID_REQUEST``/``UNKNOWN_METHOD`` on
            malformed input (the request id, when present and a string,
            is preserved so the rejection can still be correlated).
    """
    version = obj.get("v", PROTOCOL_VERSION)
    if not isinstance(version, int) or version > PROTOCOL_VERSION:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST,
            f"unsupported protocol version {version!r}",
        )
    request_id = obj.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, "request needs a non-empty string id"
        )
    method = obj.get("method")
    if not isinstance(method, str) or not method:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, "request needs a method"
        )
    params = obj.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, "params must be an object"
        )
    tenant = obj.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, "tenant must be a non-empty string"
        )
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
            raise ProtocolError(
                ErrorCode.INVALID_REQUEST,
                f"deadline_ms must be a positive number, got {deadline_ms!r}",
            )
        deadline_ms = float(deadline_ms)
    return Request(
        id=request_id,
        method=method,
        params=params,
        tenant=tenant,
        deadline_ms=deadline_ms,
    )


def parse_response(obj: Dict[str, object]) -> Response:
    """Client-side: validate a decoded response object."""
    request_id = obj.get("id")
    if not isinstance(request_id, str):
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, "response is missing its id"
        )
    if obj.get("ok"):
        result = obj.get("result")
        return Response.success(
            request_id, result if isinstance(result, dict) else {}
        )
    error = obj.get("error")
    if not isinstance(error, dict):
        raise ProtocolError(
            ErrorCode.INVALID_REQUEST, "failed response is missing error"
        )
    try:
        code = ErrorCode(error.get("code"))
    except ValueError:
        code = ErrorCode.INTERNAL
    detail = error.get("detail")
    return Response.failure(
        request_id,
        ServeError(
            code=code,
            message=str(error.get("message", "")),
            attempts=int(error.get("attempts", 1) or 1),
            redeliveries=int(error.get("redeliveries", 0) or 0),
            detail=detail if isinstance(detail, dict) else {},
        ),
    )
