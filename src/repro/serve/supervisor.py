"""Supervised multiprocess worker pool and the worker-side executor.

The pool owns real OS processes; the :class:`~repro.serve.core.ServiceCore`
only ever sees their lifecycle as events.  Supervision contract:

* every worker sends **heartbeats** on its pipe; a worker whose
  heartbeat goes stale is presumed wedged, killed, and replaced;
* a worker that **dies** (crash, kill, OOM) is detected via
  ``Process.is_alive``/pipe EOF, reported as an ``exit`` event (the
  core re-queues its in-flight request), and immediately **respawned**;
* workers are interchangeable — no request state lives in them beyond
  the single message they are currently executing.

Worker-side execution is *cooperatively cancellable*: every request
carries an absolute ``deadline_ts``, and the executor checks it at
phase boundaries (before lookup, after task build, after compile, and
inside sleep loops), returning a typed ``DEADLINE_EXCEEDED`` instead of
burning time past the deadline.  Failures map to the typed
:class:`~repro.serve.protocol.ErrorCode` set: verifier findings and
:class:`~repro.sim.errors.SimulationFault` are deterministic
(non-retryable), cache I/O errors are transient (server-retryable).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.serve.protocol import ErrorCode

#: Environment override for the multiprocessing start method
#: ("spawn" is the safe default alongside an asyncio loop).
MP_CONTEXT_ENV = "REPRO_SERVE_MP_CONTEXT"


@dataclass(frozen=True)
class WorkerOptions:
    """Per-worker execution settings (picklable; crosses the spawn)."""

    heartbeat_interval_s: float = 0.2
    cache_dir: Optional[str] = None
    enable_debug_methods: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "cache_dir": self.cache_dir,
            "enable_debug_methods": self.enable_debug_methods,
        }


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _DeadlineExpired(Exception):
    """Raised at a cooperative cancellation point past the deadline."""


def _check_deadline(deadline_ts: Optional[float]) -> None:
    if deadline_ts is not None and time.time() >= deadline_ts:
        raise _DeadlineExpired()


class WorkloadLookupError(KeyError):
    """An unknown workload / platform name in request params."""


def _find_spec(name: str, scale: float):
    from repro.workloads import find_workload

    try:
        return find_workload(name, scale=scale)
    except KeyError as exc:
        raise WorkloadLookupError(str(exc))


def _do_run(params: Dict[str, object], deadline_ts: Optional[float]):
    """Analytic platform run; the serving twin of ``repro-streampim run``."""
    from repro.baselines import default_platforms

    workload = str(params.get("workload", ""))
    platform_name = str(params.get("platform", "StPIM"))
    scale = float(params.get("scale", 1.0))
    spec = _find_spec(workload, scale)
    platforms = default_platforms()
    if platform_name not in platforms:
        raise WorkloadLookupError(
            f"unknown platform {platform_name!r}; choose from "
            f"{sorted(platforms)}"
        )
    _check_deadline(deadline_ts)
    stats = platforms[platform_name].run(spec)
    _check_deadline(deadline_ts)
    return {
        "workload": spec.name,
        "platform": stats.platform,
        "scale": scale,
        "time_ns": stats.time_ns,
        "energy_pj": stats.energy.total_pj,
        "time_fractions": stats.time_breakdown.fractions(),
        "energy_fractions": stats.energy.fractions(),
        "counters": dict(stats.counters),
    }


def _do_compile(
    params: Dict[str, object],
    deadline_ts: Optional[float],
    options: Dict[str, object],
):
    """Cached trace compilation with crash-safe in-flight tracking."""
    from repro.core.compile import compile_workload
    from repro.isa.trace_cache import InflightTracker, TraceCache

    workload = str(params.get("workload", ""))
    scale = float(params.get("scale", 0.01))
    seed = int(params.get("seed", 7))
    deep = bool(params.get("deep", False))
    use_cache = not bool(params.get("no_cache", False))
    spec = _find_spec(workload, scale)
    if spec.build is None:
        raise WorkloadLookupError(
            f"workload {workload!r} has no task builder"
        )
    _check_deadline(deadline_ts)
    cache_dir = options.get("cache_dir")
    cache = TraceCache(cache_dir) if use_cache else None
    tracker = (
        InflightTracker(cache.cache_dir) if cache is not None else None
    )
    compiled = compile_workload(
        spec,
        seed=seed,
        cache=cache,
        use_cache=use_cache,
        deep_verify=deep,
        inflight=tracker,
    )
    _check_deadline(deadline_ts)
    if deep and compiled.deep_report is not None:
        if not compiled.deep_report.ok():
            findings = [
                f"{d.rule_id}: {d.message}"
                for d in compiled.deep_report.diagnostics[:8]
            ]
            return {
                "__error__": {
                    "code": ErrorCode.VERIFY_FAILED.value,
                    "message": "deep dataflow verification failed",
                    "detail": {"findings": findings},
                }
            }
    payload = compiled.trace.to_bytes()
    return {
        "workload": spec.name,
        "scale": scale,
        "seed": seed,
        "pim_vpcs": int(compiled.trace.stats.pim_vpcs),
        "move_vpcs": int(compiled.trace.stats.move_vpcs),
        "commands": len(compiled.trace),
        "cache_key": compiled.cache_key,
        "cache_hit": compiled.cache_hit,
        "trace_sha256": hashlib.sha256(payload).hexdigest(),
    }


def _do_debug(
    method: str,
    params: Dict[str, object],
    deadline_ts: Optional[float],
):
    """Chaos-bench helpers: crash, slow request, injected fault."""
    from repro.sim.errors import SimulationFault

    if method == "x-crash":
        # A real crash, not an exception: the supervisor must detect
        # the death and the core must redeliver the in-flight work.
        os._exit(17)
    if method == "x-sleep":
        duration = float(params.get("ms", 100.0)) / 1000.0
        end = time.time() + duration
        while time.time() < end:
            _check_deadline(deadline_ts)
            time.sleep(min(0.025, max(0.0, end - time.time())))
        return {"slept_ms": duration * 1000.0}
    if method == "x-fault":
        raise SimulationFault("injected chaos fault", index=0)
    raise WorkloadLookupError(f"unknown debug method {method!r}")


def execute_request(
    method: str,
    params: Dict[str, object],
    deadline_ts: Optional[float],
    options: Dict[str, object],
) -> Dict[str, object]:
    """Execute one request; always returns a ``{"ok": ...}`` envelope.

    Every failure is mapped to a typed code here, in the worker, so the
    core never has to guess what an exception string meant.
    """
    from repro.sim.errors import SimulationFault

    try:
        _check_deadline(deadline_ts)
        if method == "run":
            result = _do_run(params, deadline_ts)
        elif method == "compile":
            result = _do_compile(params, deadline_ts, options)
        elif method in ("x-crash", "x-sleep", "x-fault"):
            if not options.get("enable_debug_methods"):
                return {
                    "ok": False,
                    "code": ErrorCode.UNKNOWN_METHOD.value,
                    "message": f"debug method {method!r} is disabled",
                }
            result = _do_debug(method, params, deadline_ts)
        else:
            return {
                "ok": False,
                "code": ErrorCode.UNKNOWN_METHOD.value,
                "message": f"unknown method {method!r}",
            }
        if isinstance(result, dict) and "__error__" in result:
            error = result["__error__"]
            return {
                "ok": False,
                "code": error["code"],
                "message": error["message"],
                "detail": error.get("detail", {}),
            }
        return {"ok": True, "result": result}
    except _DeadlineExpired:
        return {
            "ok": False,
            "code": ErrorCode.DEADLINE_EXCEEDED.value,
            "message": "deadline passed; execution cancelled "
            "cooperatively",
        }
    except WorkloadLookupError as exc:
        return {
            "ok": False,
            "code": ErrorCode.UNKNOWN_WORKLOAD.value,
            "message": str(exc).strip("'\""),
        }
    except SimulationFault as exc:
        return {
            "ok": False,
            "code": ErrorCode.SIMULATION_FAULT.value,
            "message": str(exc),
        }
    except OSError as exc:
        # Transient cache / filesystem trouble: the server retries
        # this with backoff before a client ever sees it.
        return {
            "ok": False,
            "code": ErrorCode.CACHE_IO.value,
            "message": f"cache I/O failed: {exc}",
        }
    except Exception as exc:  # pragma: no cover - defensive catch-all
        return {
            "ok": False,
            "code": ErrorCode.INTERNAL.value,
            "message": f"{type(exc).__name__}: {exc}",
            "detail": {
                "traceback": traceback.format_exc(limit=4),
            },
        }


def _worker_main(
    worker_id: str, conn, options: Dict[str, object]
) -> None:  # pragma: no cover - runs in a child process
    """Worker loop: recv request, execute, send result, heartbeat."""
    stop = threading.Event()
    send_lock = threading.Lock()

    def send(message: Dict[str, object]) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):
                os._exit(1)

    def heartbeat() -> None:
        interval = float(options.get("heartbeat_interval_s", 0.2))
        while not stop.wait(interval):
            send({"type": "hb", "worker": worker_id})

    threading.Thread(target=heartbeat, daemon=True).start()
    send({"type": "hb", "worker": worker_id})
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if not isinstance(message, dict):
            continue
        if message.get("type") == "stop":
            break
        if message.get("type") == "batch":
            # A batched dispatch: execute the items back to back on the
            # warm process and demultiplex one result message per item,
            # so every client still receives its own typed envelope.
            # Results stream out as they finish — an early item's
            # client is answered before the last item even starts.
            for item in message.get("items") or []:
                if not isinstance(item, dict):
                    continue
                payload = execute_request(
                    str(item.get("method", "")),
                    item.get("params") or {},
                    item.get("deadline_ts"),
                    options,
                )
                send(
                    {
                        "type": "result",
                        "id": item.get("id"),
                        "payload": payload,
                    }
                )
            continue
        if message.get("type") != "request":
            continue
        payload = execute_request(
            str(message.get("method", "")),
            message.get("params") or {},
            message.get("deadline_ts"),
            options,
        )
        send(
            {
                "type": "result",
                "id": message.get("id"),
                "payload": payload,
            }
        )
    stop.set()


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------
@dataclass
class WorkerHandle:
    """One supervised worker process.

    ``process.start()`` runs on a short-lived thread (a spawn-context
    start is a fork+exec plus a module re-import in the child — easily
    100ms+, far too long to block the asyncio tick loop).  Until
    ``start_done`` is set the handle is exempt from liveness and
    heartbeat checks; dispatched messages simply buffer in the pipe.
    """

    worker_id: str
    process: multiprocessing.process.BaseProcess
    conn: object
    spawned_at: float
    last_heartbeat: float
    generation: int
    start_done: threading.Event = field(default_factory=threading.Event)
    start_error: Optional[BaseException] = None
    #: Set by poll() on the first look after start completes (resets
    #: the heartbeat clock so startup time is not counted as silence).
    running: bool = False
    #: A kill arrived while start() was still in flight; poll() and
    #: the graveyard re-issue it once the process exists.
    kill_requested: bool = False


#: Pool events: ("ready", worker_id) / ("exit", worker_id, reason) /
#: ("result", worker_id, request_id, payload).
PoolEvent = Tuple


@dataclass
class WorkerPool:
    """Spawns, monitors, kills and replaces worker processes.

    Consumers call :meth:`poll` periodically; it drains worker pipes
    and turns process lifecycle into events for the service core.  The
    pool always restores itself to ``size`` live workers.
    """

    size: int = 2
    options: WorkerOptions = field(default_factory=WorkerOptions)
    heartbeat_timeout_s: float = 5.0
    context: Optional[str] = None

    workers: Dict[str, WorkerHandle] = field(default_factory=dict)
    restarts: int = 0
    _spawned: int = 0
    _ctx: object = None
    #: Replaced workers awaiting a non-blocking reap (join(0) per poll).
    _graveyard: List[WorkerHandle] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"pool size must be >= 1, got {self.size}")
        method = self.context or os.environ.get(MP_CONTEXT_ENV) or "spawn"
        self._ctx = multiprocessing.get_context(method)

    # ------------------------------------------------------------------
    def start(self, now: float) -> List[str]:
        """Spawn the initial roster; returns the worker ids."""
        ids = []
        for _ in range(self.size):
            ids.append(self._spawn(now).worker_id)
        return ids

    def _spawn(self, now: float) -> WorkerHandle:
        self._spawned += 1
        worker_id = f"w{self._spawned}"
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, child_conn, self.options.to_dict()),
            name=f"repro-serve-{worker_id}",
            daemon=True,
        )
        handle = WorkerHandle(
            worker_id=worker_id,
            process=process,
            conn=parent_conn,
            spawned_at=now,
            last_heartbeat=now,
            generation=self._spawned,
        )

        def _start() -> None:
            # The child's copy of the pipe end must stay open in this
            # process until start() has duplicated it.
            try:
                process.start()
            except BaseException as exc:
                handle.start_error = exc
            finally:
                try:
                    child_conn.close()
                except OSError:  # pragma: no cover
                    pass
                handle.start_done.set()

        threading.Thread(
            target=_start, daemon=True, name=f"spawn-{worker_id}"
        ).start()
        self.workers[worker_id] = handle
        return handle

    # ------------------------------------------------------------------
    def dispatch(self, worker_id: str, message: Dict[str, object]) -> bool:
        """Send one request message; False if the worker is unreachable."""
        handle = self.workers.get(worker_id)
        if handle is None:
            return False
        try:
            handle.conn.send(message)
            return True
        except (BrokenPipeError, OSError):
            return False

    def kill(self, worker_id: str) -> None:
        """Forcibly terminate a worker (poll() reports the exit)."""
        handle = self.workers.get(worker_id)
        if handle is None:
            return
        handle.kill_requested = True
        if not handle.start_done.is_set():
            return  # re-issued by poll()/reap once start() returns
        try:
            handle.process.kill()
        except (OSError, AttributeError):  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    def poll(self, now: float) -> List[PoolEvent]:
        """Drain pipes and process-lifecycle changes into events."""
        events: List[PoolEvent] = []
        self._reap_graveyard()
        for worker_id, handle in list(self.workers.items()):
            if not handle.start_done.is_set():
                # Still forking on the spawn thread: no pid to check,
                # no heartbeat expected yet.
                continue
            if handle.start_error is not None:
                events.extend(self._replace(worker_id, now, "spawn"))
                continue
            if not handle.running:
                handle.running = True
                handle.last_heartbeat = now
            if handle.kill_requested:
                # A kill raced the spawn thread; land it now that the
                # process exists (is_alive below reports the exit).
                try:
                    handle.process.kill()
                except (OSError, AttributeError):  # pragma: no cover
                    pass
            broken = False
            try:
                while handle.conn.poll(0):
                    message = handle.conn.recv()
                    if not isinstance(message, dict):
                        continue
                    handle.last_heartbeat = now
                    if message.get("type") == "result":
                        events.append(
                            (
                                "result",
                                worker_id,
                                str(message.get("id")),
                                message.get("payload") or {},
                            )
                        )
            except (EOFError, OSError):
                broken = True
            except Exception:
                # A worker SIGKILLed mid-send leaves a torn pickle on
                # the pipe (UnpicklingError and friends from recv()):
                # the channel is unusable, treat it as a crash.
                broken = True
            if broken or not handle.process.is_alive():
                events.extend(self._replace(worker_id, now, "crash"))
                continue
            if now - handle.last_heartbeat > self.heartbeat_timeout_s:
                # Wedged: alive but silent.  Kill and replace; the
                # graveyard reaps the corpse on later polls.
                self.kill(worker_id)
                events.extend(self._replace(worker_id, now, "heartbeat"))
        return events

    def _replace(
        self, worker_id: str, now: float, reason: str
    ) -> List[PoolEvent]:
        handle = self.workers.pop(worker_id, None)
        if handle is None:
            return []
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass
        self._graveyard.append(handle)
        self.restarts += 1
        replacement = self._spawn(now)
        return [
            ("exit", worker_id, reason),
            ("ready", replacement.worker_id),
        ]

    def _reap_graveyard(self) -> None:
        """join(0) replaced workers; never blocks the event loop."""
        survivors: List[WorkerHandle] = []
        for handle in self._graveyard:
            if not handle.start_done.is_set():
                survivors.append(handle)  # cannot join mid-start
                continue
            if handle.start_error is not None:
                continue  # never became a process; nothing to reap
            handle.process.join(timeout=0)
            if handle.process.is_alive():
                if handle.kill_requested:
                    try:
                        handle.process.kill()
                    except (OSError, AttributeError):  # pragma: no cover
                        pass
                survivors.append(handle)
        self._graveyard = survivors

    # ------------------------------------------------------------------
    def shutdown(self, timeout_s: float = 2.0) -> None:
        """Stop every worker: polite message, then the hammer."""
        for handle in self.workers.values():
            try:
                handle.conn.send({"type": "stop"})
            except (BrokenPipeError, OSError):
                pass
        deadline = time.time() + timeout_s
        for handle in self.workers.values():
            handle.start_done.wait(
                timeout=max(0.0, deadline - time.time())
            )
            if handle.start_done.is_set() and handle.start_error is None:
                handle.process.join(
                    timeout=max(0.0, deadline - time.time())
                )
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self.workers.clear()
        for handle in self._graveyard:
            if handle.start_done.is_set() and handle.start_error is None:
                if handle.process.is_alive():
                    handle.process.kill()
                handle.process.join(timeout=1.0)
        self._graveyard.clear()

    def snapshot(self, now: float) -> Dict[str, object]:
        return {
            "size": self.size,
            "restarts": self.restarts,
            "workers": {
                worker_id: {
                    "pid": (
                        handle.process.pid
                        if handle.start_done.is_set()
                        else None
                    ),
                    "alive": (
                        handle.start_done.is_set()
                        and handle.start_error is None
                        and handle.process.is_alive()
                    ),
                    "starting": not handle.start_done.is_set(),
                    "heartbeat_age_s": round(
                        max(0.0, now - handle.last_heartbeat), 3
                    ),
                }
                for worker_id, handle in sorted(self.workers.items())
            },
        }
