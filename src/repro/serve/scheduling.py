"""Deficit-round-robin fair queuing across tenants.

The serving core used to hold one global FIFO behind the per-tenant
token buckets.  Buckets bound each tenant's *admission rate*, but once
admitted a burst from one tenant still sat in front of everyone else's
requests — a 10:1 offered-load mix was served 10:1, adding the heavy
tenant's queueing delay to the light tenant's latency.

:class:`DeficitRoundRobin` replaces the FIFO with one sub-queue per
tenant, visited in round-robin order.  Each visit grants the tenant
``quantum`` deficit; a request costs one unit, so with the default
quantum every backlogged tenant is served one request per round
regardless of how deep its backlog is.  While N tenants are backlogged
each receives ~1/N of the service — Jain-fair — and a tenant alone in
the system still gets full throughput.

Like everything the service core touches, this is a pure data
structure: no clock, no I/O, no randomness.  Items are opaque strings
(request ids) that must be unique across tenants.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple


class DeficitRoundRobin:
    """Per-tenant FIFOs served deficit-round-robin.

    Attributes:
        quantum: deficit granted per round-robin visit.  One request
            costs one unit, so ``quantum=1`` serves each backlogged
            tenant one request per round; larger quanta trade fairness
            granularity for fewer tenant switches.
    """

    def __init__(self, quantum: float = 1.0) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.quantum = quantum
        # Round order == insertion order of *active* tenants; a tenant
        # is active iff its queue is non-empty.
        self._queues: "OrderedDict[str, Deque[str]]" = OrderedDict()
        self._deficits: Dict[str, float] = {}
        self._tenant_of: Dict[str, str] = {}
        self._total = 0
        #: Tenant that already received its quantum for the current
        #: front-of-round visit (grants are once per visit, not once
        #: per pop, so a deep backlog cannot re-grant itself).
        self._granted_front: Optional[str] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._total

    def __bool__(self) -> bool:
        return self._total > 0

    def __contains__(self, item: str) -> bool:
        return item in self._tenant_of

    def tenants(self) -> List[str]:
        """Active tenants in the current round order."""
        return list(self._queues)

    def depth(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        return len(queue) if queue is not None else 0

    def items(self) -> Iterator[str]:
        """Every queued item, tenant by tenant in round order."""
        for queue in self._queues.values():
            yield from queue

    # ------------------------------------------------------------------
    def push(self, tenant: str, item: str) -> None:
        """Enqueue ``item`` at the tail of ``tenant``'s sub-queue."""
        if item in self._tenant_of:
            raise ValueError(f"item {item!r} is already queued")
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._deficits[tenant] = 0.0
        queue.append(item)
        self._tenant_of[item] = tenant
        self._total += 1

    def push_front(self, tenant: str, item: str) -> None:
        """Re-enqueue ``item`` at the *head* of ``tenant``'s sub-queue.

        Used for requests that were popped but then held back (e.g. a
        lingering batch); the pop's deficit charge is refunded so the
        round-trip is accounting-neutral.
        """
        if item in self._tenant_of:
            raise ValueError(f"item {item!r} is already queued")
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
            self._deficits[tenant] = 0.0
        queue.appendleft(item)
        self._deficits[tenant] = self._deficits.get(tenant, 0.0) + 1.0
        self._tenant_of[item] = tenant
        self._total += 1

    # ------------------------------------------------------------------
    def pop(self) -> Optional[Tuple[str, str]]:
        """Serve the next ``(tenant, item)`` pair, DRR order.

        The front tenant of the round order is granted one quantum on
        arrival at the front and served while its deficit covers a
        request; once it cannot afford the next one it rotates to the
        back (keeping any residual deficit) and the next tenant's visit
        begins.
        """
        if self._total == 0:
            return None
        while True:
            tenant, queue = next(iter(self._queues.items()))
            if self._granted_front != tenant:
                self._deficits[tenant] += self.quantum
                self._granted_front = tenant
            if self._deficits[tenant] >= 1.0:
                item = queue.popleft()
                self._deficits[tenant] -= 1.0
                del self._tenant_of[item]
                self._total -= 1
                if not queue:
                    del self._queues[tenant]
                    del self._deficits[tenant]
                    self._granted_front = None
                return tenant, item
            # Deficit spent: rotate to the back of the round; the next
            # tenant receives its grant when the loop visits it.
            self._queues.move_to_end(tenant)
            self._granted_front = None

    def remove(self, item: str) -> bool:
        """Drop ``item`` wherever it is queued; False if absent."""
        tenant = self._tenant_of.pop(item, None)
        if tenant is None:
            return False
        queue = self._queues[tenant]
        queue.remove(item)
        self._total -= 1
        if not queue:
            del self._queues[tenant]
            del self._deficits[tenant]
            if self._granted_front == tenant:
                self._granted_front = None
        return True

    def take_matching(
        self, predicate: Callable[[str], bool], limit: int
    ) -> List[Tuple[str, str]]:
        """Remove and return up to ``limit`` queued items matching
        ``predicate``, as ``(tenant, item)`` pairs in round order.

        Used by the batch planner to pull compatible requests into one
        dispatch.  Each taken item is charged to its own tenant's
        deficit (which may go negative — the tenant *was* served), so
        opportunistic batching does not distort round-robin fairness.
        """
        taken: List[Tuple[str, str]] = []
        if limit <= 0:
            return taken
        for tenant in list(self._queues):
            queue = self._queues[tenant]
            matched = [item for item in queue if predicate(item)]
            for item in matched:
                if len(taken) >= limit:
                    break
                queue.remove(item)
                del self._tenant_of[item]
                self._total -= 1
                self._deficits[tenant] -= 1.0
                taken.append((tenant, item))
            if not queue:
                del self._queues[tenant]
                del self._deficits[tenant]
                if self._granted_front == tenant:
                    self._granted_front = None
            if len(taken) >= limit:
                break
        return taken

    def clear(self) -> None:
        self._queues.clear()
        self._deficits.clear()
        self._tenant_of.clear()
        self._total = 0
        self._granted_front = None

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Per-tenant queue depths for the ``stats`` endpoint."""
        return {
            "quantum": self.quantum,
            "depth": self._total,
            "tenants": {
                tenant: len(queue)
                for tenant, queue in sorted(self._queues.items())
            },
        }
