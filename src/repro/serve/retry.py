"""Retry backoff and circuit-breaker state machines.

Both are *pure* state machines: every transition takes the caller's
clock (``now``, seconds as a float) as an argument and nothing here
reads wall time, sleeps, or draws from a global RNG.  That keeps the
service core deterministic and lets property tests drive arbitrary
interleavings with a virtual clock.

Backoff jitter is derived from a hash of ``(key, attempt)`` rather than
a random source, so a given request's retry schedule is reproducible
across runs and across supervisor restarts while still de-correlating
different requests.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict

from repro.serve.protocol import SERVER_RETRYABLE, ErrorCode


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Attributes:
        max_attempts: total tries (first dispatch included); attempt
            numbers are 1-based.
        base_delay_s: backoff before the second attempt.
        multiplier: geometric growth factor per further attempt.
        max_delay_s: backoff cap.
        jitter: fraction of the computed delay replaced by hash-derived
            jitter in ``[0, jitter]`` (0 disables, 1 full-jitter).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def is_retryable(self, code: ErrorCode) -> bool:
        """Server-side retryability of one failure code."""
        return code in SERVER_RETRYABLE

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before attempt ``attempt + 1`` (after failure
        number ``attempt``), deterministic in ``(key, attempt)``."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        raw = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        digest = hashlib.sha256(
            f"{key}:{attempt}".encode("utf-8")
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        # Decorrelated-but-deterministic: keep (1 - jitter) of the raw
        # delay, fill the rest with the hash-derived fraction.
        return raw * (1.0 - self.jitter) + raw * self.jitter * unit


class BreakerState(str, enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass
class CircuitBreaker:
    """Per-workload-class breaker: trip after repeated worker-killing
    failures, half-open on a timer, close again on a successful probe.

    Only *worker-killing* failures (crashes, hang kills) count toward
    the trip threshold — deterministic rejections such as verifier
    findings fail fast anyway and say nothing about service health.
    """

    failure_threshold: int = 3
    cooldown_s: float = 5.0
    half_open_probes: int = 1

    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    probes_in_flight: int = 0
    #: Successful probes recorded during the current HALF_OPEN episode
    #: (the breaker closes only when all ``half_open_probes`` succeed).
    probe_successes: int = 0
    #: Cumulative number of CLOSED/HALF_OPEN -> OPEN transitions.
    trips: int = 0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got "
                f"{self.failure_threshold}"
            )
        if self.cooldown_s < 0:
            raise ValueError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}"
            )
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got "
                f"{self.half_open_probes}"
            )

    # ------------------------------------------------------------------
    def _maybe_half_open(self, now: float) -> None:
        if (
            self.state is BreakerState.OPEN
            and now - self.opened_at >= self.cooldown_s
        ):
            self.state = BreakerState.HALF_OPEN
            self.probes_in_flight = 0
            self.probe_successes = 0

    def allow(self, now: float) -> bool:
        """May a request of this class be dispatched at ``now``?

        In HALF_OPEN, up to ``half_open_probes`` requests are let
        through as probes; their outcomes decide the next state.
        """
        self._maybe_half_open(now)
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.HALF_OPEN:
            if self.probes_in_flight < self.half_open_probes:
                self.probes_in_flight += 1
                return True
            return False
        return False

    def record_success(self, now: float) -> None:
        """A request of this class completed a healthy round trip.

        Closing is only legal from HALF_OPEN, and only once all
        ``half_open_probes`` of the episode have succeeded.  A slow
        success arriving while the breaker is OPEN belongs to a request
        dispatched *before* the trip — it says nothing about recovery,
        so the cooldown stands (it used to close the breaker and bypass
        the cooldown entirely).
        """
        self._maybe_half_open(now)
        if self.state is BreakerState.HALF_OPEN:
            self.probe_successes += 1
            if self.probe_successes >= self.half_open_probes:
                self.state = BreakerState.CLOSED
                self.consecutive_failures = 0
                self.probes_in_flight = 0
                self.probe_successes = 0
        elif self.state is BreakerState.CLOSED:
            self.consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        self._maybe_half_open(now)
        if self.state is BreakerState.HALF_OPEN:
            # A failed probe re-opens immediately.
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.probes_in_flight = 0
            self.probe_successes = 0
            self.trips += 1
            return
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.trips += 1

    def current_state(self, now: float) -> BreakerState:
        self._maybe_half_open(now)
        return self.state


@dataclass
class BreakerBoard:
    """Lazy map of workload class -> :class:`CircuitBreaker`."""

    failure_threshold: int = 3
    cooldown_s: float = 5.0
    half_open_probes: int = 1
    breakers: Dict[str, CircuitBreaker] = field(default_factory=dict)

    def breaker(self, workload_class: str) -> CircuitBreaker:
        breaker = self.breakers.get(workload_class)
        if breaker is None:
            breaker = self.breakers[workload_class] = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                cooldown_s=self.cooldown_s,
                half_open_probes=self.half_open_probes,
            )
        return breaker

    def snapshot(self, now: float) -> Dict[str, str]:
        """Class -> state name, for the stats endpoint."""
        return {
            name: breaker.current_state(now).value
            for name, breaker in sorted(self.breakers.items())
        }
