"""Admission control: per-tenant token buckets over a bounded queue.

Overload must degrade *predictably*: when the service is saturated the
right answer is an immediate, cheap, typed rejection — not an
ever-growing queue whose tail latency quietly becomes infinite.  Two
independent gates implement that:

* a **token bucket per tenant** (rate + burst) keeps one chatty tenant
  from starving the rest — exhausted tenants get ``RATE_LIMITED``
  while everyone else is untouched;
* a **global bounded queue** caps the total accepted-but-unstarted
  work — when full, new requests get ``QUEUE_FULL`` (the ``503`` shed
  path) in microseconds instead of being buried.

Like everything in the service core, the bucket is clock-free: callers
pass ``now`` and property tests drive it with a virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.serve.protocol import ErrorCode


@dataclass
class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second up to ``burst``."""

    rate: float
    burst: float
    tokens: float = field(default=-1.0)
    updated_at: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.tokens < 0:
            self.tokens = float(self.burst)

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated_at)
        self.updated_at = max(self.updated_at, now)
        self.tokens = min(
            float(self.burst), self.tokens + elapsed * self.rate
        )

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; never blocks."""
        self._refill(now)
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False

    def available(self, now: float) -> float:
        self._refill(now)
        return self.tokens


@dataclass
class AdmissionController:
    """The two admission gates plus their rejection bookkeeping.

    Attributes:
        queue_limit: max accepted-but-unstarted requests (queued plus
            backoff-delayed); 0 disables queuing entirely (every
            request must find an idle worker immediately).
        tenant_rate: tokens/second granted to each tenant.
        tenant_burst: bucket capacity per tenant.
    """

    queue_limit: int = 64
    tenant_rate: float = 50.0
    tenant_burst: float = 100.0
    buckets: Dict[str, TokenBucket] = field(default_factory=dict)
    rejected: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.queue_limit < 0:
            raise ValueError(
                f"queue_limit must be >= 0, got {self.queue_limit}"
            )

    def _bucket(self, tenant: str, now: float) -> TokenBucket:
        bucket = self.buckets.get(tenant)
        if bucket is None:
            # Seed the refill clock at creation: a bucket born with
            # ``updated_at=0.0`` would compute ``elapsed ~= now`` on its
            # first refill, so an ``available()`` snapshot taken before
            # any ``try_take`` overstated the tokens (harmless only
            # because tokens cap at ``burst``).
            bucket = self.buckets[tenant] = TokenBucket(
                rate=self.tenant_rate,
                burst=self.tenant_burst,
                updated_at=now,
            )
        return bucket

    def admit(
        self,
        tenant: str,
        queue_depth: int,
        now: float,
        idle_workers: int = 0,
    ) -> Optional[ErrorCode]:
        """None to admit, or the typed rejection code.

        The queue gate is checked first: when the service is saturated
        the rejection must not consume the tenant's tokens.  A request
        that can start *immediately* (``idle_workers > 0``) never joins
        the queue, so the queue bound does not apply to it — this is
        what makes ``queue_limit=0`` mean "no queuing" rather than
        "no admission at all".
        """
        if queue_depth >= self.queue_limit and idle_workers <= 0:
            self.rejected["queue_full"] = (
                self.rejected.get("queue_full", 0) + 1
            )
            return ErrorCode.QUEUE_FULL
        if not self._bucket(tenant, now).try_take(now):
            self.rejected["rate_limited"] = (
                self.rejected.get("rate_limited", 0) + 1
            )
            return ErrorCode.RATE_LIMITED
        return None

    def snapshot(self, now: float) -> Dict[str, object]:
        """Rejection totals plus per-tenant remaining tokens."""
        return {
            "queue_limit": self.queue_limit,
            "rejected": dict(sorted(self.rejected.items())),
            "tenants": {
                tenant: round(bucket.available(now), 3)
                for tenant, bucket in sorted(self.buckets.items())
            },
        }
