"""Resilient long-lived simulation service (``repro-streampim serve``).

The serving layer on top of the one-shot toolkit: a persistent asyncio
server with a supervised multiprocess worker pool, whose *failure
behaviour* is the contract — per-request deadlines with cooperative
cancellation, bounded retry with backoff for transient failures,
crash redelivery with a dead-letter bound, per-tenant token-bucket
admission over a bounded queue, compile coalescing on the trace-cache
content hash, deficit-round-robin fair scheduling across tenants,
request batching onto warm workers, per-workload-class circuit
breaking, and graceful drain on SIGTERM.  See ``docs/serving.md`` for
the protocol and the failure semantics table.

Layering::

    protocol   wire format, typed error codes, HTTP status mapping
    retry      backoff + circuit-breaker state machines (pure)
    admission  token buckets + bounded-queue gate (pure)
    scheduling deficit-round-robin fair queue across tenants (pure)
    core       THE state machine: deadlines/retries/redelivery/
               coalescing/batching/drain; no I/O, no clock (pure)
    supervisor worker processes, heartbeats, kill/respawn
    server     asyncio shell executing the core's actions
    http       stdlib HTTP/REST adapter onto the same core
    client     blocking socket client
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.core import (
    CoreConfig,
    Dispatch,
    KillWorker,
    Respond,
    ServiceCore,
)
from repro.serve.http import HttpFrontend
from repro.serve.protocol import (
    CLIENT_RETRYABLE,
    HTTP_STATUS,
    ErrorCode,
    ProtocolError,
    Request,
    Response,
    ServeError,
    http_status,
    parse_request,
    parse_response,
)
from repro.serve.scheduling import DeficitRoundRobin
from repro.serve.retry import (
    BreakerBoard,
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
)
from repro.serve.server import (
    ServeConfig,
    SimulationServer,
    request_batch_key,
    request_coalesce_key,
    run_server,
)
from repro.serve.supervisor import WorkerOptions, WorkerPool, execute_request

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "ServeClient",
    "ServeClientError",
    "CoreConfig",
    "ServiceCore",
    "Respond",
    "Dispatch",
    "KillWorker",
    "ErrorCode",
    "CLIENT_RETRYABLE",
    "HTTP_STATUS",
    "http_status",
    "HttpFrontend",
    "DeficitRoundRobin",
    "ProtocolError",
    "Request",
    "Response",
    "ServeError",
    "parse_request",
    "parse_response",
    "RetryPolicy",
    "CircuitBreaker",
    "BreakerBoard",
    "BreakerState",
    "ServeConfig",
    "SimulationServer",
    "request_batch_key",
    "request_coalesce_key",
    "run_server",
    "WorkerPool",
    "WorkerOptions",
    "execute_request",
]
