"""Blocking client for the simulation service.

A thin, dependency-free socket client: connect to the server's unix
socket (or localhost TCP port), send newline-delimited JSON requests,
and read correlated responses.  Used by the ``repro-streampim client``
subcommand and by ``tools/bench_serve.py`` (one client per load
thread — connections are cheap and the protocol is per-line, so no
client-side multiplexing is needed).
"""

from __future__ import annotations

import itertools
import socket
import uuid
from typing import Dict, Optional

from repro.serve.protocol import (
    ProtocolError,
    Request,
    Response,
    decode_line,
    encode_message,
    parse_response,
)

_REQUEST_COUNTER = itertools.count(1)

# Auto-generated request ids must be unique across *processes*, not
# just within one: the server's exactly-once ledger spans connections,
# so two one-shot CLI invocations that both counted "c1" would have
# the second rejected as a duplicate.
_CLIENT_NONCE = uuid.uuid4().hex[:8]


class ServeClientError(ConnectionError):
    """Transport-level failure talking to the service."""


class ServeClient:
    """One connection to the service; safe for sequential use.

    Args:
        socket_path: unix socket path (preferred).
        host / port: TCP fallback, for platforms without unix sockets.
        timeout_s: socket timeout for connect and each response read.
        tenant: default tenant stamped on requests.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
        timeout_s: float = 60.0,
        tenant: str = "default",
    ) -> None:
        if socket_path is None and host is None:
            raise ValueError("client needs a socket path or a host/port")
        self.tenant = tenant
        self.timeout_s = timeout_s
        try:
            if socket_path is not None:
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self._sock.settimeout(timeout_s)
                self._sock.connect(socket_path)
            else:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout_s
                )
        except OSError as exc:
            raise ServeClientError(
                f"cannot connect to the service: {exc}"
            ) from exc
        self._file = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    def call(
        self,
        method: str,
        params: Optional[Dict[str, object]] = None,
        deadline_ms: Optional[float] = None,
        tenant: Optional[str] = None,
        request_id: Optional[str] = None,
    ) -> Response:
        """Send one request and block for its response."""
        if request_id is None:
            request_id = f"c{_CLIENT_NONCE}-{next(_REQUEST_COUNTER)}"
        request = Request(
            id=request_id,
            method=method,
            params=params or {},
            tenant=tenant or self.tenant,
            deadline_ms=deadline_ms,
        )
        try:
            self._sock.sendall(encode_message(request.to_dict()))
        except OSError as exc:
            raise ServeClientError(f"send failed: {exc}") from exc
        while True:
            try:
                line = self._file.readline()
            except OSError as exc:
                raise ServeClientError(f"read failed: {exc}") from exc
            if not line:
                raise ServeClientError(
                    "connection closed before a response arrived"
                )
            try:
                response = parse_response(decode_line(line))
            except ProtocolError as exc:
                raise ServeClientError(f"bad response line: {exc}") from exc
            if response.id in ("", request_id):
                return response
            # A response for another id on this connection should be
            # impossible with sequential calls; skip defensively.

    # ------------------------------------------------------------------
    def ping(self) -> Response:
        return self.call("ping")

    def stats(self) -> Response:
        return self.call("stats")

    def drain(self) -> Response:
        return self.call("drain")

    def close(self) -> None:
        for closer in (self._file.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
