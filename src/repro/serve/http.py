"""Stdlib HTTP/REST frontend over the same service core.

A deliberately small asyncio HTTP/1.1 adapter — no ``aiohttp``, no
framework — that maps a REST surface onto the exact same
:class:`~repro.serve.core.ServiceCore` the line protocol uses:

======  =============  ==============================================
method  path           behaviour
======  =============  ==============================================
POST    ``/v1/run``    submit a ``run`` request; body = params JSON
POST    ``/v1/compile``  submit a ``compile`` request
GET     ``/v1/stats``  operational snapshot (queue, breakers, pool)
POST    ``/v1/drain``  begin graceful shutdown; returns 202
======  =============  ==============================================

Request bodies are JSON objects: ``params`` (object), plus optional
``id`` (string; generated when absent), ``tenant`` and ``deadline_ms``.
Responses carry the same envelope the line protocol emits; failures
additionally map their :class:`~repro.serve.protocol.ErrorCode` to an
HTTP status via :data:`~repro.serve.protocol.HTTP_STATUS`
(``RATE_LIMITED`` → 429, ``QUEUE_FULL`` → 503, ``DEADLINE_EXCEEDED`` →
504, ...), so off-the-shelf clients can apply stock retry policies.

Because the adapter reuses :meth:`SimulationServer.submit_request`,
every robustness property of the core — admission, fair scheduling,
batching, exactly-once, drain — applies identically to HTTP traffic;
an HTTP ``run`` can share a batched dispatch with line-protocol peers.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import time
from typing import Dict, Optional, Tuple

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    WORKER_METHODS,
    ErrorCode,
    Request,
    Response,
    http_status,
)

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Longest accepted header block (request line + headers).
_MAX_HEADER_BYTES = 16 * 1024


class _BadRequest(Exception):
    """Malformed HTTP input; carries the status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class HttpFrontend:
    """Binds a localhost HTTP listener onto one :class:`SimulationServer`."""

    def __init__(self, server) -> None:
        self.server = server
        self._listener: Optional[asyncio.AbstractServer] = None
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    async def start(self, host: str, port: int) -> None:
        self._listener = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )

    @property
    def bound_port(self) -> int:
        if self._listener is None or not self._listener.sockets:
            return 0
        return self._listener.sockets[0].getsockname()[1]

    async def stop_listening(self) -> None:
        if self._listener is not None:
            self._listener.close()
            with contextlib.suppress(Exception):
                await self._listener.wait_closed()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._send(
                        writer,
                        exc.status,
                        {"error": {"message": str(exc)}},
                        close=True,
                    )
                    break
                if parsed is None:
                    break  # clean EOF between requests
                method, path, headers, body = parsed
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                status, payload = await self._route(method, path, body)
                await self._send(
                    writer, status, payload, close=not keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one request; None on clean EOF before any bytes."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _BadRequest(400, "truncated request head")
        except asyncio.LimitOverrunError:
            raise _BadRequest(413, "request head too large")
        if len(head) > _MAX_HEADER_BYTES:
            raise _BadRequest(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(400, f"malformed request line {lines[0]!r}")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _BadRequest(400, f"bad Content-Length {length_text!r}")
        if length < 0 or length > MAX_LINE_BYTES:
            raise _BadRequest(413, "request body too large")
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise _BadRequest(400, "truncated request body")
        return method, path, headers, body

    # ------------------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        path = path.split("?", 1)[0]
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"error": {"message": "use GET"}}
            return 200, self.server.stats(time.time())
        if path == "/v1/drain":
            if method != "POST":
                return 405, {"error": {"message": "use POST"}}
            self.server.request_drain()
            return 202, {"draining": True}
        if path in ("/v1/run", "/v1/compile"):
            if method != "POST":
                return 405, {"error": {"message": "use POST"}}
            return await self._submit(path.rsplit("/", 1)[1], body)
        return 404, {"error": {"message": f"no route for {path}"}}

    async def _submit(
        self, serve_method: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        """Submit one run/compile through the shared core path."""
        if serve_method not in WORKER_METHODS:
            raise ValueError(f"not a worker method: {serve_method!r}")
        try:
            obj = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": {"message": f"bad JSON body: {exc}"}}
        if not isinstance(obj, dict):
            return 400, {"error": {"message": "body must be an object"}}
        params = obj.get("params", {})
        if not isinstance(params, dict):
            return 400, {"error": {"message": "params must be an object"}}
        request_id = obj.get("id")
        if request_id is None:
            request_id = f"http-{next(self._ids)}-{id(self) & 0xFFFF:x}"
        if not isinstance(request_id, str) or not request_id:
            return 400, {"error": {"message": "id must be a string"}}
        tenant = obj.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            return 400, {"error": {"message": "tenant must be a string"}}
        deadline_ms = obj.get("deadline_ms")
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
        ):
            return 400, {
                "error": {"message": "deadline_ms must be positive"}
            }
        request = Request(
            id=request_id,
            method=serve_method,
            params=params,
            tenant=tenant,
            deadline_ms=(
                float(deadline_ms) if deadline_ms is not None else None
            ),
        )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Response]" = loop.create_future()

        def sink(response: Response) -> None:
            if not future.done():
                future.set_result(response)

        self.server.submit_request(request, sink, time.time())
        response = await future
        payload = response.to_dict()
        if response.ok:
            return 200, payload
        code = response.error.code if response.error else ErrorCode.INTERNAL
        return http_status(code), payload

    # ------------------------------------------------------------------
    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        close: bool,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionResetError, RuntimeError):
            pass
