"""Analysis helpers: area model, end-to-end composition, reporting."""

from repro.analysis.area import AreaModel, AreaBreakdown
from repro.analysis.endtoend import end_to_end_speedup, EndToEndResult
from repro.analysis.report import (
    format_table,
    format_speedup_table,
    format_breakdown_table,
    normalised_series,
)
from repro.analysis.figures import bar_chart, grouped_bar_chart, sparkline
from repro.analysis.sweep import sweep, SweepResult
from repro.analysis.timeline import (
    Interval,
    render_gantt,
    schedule_timeline,
    timeline_to_csv,
)
from repro.analysis.datasheet import Datasheet, build_datasheet
from repro.analysis.results_io import (
    load_results,
    save_results,
    stats_from_dict,
    stats_to_dict,
)

__all__ = [
    "AreaModel",
    "AreaBreakdown",
    "end_to_end_speedup",
    "EndToEndResult",
    "format_table",
    "format_speedup_table",
    "format_breakdown_table",
    "normalised_series",
    "bar_chart",
    "grouped_bar_chart",
    "sparkline",
    "sweep",
    "SweepResult",
    "Interval",
    "render_gantt",
    "schedule_timeline",
    "timeline_to_csv",
    "load_results",
    "save_results",
    "stats_from_dict",
    "stats_to_dict",
    "Datasheet",
    "build_datasheet",
]
