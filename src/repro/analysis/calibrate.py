"""Predictor calibration: analytic estimates vs the cycle-level engines.

The closed-form model in :mod:`repro.analysis.predictor` is only useful
if its error against the simulator is known and bounded.  This module
runs the full buildable workload set through both paths — simulate with
the vector engine (bit-identical to the scalar engine by the PR-2
equivalence contract), predict analytically from the same compiled
trace — and reports per-workload relative errors.

Error bounds are documented **per workload class**, because the model's
accuracy is structural, not incidental:

* ``chained-matvec`` (atax, bicg, gesummv, mvt, power_iter) — long
  serial TRAN/MUL chains; the per-subarray load and bus-chain terms are
  nearly exact.  Bound: 3%.
* ``matmul`` (2mm, 3mm, gemm, syrk, syr2k, symm) — wide bus pipelines
  where the cycle-mean period term approximates the steady state.
  Bound: 8%.
* ``dnn`` (mlp, bert) — layer graphs mixing both regimes.  Bound: 10%.

Energy is predicted exactly (same static per-command sums the engine
accumulates), so the energy bound — 15% by the acceptance criterion —
is met with ~float-epsilon margin; the calibration asserts it anyway so
a regression in either path is caught.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.predictor import TracePredictor

#: Global acceptance bounds (fractions): documented in docs/modeling.md.
TIME_ERROR_BOUND = 0.10
ENERGY_ERROR_BOUND = 0.15

#: Documented per-class time-error bounds (fractions).
CLASS_TIME_BOUNDS: Dict[str, float] = {
    "chained-matvec": 0.03,
    "matmul": 0.08,
    "dnn": 0.10,
}

_CLASS_OF = {
    "atax": "chained-matvec",
    "bicg": "chained-matvec",
    "gesu": "chained-matvec",
    "mvt": "chained-matvec",
    "power_iter": "chained-matvec",
    "2mm": "matmul",
    "3mm": "matmul",
    "gemm": "matmul",
    "syrk": "matmul",
    "syr2k": "matmul",
    "symm": "matmul",
    "trmm": "matmul",
    "mlp": "dnn",
    "bert": "dnn",
}


def workload_class(name: str) -> str:
    """Workload class of ``name`` (defaults to ``matmul`` for unknowns)."""
    return _CLASS_OF.get(name, "matmul")


def default_calibration_set(
    heavy: bool = False,
) -> List[Tuple[str, Optional[float]]]:
    """The (name, scale) grid calibration covers by default.

    Every buildable generator in the zoo: the matmul family at reduced
    PolyBench scales (full scale is millions of commands), the matvec
    family additionally at full scale (it stays small), and the DNN
    graphs at their native scale.  ``heavy=True`` adds bert (~24M
    commands; the simulation side alone is ~10 minutes).
    """
    cases: List[Tuple[str, Optional[float]]] = []
    for name in ("2mm", "3mm", "gemm", "syrk", "syr2k", "symm"):
        cases.append((name, 0.02))
        cases.append((name, 0.05))
    for name in ("atax", "bicg", "gesu", "mvt"):
        cases.append((name, 0.02))
        cases.append((name, 1.0))
    cases.append(("power_iter", None))
    cases.append(("mlp", None))
    if heavy:
        cases.append(("bert", None))
    return cases


@dataclass
class WorkloadCalibration:
    """One workload's predicted-vs-simulated comparison."""

    workload: str
    scale: Optional[float]
    workload_class: str
    engine: str
    commands: int
    ops: int
    simulated_time_ns: float
    predicted_time_ns: float
    simulated_energy_pj: float
    predicted_energy_pj: float
    sim_seconds: float
    predict_seconds: float

    @property
    def time_rel_error(self) -> float:
        if not self.simulated_time_ns:
            return 0.0
        return (
            self.predicted_time_ns - self.simulated_time_ns
        ) / self.simulated_time_ns

    @property
    def energy_rel_error(self) -> float:
        if not self.simulated_energy_pj:
            return 0.0
        return (
            self.predicted_energy_pj - self.simulated_energy_pj
        ) / self.simulated_energy_pj

    @property
    def class_time_bound(self) -> float:
        return CLASS_TIME_BOUNDS.get(
            self.workload_class, TIME_ERROR_BOUND
        )

    @property
    def ok(self) -> bool:
        return (
            abs(self.time_rel_error) <= self.class_time_bound
            and abs(self.energy_rel_error) <= ENERGY_ERROR_BOUND
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "scale": self.scale,
            "class": self.workload_class,
            "engine": self.engine,
            "commands": self.commands,
            "ops": self.ops,
            "simulated_time_ns": self.simulated_time_ns,
            "predicted_time_ns": self.predicted_time_ns,
            "time_rel_error": self.time_rel_error,
            "simulated_energy_pj": self.simulated_energy_pj,
            "predicted_energy_pj": self.predicted_energy_pj,
            "energy_rel_error": self.energy_rel_error,
            "class_time_bound": self.class_time_bound,
            "ok": self.ok,
            "sim_seconds": self.sim_seconds,
            "predict_seconds": self.predict_seconds,
        }


@dataclass
class CalibrationReport:
    """Aggregate of a calibration run."""

    results: List[WorkloadCalibration] = field(default_factory=list)

    @property
    def max_abs_time_error(self) -> float:
        return max(
            (abs(r.time_rel_error) for r in self.results), default=0.0
        )

    @property
    def max_abs_energy_error(self) -> float:
        return max(
            (abs(r.energy_rel_error) for r in self.results), default=0.0
        )

    def ok(
        self,
        time_bound: float = TIME_ERROR_BOUND,
        energy_bound: float = ENERGY_ERROR_BOUND,
        per_class: bool = True,
    ) -> bool:
        """True when every workload is within bounds.

        ``per_class=True`` additionally holds each workload to its
        class's (tighter) documented bound.
        """
        for result in self.results:
            if abs(result.time_rel_error) > time_bound:
                return False
            if abs(result.energy_rel_error) > energy_bound:
                return False
            if per_class and not result.ok:
                return False
        return True

    def to_dict(self) -> Dict[str, object]:
        return {
            "workloads": [r.to_dict() for r in self.results],
            "max_abs_time_error": self.max_abs_time_error,
            "max_abs_energy_error": self.max_abs_energy_error,
            "time_error_bound": TIME_ERROR_BOUND,
            "energy_error_bound": ENERGY_ERROR_BOUND,
            "class_time_bounds": dict(CLASS_TIME_BOUNDS),
            "ok": self.ok(),
        }


def calibrate_workload(
    name: str,
    scale: Optional[float] = None,
    seed: int = 7,
    cache=None,
    cache_dir=None,
    use_cache: bool = True,
    engine: str = "vector",
    stream: bool = False,
) -> WorkloadCalibration:
    """Simulate and predict one workload; return the comparison.

    Args:
        engine: ``"vector"`` (default) or ``"scalar"`` — which simulator
            provides the reference run.  The two are bit-identical by
            contract; the scalar option exists so calibration can spot-
            check that contract end to end.
        stream: reference the streamed execution path
            (:func:`~repro.core.compile.stream_workload`) instead of the
            phased one; stats are bit-identical by the PR-7 contract, so
            this validates the predictor against the streaming pipeline.
    """
    from repro.core.compile import compile_workload, stream_workload
    from repro.sim.vector_exec import execute_columnar
    from repro.workloads import find_workload

    spec = (
        find_workload(name, scale=scale)
        if scale is not None
        else find_workload(name)
    )
    if stream:
        sim0 = time.perf_counter()
        streamed = stream_workload(
            spec,
            seed=seed,
            cache=cache,
            cache_dir=cache_dir,
            use_cache=use_cache,
            functional=False,
        )
        sim_seconds = time.perf_counter() - sim0
        stats = streamed.stats
        trace = streamed.trace
        device = streamed.device
    else:
        compiled = compile_workload(
            spec,
            seed=seed,
            cache=cache,
            cache_dir=cache_dir,
            use_cache=use_cache,
        )
        trace = compiled.trace
        device = compiled.device
        sim0 = time.perf_counter()
        if engine == "scalar":
            stats = device.execute_trace(
                trace, workload=spec.name, functional=False
            )
        else:
            stats = execute_columnar(
                device, trace, workload=spec.name, functional=False
            )
        sim_seconds = time.perf_counter() - sim0

    pred0 = time.perf_counter()
    predictor = TracePredictor(
        trace, device.address_map.words_per_subarray
    )
    predicted = predictor.predict(device, workload=spec.name)
    predict_seconds = time.perf_counter() - pred0

    obs = getattr(device, "obs", None)
    if obs is not None and getattr(obs, "enabled", False):
        from repro.obs.predictor_metrics import (
            record_prediction,
            record_prediction_error,
        )

        record_prediction(
            obs, predicted, predict_seconds=predict_seconds
        )
        if stats.time_ns:
            record_prediction_error(
                obs,
                (predicted.time_ns - stats.time_ns) / stats.time_ns,
            )

    return WorkloadCalibration(
        workload=name,
        scale=scale,
        workload_class=workload_class(name),
        engine="stream" if stream else engine,
        commands=predicted.commands,
        ops=predicted.ops,
        simulated_time_ns=float(stats.time_ns),
        predicted_time_ns=float(predicted.time_ns),
        simulated_energy_pj=float(stats.energy.total_pj),
        predicted_energy_pj=float(predicted.energy.total_pj),
        sim_seconds=sim_seconds,
        predict_seconds=predict_seconds,
    )


def run_calibration(
    cases: Optional[Sequence[Tuple[str, Optional[float]]]] = None,
    seed: int = 7,
    cache=None,
    cache_dir=None,
    use_cache: bool = True,
    engine: str = "vector",
    heavy: bool = False,
    progress=None,
) -> CalibrationReport:
    """Run the calibration grid and collect a report.

    Args:
        cases: explicit (name, scale) pairs; defaults to
            :func:`default_calibration_set`.
        progress: optional callable invoked with each finished
            :class:`WorkloadCalibration` (the CLI prints a row per
            workload as results arrive).
    """
    if cases is None:
        cases = default_calibration_set(heavy=heavy)
    report = CalibrationReport()
    for name, scale in cases:
        result = calibrate_workload(
            name,
            scale=scale,
            seed=seed,
            cache=cache,
            cache_dir=cache_dir,
            use_cache=use_cache,
            engine=engine,
        )
        report.results.append(result)
        if progress is not None:
            progress(result)
    return report


__all__ = [
    "CLASS_TIME_BOUNDS",
    "CalibrationReport",
    "ENERGY_ERROR_BOUND",
    "TIME_ERROR_BOUND",
    "WorkloadCalibration",
    "calibrate_workload",
    "default_calibration_set",
    "run_calibration",
    "workload_class",
]
