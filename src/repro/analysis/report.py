"""Plain-text report formatting for the benchmark harness.

The benchmarks print the same rows/series the paper's figures plot; these
helpers keep the formatting consistent and testable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.sim.stats import RunStats, TimeBreakdown


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.2f}",
) -> str:
    """Render a simple aligned text table."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_format.format(cell))
            else:
                cells.append(str(cell))
        rendered.append(cells)
    widths = [
        max(len(line[col]) for line in rendered)
        for col in range(len(headers))
    ]
    lines = []
    for i, line in enumerate(rendered):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_speedup_table(
    results: Mapping[str, Mapping[str, RunStats]],
    baseline: str,
    workloads: Sequence[str],
) -> str:
    """Fig. 17-style table: per-workload speed-ups over a baseline.

    Args:
        results: {platform: {workload: RunStats}}.
        baseline: platform name used as the denominator.
        workloads: workload order for columns.
    """
    if baseline not in results:
        raise KeyError(f"baseline platform {baseline!r} missing")
    rows = []
    for platform, stats in results.items():
        row: List[object] = [platform]
        speedups = []
        for workload in workloads:
            speedup = (
                results[baseline][workload].time_ns
                / stats[workload].time_ns
            )
            speedups.append(speedup)
            row.append(speedup)
        row.append(sum(speedups) / len(speedups))
        rows.append(row)
    return format_table(["platform", *workloads, "avg"], rows)


def format_breakdown_table(
    breakdowns: Mapping[str, TimeBreakdown],
    normalise_to: str | None = None,
) -> str:
    """Fig. 19-style table: time breakdowns, optionally normalised."""
    reference = None
    if normalise_to is not None:
        reference = breakdowns[normalise_to].total_ns
        if reference <= 0:
            raise ValueError(f"{normalise_to!r} has zero total time")
    rows = []
    for label, breakdown in breakdowns.items():
        scale = 1.0 / reference if reference else 1.0 / max(
            breakdown.total_ns, 1e-30
        )
        rows.append(
            [
                label,
                breakdown.read_ns * scale,
                breakdown.write_ns * scale,
                breakdown.shift_ns * scale,
                breakdown.process_ns * scale,
                breakdown.overlapped_ns * scale,
                breakdown.total_ns * scale,
            ]
        )
    return format_table(
        ["config", "read", "write", "shift", "process", "overlap", "total"],
        rows,
        float_format="{:.3f}",
    )


def normalised_series(
    values: Mapping[str, float], reference_key: str
) -> Dict[str, float]:
    """Normalise a {label: value} series to one entry (Fig. 21/22 style)."""
    reference = values[reference_key]
    if reference <= 0:
        raise ValueError(f"reference {reference_key!r} must be positive")
    return {key: value / reference for key, value in values.items()}
