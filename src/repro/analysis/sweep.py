"""Generic configuration sweeps.

The sensitivity studies of section V-D all have the same shape: vary one
design parameter, rerun the workload set, normalise to a reference
point.  This module factors that pattern out so benchmarks, examples and
downstream users can sweep any parameter of :class:`StreamPIMConfig`
(or a custom config constructor) in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence

from repro.baselines.stpim import StreamPIMPlatform
from repro.core.device import StreamPIMConfig
from repro.sim.stats import RunStats
from repro.workloads.spec import WorkloadSpec

#: Builds a device config from one sweep-point value.
ConfigFactory = Callable[[object], StreamPIMConfig]


@dataclass
class SweepResult:
    """All runs of one sweep: {point: {workload: RunStats}}."""

    parameter: str
    points: List[Hashable]
    runs: Dict[Hashable, Dict[str, RunStats]] = field(default_factory=dict)

    def times(self, point: Hashable) -> Dict[str, float]:
        return {w: s.time_ns for w, s in self.runs[point].items()}

    def energies(self, point: Hashable) -> Dict[str, float]:
        return {w: s.energy.total_pj for w, s in self.runs[point].items()}

    def average_speedup(
        self, point: Hashable, reference: Hashable
    ) -> float:
        """Mean per-workload speed-up of ``point`` over ``reference``."""
        ref = self.times(reference)
        now = self.times(point)
        ratios = [ref[w] / now[w] for w in ref]
        return sum(ratios) / len(ratios)

    def speedup_series(self, reference: Hashable) -> Dict[Hashable, float]:
        """{point: average speed-up vs reference} for every point."""
        return {
            point: self.average_speedup(point, reference)
            for point in self.points
        }


def sweep(
    parameter: str,
    points: Sequence[Hashable],
    config_factory: ConfigFactory,
    workloads: Sequence[WorkloadSpec],
    platform_factory: Optional[
        Callable[[StreamPIMConfig], StreamPIMPlatform]
    ] = None,
    engine: str = "simulate",
) -> SweepResult:
    """Run every workload at every sweep point.

    Args:
        parameter: label of the swept quantity (for reporting).
        points: the values to sweep.
        config_factory: maps one point to a device config.
        workloads: specs to run at every point.
        platform_factory: how to build the platform (default: StPIM).
        engine: ``"simulate"`` (default) runs the round-based platform
            at every point; ``"predict"`` evaluates the closed-form
            model of :mod:`repro.analysis.predictor` instead — each
            workload is lowered once per distinct trace-shaping
            configuration (geometry + scheduler policy) and every
            timing-only point reuses that trace's predictor, so wide
            sweeps cost milliseconds per point.  The result has the
            same shape either way (``RunStats`` per point/workload;
            predicted runs carry the ``StPIM-analytic`` platform tag).
            Note the reference models differ in absolute terms: the
            predictor reproduces the **VPC-trace streaming engines**
            (its calibrated reference, <1% error there), while
            ``"simulate"`` times the coarser round-parallel
            ``PimTask.run`` model — compare predicted sweeps through
            normalised series (:meth:`SweepResult.speedup_series`),
            which both engines agree on.

    Returns:
        A :class:`SweepResult` with every run's stats.
    """
    if not points:
        raise ValueError("sweep needs at least one point")
    if not workloads:
        raise ValueError("sweep needs at least one workload")
    if engine not in ("simulate", "predict"):
        raise ValueError(
            f"engine must be 'simulate' or 'predict', got {engine!r}"
        )
    result = SweepResult(parameter=parameter, points=list(points))
    if engine == "predict":
        _sweep_predict(result, points, config_factory, workloads)
        return result
    platform_factory = platform_factory or StreamPIMPlatform
    for point in points:
        config = config_factory(point)
        platform = platform_factory(config)
        result.runs[point] = {
            spec.name: platform.run(spec) for spec in workloads
        }
    return result


def _sweep_predict(
    result: SweepResult,
    points: Sequence[Hashable],
    config_factory: ConfigFactory,
    workloads: Sequence[WorkloadSpec],
) -> None:
    """Fill ``result.runs`` from the analytic model.

    Predicts from the same lowered trace the platform path would
    execute (:func:`~repro.baselines.stpim.spec_to_task`), memoised on
    the compile cache key — which covers exactly the config fields that
    shape the trace — so a sweep over timing constants lowers each
    workload once.
    """
    from repro.analysis.predictor import AnalyticDevice, TracePredictor
    from repro.baselines.stpim import spec_to_task
    from repro.core.compile import spec_cache_key
    from repro.core.device import StreamPIMDevice

    predictors: Dict[str, TracePredictor] = {}
    for point in points:
        config = config_factory(point)
        runs: Dict[str, RunStats] = {}
        for spec in workloads:
            key = spec_cache_key(spec, config)
            predictor = predictors.get(key)
            if predictor is None:
                device = StreamPIMDevice(config)
                task = spec_to_task(spec, device)
                predictor = TracePredictor(
                    task.to_trace(),
                    device.address_map.words_per_subarray,
                )
                predictors[key] = predictor
            predicted = predictor.predict(
                AnalyticDevice(config), workload=spec.name
            )
            runs[spec.name] = predicted.to_run_stats()
        result.runs[point] = runs
