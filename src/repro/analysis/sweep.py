"""Generic configuration sweeps.

The sensitivity studies of section V-D all have the same shape: vary one
design parameter, rerun the workload set, normalise to a reference
point.  This module factors that pattern out so benchmarks, examples and
downstream users can sweep any parameter of :class:`StreamPIMConfig`
(or a custom config constructor) in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence

from repro.baselines.stpim import StreamPIMPlatform
from repro.core.device import StreamPIMConfig
from repro.sim.stats import RunStats
from repro.workloads.spec import WorkloadSpec

#: Builds a device config from one sweep-point value.
ConfigFactory = Callable[[object], StreamPIMConfig]


@dataclass
class SweepResult:
    """All runs of one sweep: {point: {workload: RunStats}}."""

    parameter: str
    points: List[Hashable]
    runs: Dict[Hashable, Dict[str, RunStats]] = field(default_factory=dict)

    def times(self, point: Hashable) -> Dict[str, float]:
        return {w: s.time_ns for w, s in self.runs[point].items()}

    def energies(self, point: Hashable) -> Dict[str, float]:
        return {w: s.energy.total_pj for w, s in self.runs[point].items()}

    def average_speedup(
        self, point: Hashable, reference: Hashable
    ) -> float:
        """Mean per-workload speed-up of ``point`` over ``reference``."""
        ref = self.times(reference)
        now = self.times(point)
        ratios = [ref[w] / now[w] for w in ref]
        return sum(ratios) / len(ratios)

    def speedup_series(self, reference: Hashable) -> Dict[Hashable, float]:
        """{point: average speed-up vs reference} for every point."""
        return {
            point: self.average_speedup(point, reference)
            for point in self.points
        }


def sweep(
    parameter: str,
    points: Sequence[Hashable],
    config_factory: ConfigFactory,
    workloads: Sequence[WorkloadSpec],
    platform_factory: Optional[
        Callable[[StreamPIMConfig], StreamPIMPlatform]
    ] = None,
) -> SweepResult:
    """Run every workload at every sweep point.

    Args:
        parameter: label of the swept quantity (for reporting).
        points: the values to sweep.
        config_factory: maps one point to a device config.
        workloads: specs to run at every point.
        platform_factory: how to build the platform (default: StPIM).

    Returns:
        A :class:`SweepResult` with every run's stats.
    """
    if not points:
        raise ValueError("sweep needs at least one point")
    if not workloads:
        raise ValueError("sweep needs at least one workload")
    platform_factory = platform_factory or StreamPIMPlatform
    result = SweepResult(parameter=parameter, points=list(points))
    for point in points:
        config = config_factory(point)
        platform = platform_factory(config)
        result.runs[point] = {
            spec.name: platform.run(spec) for spec in workloads
        }
    return result
