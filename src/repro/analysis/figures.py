"""ASCII figure rendering (dependency-free plotting).

The paper's evaluation figures are bar charts; these helpers render the
same series as unicode bar charts on the terminal so the benchmark
harness and examples can show the *shape* of each result without a
plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, scale: float, width: int) -> str:
    """Render one bar of ``value`` at ``scale`` units per ``width``."""
    if scale <= 0:
        return ""
    cells = value / scale * width
    full = int(cells)
    remainder = cells - full
    bar = "█" * full
    partial_index = int(remainder * (len(_BLOCKS) - 1))
    if partial_index > 0:
        bar += _BLOCKS[partial_index]
    return bar


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    unit: str = "",
    width: int = 40,
    reference: Optional[str] = None,
) -> str:
    """Horizontal bar chart of a {label: value} series.

    Args:
        values: series to plot (insertion order preserved).
        title: chart heading.
        unit: printed after each value.
        width: character width of the longest bar.
        reference: optional label whose bar is marked as the baseline.
    """
    if not values:
        raise ValueError("nothing to plot")
    if width <= 0:
        raise ValueError("width must be positive")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar charts need non-negative values")
    peak = max(values.values())
    label_width = max(len(str(label)) for label in values)
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        bar = _bar(value, peak, width) if peak else ""
        marker = "  <- baseline" if reference == label else ""
        lines.append(
            f"{str(label).rjust(label_width)} |{bar.ljust(width)}| "
            f"{value:.2f}{unit}{marker}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    unit: str = "",
    width: int = 40,
) -> str:
    """One bar chart per group, globally scaled for comparability."""
    if not groups:
        raise ValueError("nothing to plot")
    peak = max(
        value for series in groups.values() for value in series.values()
    )
    lines = []
    if title:
        lines.append(title)
    for group, series in groups.items():
        lines.append(f"-- {group}")
        label_width = max(len(str(label)) for label in series)
        for label, value in series.items():
            bar = _bar(value, peak, width) if peak else ""
            lines.append(
                f"{str(label).rjust(label_width)} |{bar.ljust(width)}| "
                f"{value:.2f}{unit}"
            )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line sparkline (for sweep series)."""
    if not values:
        raise ValueError("nothing to plot")
    if any(v < 0 for v in values):
        raise ValueError("sparklines need non-negative values")
    peak = max(values)
    if peak == 0:
        return " " * len(values)
    steps = "▁▂▃▄▅▆▇█"
    return "".join(
        steps[min(len(steps) - 1, int(v / peak * (len(steps) - 1)))]
        for v in values
    )
