"""Analytic design-space exploration with Pareto re-simulation.

The closed-form predictor makes configuration sweeps that would take
hours of cycle-level simulation answerable in seconds: compile each
workload **once per trace-shaping configuration** (geometry + scheduler
policy — the compile cache already keys on exactly those), build one
:class:`~repro.analysis.predictor.TracePredictor` per compiled trace,
then evaluate every timing point against a light
:class:`~repro.analysis.predictor.AnalyticDevice`.  Only the
(time, energy) Pareto frontier — typically a few percent of the grid —
is re-simulated with the vector engine to bound the model error where
it actually matters.

The default grid trades off three device axes the paper's sensitivity
studies motivate:

* **scheduler policy** (BASE / DISTRIBUTE / UNBLOCK) — changes the
  compiled trace, so each policy is a separate compile (served from the
  trace cache on re-runs);
* **access-port speed grades** — read/write latency multipliers with
  inversely scaled access energy (a faster port drives harder), the
  classic latency/energy trade-off that makes the frontier non-trivial;
* **host decode overhead** (``vpc_decode_ns``) — pure latency.

All timing points share the compiled trace and predictor, so a
1,000+-point grid costs a handful of compiles plus milliseconds per
point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.predictor import AnalyticDevice, TracePredictor

#: Default latency multipliers for the access-port speed grades.
DEFAULT_READ_SCALES: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
DEFAULT_WRITE_SCALES: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
#: Default host decode overheads (ns per VPC).
DEFAULT_DECODE_NS: Tuple[float, ...] = (5.0, 10.0, 20.0, 40.0, 80.0)
#: Default workload grid: one matmul representative plus the matvec
#: family at full scale (small traces, fast frontier re-simulation).
DEFAULT_WORKLOADS: Tuple[Tuple[str, Optional[float]], ...] = (
    ("gemm", 0.02),
    ("atax", 1.0),
    ("bicg", 1.0),
    ("mvt", 1.0),
    ("power_iter", None),
)


@dataclass(frozen=True)
class DesignPoint:
    """One configuration of the explored design space."""

    workload: str
    scale: Optional[float]
    policy: str
    read_scale: float
    write_scale: float
    decode_ns: float

    def config(self, base) -> "object":
        """Materialise this point as a :class:`StreamPIMConfig`.

        Latency multipliers scale the Table III access latencies; the
        matching access energies scale **inversely** (a faster port
        spends more energy per access), which is what gives the
        time/energy plane a genuine trade-off frontier.
        """
        from repro.core.scheduler import SchedulerPolicy

        timing = replace(
            base.timing,
            read_ns=base.timing.read_ns * self.read_scale,
            read_pj=base.timing.read_pj / self.read_scale,
            write_ns=base.timing.write_ns * self.write_scale,
            write_pj=base.timing.write_pj / self.write_scale,
        )
        return replace(
            base.with_policy(SchedulerPolicy(self.policy)),
            timing=timing,
            vpc_decode_ns=self.decode_ns,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "scale": self.scale,
            "policy": self.policy,
            "read_scale": self.read_scale,
            "write_scale": self.write_scale,
            "decode_ns": self.decode_ns,
        }


@dataclass
class ExplorePoint:
    """Predicted (and optionally verified) outcome of one design point."""

    point: DesignPoint
    predicted_time_ns: float
    predicted_energy_pj: float
    on_frontier: bool = False
    simulated_time_ns: Optional[float] = None
    simulated_energy_pj: Optional[float] = None

    @property
    def time_rel_error(self) -> Optional[float]:
        if not self.simulated_time_ns:
            return None
        return (
            self.predicted_time_ns - self.simulated_time_ns
        ) / self.simulated_time_ns

    @property
    def energy_rel_error(self) -> Optional[float]:
        if not self.simulated_energy_pj:
            return None
        return (
            self.predicted_energy_pj - self.simulated_energy_pj
        ) / self.simulated_energy_pj

    def to_dict(self) -> Dict[str, object]:
        out = self.point.to_dict()
        out.update(
            {
                "predicted_time_ns": self.predicted_time_ns,
                "predicted_energy_pj": self.predicted_energy_pj,
                "on_frontier": self.on_frontier,
                "simulated_time_ns": self.simulated_time_ns,
                "simulated_energy_pj": self.simulated_energy_pj,
                "time_rel_error": self.time_rel_error,
                "energy_rel_error": self.energy_rel_error,
            }
        )
        return out


def pareto_frontier(
    objectives: Sequence[Tuple[float, float]],
) -> List[int]:
    """Indices of the non-dominated (minimise both) points.

    A point is dominated when another point is no worse on both
    objectives and strictly better on at least one.  Runs the classic
    sort-and-scan: sorted by (time, energy), a point is on the frontier
    iff its energy is strictly below every earlier point's.
    """
    order = sorted(
        range(len(objectives)), key=lambda i: objectives[i]
    )
    frontier: List[int] = []
    best_energy = float("inf")
    for i in order:
        t, e = objectives[i]
        if e < best_energy:
            frontier.append(i)
            best_energy = e
    return sorted(frontier)


@dataclass
class ExploreReport:
    """Everything one :func:`run_explore` call produced."""

    points: List[ExplorePoint] = field(default_factory=list)
    compiles: int = 0
    compile_seconds: float = 0.0
    predict_seconds: float = 0.0
    sim_seconds: float = 0.0
    verified: int = 0

    @property
    def total_points(self) -> int:
        return len(self.points)

    @property
    def frontier_points(self) -> int:
        return sum(1 for p in self.points if p.on_frontier)

    @property
    def pruning_ratio(self) -> float:
        """Fraction of the grid the frontier pruned away from sim."""
        if not self.points:
            return 0.0
        return 1.0 - self.frontier_points / self.total_points

    @property
    def max_abs_time_error(self) -> float:
        errors = [
            abs(p.time_rel_error)
            for p in self.points
            if p.time_rel_error is not None
        ]
        return max(errors, default=0.0)

    @property
    def max_abs_energy_error(self) -> float:
        errors = [
            abs(p.energy_rel_error)
            for p in self.points
            if p.energy_rel_error is not None
        ]
        return max(errors, default=0.0)

    @property
    def estimated_speedup(self) -> float:
        """Analytic-sweep wall-time advantage over simulating the grid.

        Estimates full-grid simulation cost as (mean observed seconds
        per re-simulated point) x (grid size) and compares it against
        what the analytic pass actually cost (compiles + predictions).
        Compiles are charged to the analytic side even though a
        simulation sweep would pay them too, so this is conservative.
        """
        if not self.verified:
            return 0.0
        est_full_sim = (
            self.sim_seconds / self.verified
        ) * self.total_points
        analytic = self.compile_seconds + self.predict_seconds
        if analytic <= 0:
            return float("inf")
        return est_full_sim / analytic

    def frontier(self) -> List[ExplorePoint]:
        return [p for p in self.points if p.on_frontier]

    def to_dict(self) -> Dict[str, object]:
        return {
            "total_points": self.total_points,
            "frontier_points": self.frontier_points,
            "pruning_ratio": self.pruning_ratio,
            "verified": self.verified,
            "max_abs_time_error": self.max_abs_time_error,
            "max_abs_energy_error": self.max_abs_energy_error,
            "compiles": self.compiles,
            "compile_seconds": self.compile_seconds,
            "predict_seconds": self.predict_seconds,
            "sim_seconds": self.sim_seconds,
            "estimated_speedup": self.estimated_speedup,
            "points": [p.to_dict() for p in self.points],
        }


def build_grid(
    workloads: Sequence[Tuple[str, Optional[float]]] = DEFAULT_WORKLOADS,
    policies: Optional[Sequence[str]] = None,
    read_scales: Sequence[float] = DEFAULT_READ_SCALES,
    write_scales: Sequence[float] = DEFAULT_WRITE_SCALES,
    decode_ns: Sequence[float] = DEFAULT_DECODE_NS,
) -> List[DesignPoint]:
    """Enumerate the cartesian design grid (default: 1,200 points)."""
    from repro.core.scheduler import SchedulerPolicy

    if policies is None:
        policies = [p.value for p in SchedulerPolicy]
    grid: List[DesignPoint] = []
    for name, scale in workloads:
        for policy in policies:
            for rs in read_scales:
                for ws in write_scales:
                    for dec in decode_ns:
                        grid.append(
                            DesignPoint(
                                workload=name,
                                scale=scale,
                                policy=policy,
                                read_scale=float(rs),
                                write_scale=float(ws),
                                decode_ns=float(dec),
                            )
                        )
    return grid


def run_explore(
    grid: Optional[Sequence[DesignPoint]] = None,
    seed: int = 7,
    cache=None,
    cache_dir=None,
    use_cache: bool = True,
    verify_limit: Optional[int] = None,
    obs=None,
    progress=None,
) -> ExploreReport:
    """Explore ``grid`` analytically; re-simulate only its frontier.

    Args:
        grid: design points (default :func:`build_grid`, 1,200 points).
        verify_limit: cap on re-simulated frontier points (None = all);
            the capped subset is spread evenly across each workload's
            frontier so the error report still covers its whole span.
        obs: optional enabled collector; per-point predictions and
            per-verification errors are recorded under ``predictor.*``.
        progress: optional callable invoked with (stage, detail) pairs
            as work proceeds (the CLI prints them).

    Returns:
        An :class:`ExploreReport`; Pareto frontiers are computed per
        workload (comparing time/energy across workloads would be
        meaningless).
    """
    from repro.core.compile import compile_workload
    from repro.core.device import StreamPIMConfig, StreamPIMDevice
    from repro.core.scheduler import SchedulerPolicy
    from repro.sim.vector_exec import execute_columnar
    from repro.workloads import find_workload

    if grid is None:
        grid = build_grid()
    report = ExploreReport()
    if not grid:
        return report
    base = StreamPIMConfig()
    say = progress or (lambda stage, detail: None)

    # One compile + predictor per distinct trace-shaping configuration.
    compiled: Dict[Tuple[str, Optional[float], str], tuple] = {}
    for point in grid:
        key = (point.workload, point.scale, point.policy)
        if key in compiled:
            continue
        spec = (
            find_workload(point.workload, scale=point.scale)
            if point.scale is not None
            else find_workload(point.workload)
        )
        config = base.with_policy(SchedulerPolicy(point.policy))
        t0 = time.perf_counter()
        result = compile_workload(
            spec,
            device=StreamPIMDevice(config),
            seed=seed,
            cache=cache,
            cache_dir=cache_dir,
            use_cache=use_cache,
        )
        predictor = TracePredictor(
            result.trace,
            result.device.address_map.words_per_subarray,
        )
        report.compile_seconds += time.perf_counter() - t0
        report.compiles += 1
        compiled[key] = (spec, result.trace, predictor)
        say(
            "compile",
            f"{spec.name} policy={point.policy} "
            f"({predictor.commands} cmds"
            f"{', cached' if result.cache_hit else ''})",
        )

    # Analytic pass: every grid point through its shared predictor.
    by_workload: Dict[Tuple[str, Optional[float]], List[int]] = {}
    for point in grid:
        spec, trace, predictor = compiled[
            (point.workload, point.scale, point.policy)
        ]
        t0 = time.perf_counter()
        device = AnalyticDevice(point.config(base))
        predicted = predictor.predict(device, workload=spec.name)
        dt = time.perf_counter() - t0
        report.predict_seconds += dt
        if obs is not None and getattr(obs, "enabled", False):
            from repro.obs.predictor_metrics import record_prediction

            record_prediction(obs, predicted, predict_seconds=dt)
        by_workload.setdefault(
            (point.workload, point.scale), []
        ).append(len(report.points))
        report.points.append(
            ExplorePoint(
                point=point,
                predicted_time_ns=predicted.time_ns,
                predicted_energy_pj=predicted.energy.total_pj,
            )
        )
    say(
        "predict",
        f"{report.total_points} points in "
        f"{report.predict_seconds:.2f}s",
    )

    # Per-workload Pareto frontier on (time, energy).
    to_verify: List[ExplorePoint] = []
    for indices in by_workload.values():
        objectives = [
            (
                report.points[i].predicted_time_ns,
                report.points[i].predicted_energy_pj,
            )
            for i in indices
        ]
        frontier = pareto_frontier(objectives)
        chosen = [report.points[indices[i]] for i in frontier]
        for p in chosen:
            p.on_frontier = True
        if verify_limit is not None and len(chosen) > verify_limit:
            step = len(chosen) / verify_limit
            chosen = [
                chosen[min(int(j * step), len(chosen) - 1)]
                for j in range(verify_limit)
            ]
        to_verify.extend(chosen)

    # Re-simulate the frontier only.
    for entry in to_verify:
        point = entry.point
        spec, trace, _ = compiled[
            (point.workload, point.scale, point.policy)
        ]
        t0 = time.perf_counter()
        device = StreamPIMDevice(point.config(base))
        stats = execute_columnar(
            device, trace, workload=spec.name, functional=False
        )
        report.sim_seconds += time.perf_counter() - t0
        report.verified += 1
        entry.simulated_time_ns = float(stats.time_ns)
        entry.simulated_energy_pj = float(stats.energy.total_pj)
        if obs is not None and getattr(obs, "enabled", False):
            from repro.obs.predictor_metrics import (
                record_prediction_error,
            )

            if entry.time_rel_error is not None:
                record_prediction_error(obs, entry.time_rel_error)
        say(
            "verify",
            f"{spec.name} policy={point.policy} "
            f"r{point.read_scale:g} w{point.write_scale:g} "
            f"d{point.decode_ns:g}: err "
            f"{(entry.time_rel_error or 0.0) * 100:+.2f}%",
        )
    return report


__all__ = [
    "DEFAULT_DECODE_NS",
    "DEFAULT_READ_SCALES",
    "DEFAULT_WORKLOADS",
    "DEFAULT_WRITE_SCALES",
    "DesignPoint",
    "ExplorePoint",
    "ExploreReport",
    "build_grid",
    "pareto_frontier",
    "run_explore",
]
