"""Result serialisation: archive and reload experiment outputs.

Benchmark runs produce :class:`~repro.sim.stats.RunStats` matrices
(platform x workload); this module serialises them to JSON so results
can be archived next to the paper numbers, diffed across model versions,
and reloaded without re-simulation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, TextIO, Union

from repro.sim.stats import EnergyBreakdown, RunStats, TimeBreakdown

_FORMAT_VERSION = 1


def stats_to_dict(stats: RunStats) -> dict:
    """One RunStats as a plain JSON-able dictionary."""
    return {
        "platform": stats.platform,
        "workload": stats.workload,
        "time_ns": stats.time_ns,
        "time_breakdown": {
            "read_ns": stats.time_breakdown.read_ns,
            "write_ns": stats.time_breakdown.write_ns,
            "shift_ns": stats.time_breakdown.shift_ns,
            "process_ns": stats.time_breakdown.process_ns,
            "overlapped_ns": stats.time_breakdown.overlapped_ns,
            "recovery_ns": stats.time_breakdown.recovery_ns,
        },
        "energy": {
            "read_pj": stats.energy.read_pj,
            "write_pj": stats.energy.write_pj,
            "shift_pj": stats.energy.shift_pj,
            "compute_pj": stats.energy.compute_pj,
            "recovery_pj": stats.energy.recovery_pj,
        },
        "counters": dict(stats.counters),
    }


def stats_from_dict(payload: Mapping) -> RunStats:
    """Inverse of :func:`stats_to_dict`."""
    try:
        time = payload["time_breakdown"]
        energy = payload["energy"]
        stats = RunStats(
            platform=payload["platform"],
            workload=payload["workload"],
            time_ns=float(payload["time_ns"]),
            time_breakdown=TimeBreakdown(
                read_ns=float(time["read_ns"]),
                write_ns=float(time["write_ns"]),
                shift_ns=float(time["shift_ns"]),
                process_ns=float(time["process_ns"]),
                overlapped_ns=float(time["overlapped_ns"]),
                # Pre-recovery archives omit the field; default to zero.
                recovery_ns=float(time.get("recovery_ns", 0.0)),
            ),
            energy=EnergyBreakdown(
                read_pj=float(energy["read_pj"]),
                write_pj=float(energy["write_pj"]),
                shift_pj=float(energy["shift_pj"]),
                compute_pj=float(energy["compute_pj"]),
                recovery_pj=float(energy.get("recovery_pj", 0.0)),
            ),
            counters={k: int(v) for k, v in payload["counters"].items()},
        )
    except KeyError as missing:
        raise ValueError(f"malformed stats payload: missing {missing}")
    return stats


ResultsMatrix = Dict[str, Dict[str, RunStats]]


def save_results(
    results: Mapping[str, Mapping[str, RunStats]],
    target: Union[str, Path, TextIO],
    label: str = "",
) -> None:
    """Archive a {platform: {workload: RunStats}} matrix as JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "label": label,
        "results": {
            platform: {
                workload: stats_to_dict(stats)
                for workload, stats in by_workload.items()
            }
            for platform, by_workload in results.items()
        },
    }
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
        return
    json.dump(payload, target, indent=1)


def load_results(source: Union[str, Path, TextIO]) -> ResultsMatrix:
    """Reload a results archive written by :func:`save_results`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.load(source)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported results format version {version!r}"
        )
    return {
        platform: {
            workload: stats_from_dict(entry)
            for workload, entry in by_workload.items()
        }
        for platform, by_workload in payload["results"].items()
    }
