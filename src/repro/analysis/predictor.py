"""Closed-form performance prediction over columnar traces.

Cycle-level simulation is exact but linear in trace length with a
Python-loop constant; a geometry/placement/timing design sweep pays that
cost at every grid point.  This module predicts the vector engine's
``RunStats`` — total time, energy breakdown, and a comparable time
breakdown — from a handful of NumPy reductions over arrays the
:class:`~repro.isa.columnar.ColumnarTrace` already holds, so one
compiled trace can be evaluated across thousands of device
configurations in microseconds-to-milliseconds per point.

Model
-----
Execution is predicted per source operation (the compiler marks
operation boundaries on the trace; see ``ColumnarTrace.op_starts``).
Within one operation the finish time is the max of four closed forms:

* **decode floor** — the host link dispatches one command per
  ``vpc_decode_ns``, so ``commands_so_far * vpc_decode_ns`` lower-bounds
  every finish.
* **per-subarray load** (``term_a``) — each subarray must serially fit
  the durations charged to it (operand copies in, compute profiles,
  result copies out), starting no earlier than its busy horizon:
  ``max_s(busy[s] + load[s])``.
* **input floor + critical load** (``term_b``) — no subarray starts
  before its sources are released: ``max_src(busy) + max_s(load[s])``.
* **bus pipeline** (``term_c``) — cross-subarray TRANs serialise on the
  shared bus, and the bus in turn waits for producer subarrays.  The
  steady state of that marked graph is a cycle-mean: TRAN ``k`` departs
  at best one *period* after TRAN ``k-1``, where the period is
  ``max(c_k, (work_since_last_feeder + c_k) / tokens_in_flight)`` —
  the bus transfer time itself, or the producer-side work amortised
  over the TRANs pipelined between producer and consumer.  Summing
  periods (``C``) and adding each subarray's appendage work after its
  last feeding TRAN gives the finish estimate of every command.

Energy is not approximated at all: the vector engine's energy is a
static per-command sum (operand copy, profile, result copy — see
``VectorExecState.feed``), so the predictor reproduces it exactly (up
to float association) from per-unique-shape tables.

The split between :class:`TracePredictor` construction (topology:
dependency subarrays, bus event order, feeder chains — all independent
of timing constants) and :meth:`TracePredictor.predict` (pure numeric
passes against one device's cost tables) is what makes sweeps cheap:
build once per compiled trace, predict per configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.isa.columnar import ColumnarTrace, MUL_BYTE, TRAN_BYTE
from repro.isa.encoding import BYTE_TO_OPCODE
from repro.isa.vpc import VPC, VPCOpcode
from repro.sim.stats import EnergyBreakdown, RunStats, TimeBreakdown

#: Platform tag stamped on predicted stats (distinguishes analytic
#: results from simulated ``"StPIM"`` rows in mixed reports).
PREDICTED_PLATFORM = "StPIM-analytic"


class AnalyticDevice:
    """Cost-model view of a device configuration.

    Everything :meth:`TracePredictor.predict` reads from a device —
    address map, subarray-engine profile model, cross-subarray copy
    cost, timing constants, ``vpc_decode_ns`` — without the word store
    or event-mode machinery, so a design-space explorer can evaluate
    thousands of configurations without paying
    :class:`~repro.core.device.StreamPIMDevice` construction per point.
    The copy-cost method is borrowed from the device class itself, so
    the two can never drift apart.
    """

    def __init__(self, config=None) -> None:
        from repro.core.device import StreamPIMConfig
        from repro.core.processor import RMProcessor
        from repro.core.rmbus import RMBus
        from repro.core.subarray_engine import SubarrayEngine
        from repro.rm.address import AddressMap

        self.config = config if config is not None else StreamPIMConfig()
        self.timing = self.config.timing
        self.address_map = AddressMap(self.config.geometry)
        self.processor = RMProcessor(self.config.processor, self.timing)
        self.bus = RMBus(self.config.bus, self.timing)
        self.engine_model = SubarrayEngine(
            processor=self.processor, bus=self.bus, timing=self.timing
        )

    def _copy_cost_ns(self, words: int) -> float:
        from repro.core.device import StreamPIMDevice

        return StreamPIMDevice._copy_cost_ns(self, words)


@dataclass
class PredictedStats:
    """Analytic counterpart of :class:`~repro.sim.stats.RunStats`.

    Attributes:
        workload: workload tag the prediction describes.
        time_ns: predicted end-to-end makespan.
        energy: predicted energy breakdown (exact, not approximated).
        time_breakdown: predicted exclusive-category time breakdown,
            shaped like the simulator's (read/write/process/overlapped)
            via the proportional-overlap construction described in
            :meth:`TracePredictor.predict`.
        category_ns: per-category *busy* sums (``copy`` operand/result
            copies, ``exec`` compute profiles, ``tran`` in-subarray
            TRANs, ``bus`` cross-subarray TRANs) — the closed-form
            inputs, before overlap.
        pim_vpcs / move_vpcs: command counters (match the simulator's).
        commands: total trace commands.
        ops: source operations modelled.
        cross_trans: cross-subarray TRAN count (bus traffic).
    """

    workload: str
    time_ns: float
    energy: EnergyBreakdown
    time_breakdown: TimeBreakdown
    category_ns: Dict[str, float]
    pim_vpcs: int
    move_vpcs: int
    commands: int
    ops: int
    cross_trans: int

    @property
    def total_pj(self) -> float:
        return self.energy.total_pj

    def to_run_stats(
        self, platform: str = PREDICTED_PLATFORM
    ) -> RunStats:
        """Repackage as a ``RunStats`` so sweep/report code is reusable."""
        stats = RunStats(
            platform=platform,
            workload=self.workload,
            time_ns=self.time_ns,
            time_breakdown=self.time_breakdown,
            energy=self.energy,
        )
        stats.bump("pim_vpcs", self.pim_vpcs)
        stats.bump("move_vpcs", self.move_vpcs)
        stats.bump("predicted", 1)
        return stats

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "time_ns": self.time_ns,
            "energy_pj": {
                "read": self.energy.read_pj,
                "write": self.energy.write_pj,
                "shift": self.energy.shift_pj,
                "compute": self.energy.compute_pj,
                "total": self.energy.total_pj,
            },
            "category_ns": dict(self.category_ns),
            "pim_vpcs": self.pim_vpcs,
            "move_vpcs": self.move_vpcs,
            "commands": self.commands,
            "ops": self.ops,
            "cross_trans": self.cross_trans,
        }


@dataclass
class _OpStructure:
    """Timing-independent topology of one source operation."""

    start: int
    end: int
    count_end: int  # cumulative commands through this op
    src_subs: np.ndarray  # unique source subarrays (busy floor)
    load_subs: np.ndarray  # unique subarrays receiving load
    load_pos: np.ndarray  # concat entry -> position in load_subs
    grp_rem: np.ndarray  # op-local cmd idx with operand copies
    grp_res: np.ndarray  # op-local cmd idx with result copies
    grp_cross: np.ndarray  # op-local cmd idx of cross TRANs
    # Bus event table (empty arrays when the op has no cross TRANs).
    # Every field below is a pure topology artefact (event order,
    # feeder pointers, reset positions); predict() only gathers through
    # them, so per-point evaluation stays a fixed number of array
    # passes.
    K: int = 0
    tr_idx: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    ev_cmd: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    res_cmds: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    respos: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    dst_flat: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    first_pos: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    seg_len: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    res_home: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    res_home_lr1: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    res_home_has1: np.ndarray = field(default_factory=lambda: np.empty(0, bool))
    lr2: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    has2: np.ndarray = field(default_factory=lambda: np.empty(0, bool))
    lr2_res_pos: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    lr2_res_rank: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    f2_clip: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    fmask: np.ndarray = field(default_factory=lambda: np.empty(0, bool))
    src_evpos: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    dst_evpos: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    src_prev_idx: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    dst_prev_idx: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    L_src: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    L_dst: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    ok_src: np.ndarray = field(default_factory=lambda: np.empty(0, bool))
    ok_dst: np.ndarray = field(default_factory=lambda: np.empty(0, bool))


def _segmented_last_reset(
    is_reset: np.ndarray, seg_id: np.ndarray
) -> np.ndarray:
    """Per event, index of the latest reset event at or before it within
    its segment (-1 when none)."""
    m = len(is_reset)
    idx = np.arange(m, dtype=np.float64)
    rp = np.where(is_reset, idx, -1.0)
    big = float(m + 2)
    last = np.maximum.accumulate(rp + seg_id * big) - seg_id * big
    return np.rint(last).astype(np.int64)


class TracePredictor:
    """Closed-form predictor for one compiled trace.

    Construction extracts every timing-independent structure —
    dependency subarrays, per-operation load targets, the bus event
    order and its feeder chains, unique ``(opcode, size)`` shapes —
    once.  :meth:`predict` then evaluates one device configuration with
    pure array arithmetic (no Python per-command loop), which is what
    makes analytic design sweeps ~100x+ faster than simulated ones.

    Args:
        trace: the compiled columnar trace.
        words_per_subarray: the geometry's subarray capacity (fixes the
            address -> subarray map; must match the device handed to
            :meth:`predict`).
        op_starts: operation boundaries; defaults to the trace's own
            (``trace.op_starts``), falling back to a single segment.
    """

    def __init__(
        self,
        trace: ColumnarTrace,
        words_per_subarray: int,
        op_starts: Optional[np.ndarray] = None,
    ) -> None:
        from repro.core.scheduler import trace_dependencies

        if words_per_subarray < 1:
            raise ValueError(
                f"words_per_subarray must be positive, got "
                f"{words_per_subarray}"
            )
        self.words_per_subarray = int(words_per_subarray)
        self.commands = len(trace)
        opcode = trace.opcode
        size = trace.size.astype(np.int64)
        compute = trace.is_compute
        self.pim_vpcs = int(compute.sum())
        self.move_vpcs = self.commands - self.pim_vpcs

        if op_starts is None:
            op_starts = trace.op_starts
        slices = (
            [] if self.commands == 0 else [(0, self.commands)]
        )
        if op_starts is not None and len(op_starts):
            starts = np.asarray(op_starts, dtype=np.int64).tolist()
            slices = list(zip(starts, starts[1:] + [self.commands]))
        self.ops = len(slices)

        if self.commands == 0:
            self.n_subs = 1
            self.cross_trans = 0
            self._ops: List[_OpStructure] = []
            self._prof_protos: List[tuple] = []
            self._prof_inv = np.empty(0, np.int64)
            self._word_uniq = np.empty(0, np.int64)
            self._inv_size = np.empty(0, np.int64)
            self._inv_res = np.empty(0, np.int64)
            self._cnt = {}
            self._cross = np.empty(0, bool)
            self._insub = np.empty(0, bool)
            self._has_op = np.empty(0, bool)
            return

        deps = trace_dependencies(trace, self.words_per_subarray)
        home = deps.home.astype(np.int64)
        remote = deps.remote.astype(np.int64)
        dest = deps.dest.astype(np.int64)
        cross = deps.uses_bus.astype(bool)
        insub = (opcode == TRAN_BYTE) & ~cross
        has_op = remote >= 0
        has_res = compute & (dest >= 0)
        profiled = compute | ~cross
        self.cross_trans = int(cross.sum())
        self.n_subs = int(
            max(home.max(), remote.max(), dest.max()) + 1
        )
        self._cross = cross
        self._insub = insub
        self._has_op = has_op

        # Unique (opcode, size) shapes -> engine profile protos.
        key = (opcode.astype(np.int64) << 48) | size
        uniq, inverse = np.unique(key, return_inverse=True)
        self._prof_inv = inverse
        self._prof_protos = []
        for packed in uniq.tolist():
            code = packed >> 48
            words = packed & ((1 << 48) - 1)
            vpc_opcode = BYTE_TO_OPCODE[code]
            if vpc_opcode is VPCOpcode.TRAN:
                proto = VPC.tran(0, 0, words)
            else:
                proto = VPC(vpc_opcode, 0, 0, 0, words)
            self._prof_protos.append(proto)

        # Unique copy word counts (operand/cross copies move `size`
        # words; result copies move 1 word for MUL, `size` otherwise).
        result_words = np.where(opcode == MUL_BYTE, 1, size)
        self._word_uniq = np.unique(
            np.concatenate((size, result_words))
        )
        self._inv_size = np.searchsorted(self._word_uniq, size)
        self._inv_res = np.searchsorted(self._word_uniq, result_words)

        # Static occurrence counts for the exact energy / category sums.
        n_p = len(uniq)
        n_w = len(self._word_uniq)
        self._cnt = {
            "prof_profiled": np.bincount(
                inverse[profiled], minlength=n_p
            ).astype(np.float64),
            "prof_compute": np.bincount(
                inverse[compute], minlength=n_p
            ).astype(np.float64),
            "prof_insub": np.bincount(
                inverse[insub], minlength=n_p
            ).astype(np.float64),
            "w_operand": np.bincount(
                self._inv_size[has_op], minlength=n_w
            ).astype(np.float64),
            "w_cross": np.bincount(
                self._inv_size[cross], minlength=n_w
            ).astype(np.float64),
            "w_result": np.bincount(
                self._inv_res[has_res], minlength=n_w
            ).astype(np.float64),
        }

        self._ops = [
            self._build_op(
                s, e, home, remote, dest, cross, has_op, has_res
            )
            for s, e in slices
        ]

    # ------------------------------------------------------------------
    def _build_op(
        self, s, e, home, remote, dest, cross, has_op, has_res
    ) -> _OpStructure:
        n = e - s
        h = home[s:e]
        r = remote[s:e]
        d = dest[s:e]
        cr = cross[s:e]
        ho = has_op[s:e]
        hr = has_res[s:e]
        grp_rem = np.flatnonzero(ho)
        grp_res = np.flatnonzero(hr)
        grp_cross = np.flatnonzero(cr)
        concat_subs = np.concatenate(
            (h, r[grp_rem], d[grp_res], d[grp_cross])
        )
        load_subs = np.unique(concat_subs)
        load_pos = np.searchsorted(load_subs, concat_subs)
        src_subs = np.unique(np.concatenate((h, r[grp_rem])))
        op = _OpStructure(
            start=int(s),
            end=int(e),
            count_end=int(e),
            src_subs=src_subs,
            load_subs=load_subs,
            load_pos=load_pos,
            grp_rem=grp_rem,
            grp_res=grp_res,
            grp_cross=grp_cross,
        )
        K = len(grp_cross)
        if K == 0:
            return op

        tr_idx = grp_cross
        k_of = np.full(n, -1, dtype=np.int64)
        k_of[tr_idx] = np.arange(K)

        # Event table: home occupancy of every command (rank 1; kind 2
        # when the command is a cross TRAN, else 0), result-copy joins
        # on the destination subarray (rank 2, kind 1), and cross-TRAN
        # arrivals on the destination (rank 1, kind 3).
        ev_sub = np.concatenate((h, d[grp_res], d[tr_idx]))
        ev_cmd = np.concatenate((np.arange(n), grp_res, tr_idx))
        ev_rank = np.concatenate(
            (
                np.full(n, 1, np.int64),
                np.full(len(grp_res), 2, np.int64),
                np.full(K, 1, np.int64),
            )
        )
        ev_kind = np.concatenate(
            (
                np.where(cr, 2, 0).astype(np.int64),
                np.full(len(grp_res), 1, np.int64),
                np.full(K, 3, np.int64),
            )
        )
        order = np.lexsort((ev_rank, ev_cmd, ev_sub))
        ev_sub = ev_sub[order]
        ev_cmd = ev_cmd[order]
        ev_kind = ev_kind[order]
        m = len(ev_sub)
        seg_start = np.zeros(m, dtype=bool)
        seg_start[0] = True
        seg_start[1:] = ev_sub[1:] != ev_sub[:-1]
        seg_id = (np.cumsum(seg_start) - 1).astype(np.float64)
        first_pos = np.flatnonzero(seg_start)
        seg_len = np.diff(np.append(first_pos, m))

        is_cross_ev = (ev_kind == 2) | (ev_kind == 3)
        is_res_ev = ev_kind == 1

        # Pass 1: feeders with only cross events as resets.
        lr1 = _segmented_last_reset(is_cross_ev, seg_id)
        has1 = lr1 >= 0
        lr1_safe = np.where(has1, lr1, 0)
        fvals1 = np.full(m, -1, dtype=np.int64)
        fvals1[is_cross_ev] = k_of[ev_cmd[is_cross_ev]]
        f1 = np.where(has1, fvals1[lr1_safe], -1)

        # Home-side event position of every command (kind 0 or 2).
        home_ev = (ev_kind == 0) | (ev_kind == 2)
        home_evpos = np.empty(n, dtype=np.int64)
        home_evpos[ev_cmd[home_ev]] = np.flatnonzero(home_ev)
        respos = np.flatnonzero(is_res_ev)
        res_home = home_evpos[ev_cmd[respos]]

        # Pass 2: result joins also reset (they import the home side's
        # feeder and accumulated appendage).
        lr2 = _segmented_last_reset(is_cross_ev | is_res_ev, seg_id)
        has2 = lr2 >= 0
        lr2_safe = np.where(has2, lr2, 0)
        fvals2 = fvals1.copy()
        fvals2[respos] = f1[res_home]
        f2 = np.where(has2, fvals2[lr2_safe], -1)
        prevf = np.empty(m, dtype=np.int64)
        prevf[0] = -1
        prevf[1:] = f2[:-1]
        prevf[seg_start] = -1

        # Resets whose appendage base is a result join (vs zero).
        lr2_res_pos = np.flatnonzero(has2 & is_res_ev[lr2_safe])
        lr2_res_rank = np.searchsorted(respos, lr2_safe[lr2_res_pos])

        cmask = ev_kind == 2
        dmask = ev_kind == 3
        src_evpos = np.empty(K, dtype=np.int64)
        src_evpos[k_of[ev_cmd[cmask]]] = np.flatnonzero(cmask)
        dst_evpos = np.empty(K, dtype=np.int64)
        dst_evpos[k_of[ev_cmd[dmask]]] = np.flatnonzero(dmask)
        karr = np.arange(K)
        pf_src = prevf[src_evpos]
        pf_dst = prevf[dst_evpos]

        op.K = K
        op.tr_idx = tr_idx
        op.ev_cmd = ev_cmd
        op.res_cmds = ev_cmd[respos]
        op.respos = respos
        op.dst_flat = np.flatnonzero(dmask)
        op.first_pos = first_pos
        op.seg_len = seg_len
        op.res_home = res_home
        op.res_home_lr1 = lr1_safe[res_home]
        op.res_home_has1 = has1[res_home]
        op.lr2 = lr2_safe
        op.has2 = has2
        op.lr2_res_pos = lr2_res_pos
        op.lr2_res_rank = lr2_res_rank
        op.f2_clip = np.clip(f2, 0, K - 1)
        op.fmask = f2 >= 0
        op.src_evpos = src_evpos
        op.dst_evpos = dst_evpos
        op.src_prev_idx = np.maximum(src_evpos - 1, 0)
        op.dst_prev_idx = np.maximum(dst_evpos - 1, 0)
        op.L_src = np.maximum(karr - pf_src, 1)
        op.L_dst = np.maximum(karr - pf_dst, 1)
        op.ok_src = pf_src >= 0
        op.ok_dst = pf_dst >= 0
        return op

    # ------------------------------------------------------------------
    def predict(
        self, device, workload: str = "trace"
    ) -> PredictedStats:
        """Evaluate one device configuration against this trace.

        ``device`` is anything with the device cost surface —
        a :class:`~repro.core.device.StreamPIMDevice` or the lighter
        :class:`AnalyticDevice` — whose geometry matches the
        ``words_per_subarray`` this predictor was built with.
        """
        if device.address_map.words_per_subarray != self.words_per_subarray:
            raise ValueError(
                f"geometry mismatch: predictor built for "
                f"{self.words_per_subarray} words/subarray, device has "
                f"{device.address_map.words_per_subarray}"
            )
        if self.commands == 0:
            return PredictedStats(
                workload=workload,
                time_ns=0.0,
                energy=EnergyBreakdown(),
                time_breakdown=TimeBreakdown(),
                category_ns={
                    "copy": 0.0, "exec": 0.0, "tran": 0.0, "bus": 0.0
                },
                pim_vpcs=0,
                move_vpcs=0,
                commands=0,
                ops=0,
                cross_trans=0,
            )

        # ---- per-unique-shape cost tables -------------------------------
        n_p = len(self._prof_protos)
        prof_tbl = np.empty(n_p)
        prof_shift_tbl = np.empty(n_p)
        prof_comp_tbl = np.empty(n_p)
        profile = device.engine_model.profile
        for j, proto in enumerate(self._prof_protos):
            p = profile(proto)
            prof_tbl[j] = p.time_ns
            prof_shift_tbl[j] = p.energy.shift_pj
            prof_comp_tbl[j] = p.energy.compute_pj
        model = device.config.prep_model
        n_w = len(self._word_uniq)
        cost_tbl = np.empty(n_w)
        cost_read_tbl = np.empty(n_w)
        cost_write_tbl = np.empty(n_w)
        for j, count in enumerate(self._word_uniq.tolist()):
            cost_tbl[j] = device._copy_cost_ns(count)
            reads = math.ceil(count / model.access_width_words)
            writes = math.ceil(count / model.write_access_width_words)
            cost_read_tbl[j] = reads * device.timing.read_pj
            cost_write_tbl[j] = writes * device.timing.write_pj

        # ---- exact energy (the engine's three static slots) -------------
        cnt = self._cnt
        copies_read = (
            cnt["w_operand"] + cnt["w_cross"]
        ) @ cost_read_tbl + cnt["w_result"] @ cost_read_tbl
        copies_write = (
            cnt["w_operand"] + cnt["w_cross"]
        ) @ cost_write_tbl + cnt["w_result"] @ cost_write_tbl
        energy = EnergyBreakdown(
            read_pj=float(copies_read),
            write_pj=float(copies_write),
            shift_pj=float(cnt["prof_profiled"] @ prof_shift_tbl),
            compute_pj=float(cnt["prof_profiled"] @ prof_comp_tbl),
        )

        # ---- static per-category busy sums ------------------------------
        category_ns = {
            "copy": float(
                cnt["w_operand"] @ cost_tbl + cnt["w_result"] @ cost_tbl
            ),
            "exec": float(cnt["prof_compute"] @ prof_tbl),
            "tran": float(cnt["prof_insub"] @ prof_tbl),
            "bus": float(cnt["w_cross"] @ cost_tbl),
        }

        # ---- per-command duration columns -------------------------------
        prof = prof_tbl[self._prof_inv]
        copy = cost_tbl[self._inv_size]
        res = cost_tbl[self._inv_res]
        cross = self._cross
        insub = self._insub
        has_op = self._has_op
        dur_home = np.where(
            cross,
            0.0,
            np.where(insub, prof, prof + np.where(has_op, copy, 0.0)),
        )
        home_load = np.where(cross, copy, dur_home)

        # ---- per-operation max-plus composition -------------------------
        decode_ns = device.config.vpc_decode_ns
        busy = np.zeros(self.n_subs)
        bus = 0.0
        total = 0.0
        for op in self._ops:
            s, e = op.start, op.end
            c_home = home_load[s:e]
            c_copy = copy[s:e]
            c_res = res[s:e]
            c_dur = dur_home[s:e]
            concat_vals = np.concatenate(
                (
                    c_home,
                    c_copy[op.grp_rem],
                    c_res[op.grp_res],
                    c_copy[op.grp_cross],
                )
            )
            load_vals = np.bincount(
                op.load_pos,
                weights=concat_vals,
                minlength=len(op.load_subs),
            )
            floor = float(busy[op.src_subs].max())
            term_a = float((busy[op.load_subs] + load_vals).max())
            term_b = floor + float(load_vals.max())
            dec_fin = op.count_end * decode_ns
            term_c = 0.0
            bus_new = bus
            if op.K:
                # Event durations: home occupancy by default, the
                # result-copy cost at join events, zero at arrivals.
                ev_dur = c_dur[op.ev_cmd]
                res_dur = c_res[op.res_cmds]
                ev_dur[op.respos] = res_dur
                ev_dur[op.dst_flat] = 0.0
                # Within-segment inclusive cumulative duration.
                cd = np.cumsum(ev_dur)
                seg_base = np.repeat(
                    cd[op.first_pos] - ev_dur[op.first_pos], op.seg_len
                )
                cd -= seg_base
                # Appendage of each result join on its home side
                # (pass-1 feeders: cross resets only).
                a1_res = cd[op.res_home] - np.where(
                    op.res_home_has1, cd[op.res_home_lr1], 0.0
                )
                reset_a_res = a1_res + res_dur
                # appendage = cd - (cd[last reset] - resetA[last reset])
                shift = np.where(op.has2, cd[op.lr2], 0.0)
                if len(op.lr2_res_pos):
                    shift[op.lr2_res_pos] -= reset_a_res[op.lr2_res_rank]
                appendage = cd - shift
                c = c_copy[op.tr_idx]
                period = c.copy()
                np.maximum(
                    period,
                    np.where(
                        op.ok_src,
                        (appendage[op.src_prev_idx] + c) / op.L_src,
                        0.0,
                    ),
                    out=period,
                )
                np.maximum(
                    period,
                    np.where(
                        op.ok_dst,
                        (appendage[op.dst_prev_idx] + c) / op.L_dst,
                        0.0,
                    ),
                    out=period,
                )
                chain = np.cumsum(period)
                base = max(bus, floor)
                t_hat = (
                    np.where(op.fmask, base + chain[op.f2_clip], floor)
                    + appendage
                )
                term_c = float(t_hat.max())
                bus_new = base + float(chain[-1])
            finish = max(dec_fin, term_a, term_b, term_c)
            busy[op.load_subs] = finish
            if op.K:
                bus = max(bus_new, bus)
            total = max(total, finish)

        # ---- breakdown mirror (proportional overlap) --------------------
        rw_sum = category_ns["copy"] + category_ns["bus"]
        pim_sum = category_ns["exec"] + category_ns["tran"]
        overlapped = min(
            max(rw_sum + pim_sum - total, 0.0), min(rw_sum, pim_sum)
        )
        rw_excl = rw_sum - overlapped
        breakdown = TimeBreakdown(
            read_ns=0.3 * rw_excl,
            write_ns=0.7 * rw_excl,
            process_ns=pim_sum - overlapped,
            overlapped_ns=overlapped,
        )
        return PredictedStats(
            workload=workload,
            time_ns=total,
            energy=energy,
            time_breakdown=breakdown,
            category_ns=category_ns,
            pim_vpcs=self.pim_vpcs,
            move_vpcs=self.move_vpcs,
            commands=self.commands,
            ops=self.ops,
            cross_trans=self.cross_trans,
        )


def predict_trace(
    device,
    trace: ColumnarTrace,
    workload: str = "trace",
    op_starts: Optional[np.ndarray] = None,
) -> PredictedStats:
    """One-shot prediction of ``trace`` on ``device``.

    Convenience wrapper over :class:`TracePredictor` for callers that
    evaluate a single configuration; sweeps should build the predictor
    once and call :meth:`TracePredictor.predict` per point.
    """
    predictor = TracePredictor(
        trace,
        device.address_map.words_per_subarray,
        op_starts=op_starts,
    )
    return predictor.predict(device, workload=workload)


def predict_workload(
    spec,
    device=None,
    seed: int = 7,
    cache=None,
    cache_dir=None,
    use_cache: bool = True,
) -> PredictedStats:
    """Compile ``spec`` (through the trace cache) and predict its run.

    The compiled trace carries operation boundaries, so the prediction
    uses the full per-operation model.  Emits ``predictor.*`` metrics
    when the device has an observation collector attached.
    """
    import time as _time

    from repro.core.compile import compile_workload

    compiled = compile_workload(
        spec,
        device=device,
        seed=seed,
        cache=cache,
        cache_dir=cache_dir,
        use_cache=use_cache,
    )
    dev = compiled.device
    wall0 = _time.perf_counter()
    predicted = predict_trace(
        dev, compiled.trace, workload=spec.name
    )
    wall = _time.perf_counter() - wall0
    obs = getattr(dev, "obs", None)
    if obs is not None and getattr(obs, "enabled", False):
        from repro.obs.predictor_metrics import record_prediction

        record_prediction(
            obs, predicted, predict_seconds=wall,
            cache_hit=compiled.cache_hit,
        )
    return predicted
