"""End-to-end composition for DNN workloads (section V-E, Fig. 23).

The PIM platforms accelerate only the matrix operations; nonlinear layers
(softmax, layer norm, activations) stay on the CPU.  A workload's
``nonlinear_flop_fraction`` gives the share of the *CPU-DRAM end-to-end
time* those layers take, so:

    cpu_e2e      = cpu_matrix_time / (1 - f)
    platform_e2e = platform_matrix_time + f * cpu_e2e
    speedup      = cpu_e2e / platform_e2e

This is Amdahl's law with the non-offloadable part pinned to CPU-DRAM
speed — which is why the paper's BERT speed-up saturates near 1/f.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import Platform
from repro.sim.stats import RunStats
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class EndToEndResult:
    """End-to-end figures for one platform on one DNN workload."""

    platform: str
    workload: str
    matrix_ns: float
    nonlinear_ns: float
    cpu_e2e_ns: float

    @property
    def total_ns(self) -> float:
        return self.matrix_ns + self.nonlinear_ns

    @property
    def speedup_vs_cpu(self) -> float:
        return self.cpu_e2e_ns / self.total_ns


def end_to_end_speedup(
    platform: Platform,
    cpu_reference: Platform,
    workload: WorkloadSpec,
    platform_stats: RunStats | None = None,
    cpu_stats: RunStats | None = None,
) -> EndToEndResult:
    """End-to-end speed-up of ``platform`` over the CPU reference.

    Args:
        platform: the PIM (or other) platform under test.
        cpu_reference: the platform that runs the nonlinear layers
            (CPU-DRAM in the paper's Fig. 23).
        workload: a spec with a ``nonlinear_flop_fraction``.
        platform_stats / cpu_stats: pre-computed matrix-part stats, to
            avoid re-running (optional).
    """
    f = workload.nonlinear_flop_fraction
    if cpu_stats is None:
        cpu_stats = cpu_reference.run(workload)
    if platform_stats is None:
        platform_stats = platform.run(workload)
    cpu_e2e = cpu_stats.time_ns / (1.0 - f)
    nonlinear = cpu_e2e * f
    return EndToEndResult(
        platform=platform.name,
        workload=workload.name,
        matrix_ns=platform_stats.time_ns,
        nonlinear_ns=nonlinear,
        cpu_e2e_ns=cpu_e2e,
    )
