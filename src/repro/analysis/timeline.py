"""Schedule timelines: when preparation and compute actually run.

The ``unblock`` optimisation is about *when* things happen — preparation
flowing behind compute.  This module reconstructs interval timelines
from a round plan under each scheduling policy, exports them as CSV, and
renders an ASCII Gantt chart, making the Fig. 22 mechanism visible:

    prep    |▒▒▒░░░░▒▒▒░░░░            |   (blocked: serialised)
    compute |   ████   ████            |

    prep    |▒▒▒▒▒▒                    |   (unblock: overlapped)
    compute |█████████                 |
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import List, Optional, Sequence, TextIO, Union

from repro.core.scheduler import Round, Scheduler, SchedulerPolicy


@dataclass(frozen=True)
class Interval:
    """One busy interval of one lane."""

    lane: str  # "prep" or "compute"
    start_ns: float
    end_ns: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end_ns < self.start_ns:
            raise ValueError("interval ends before it starts")

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


def schedule_timeline(
    scheduler: Scheduler, rounds: Sequence[Round]
) -> List[Interval]:
    """Reconstruct the prep/compute interval timeline of a round plan.

    Serial policies alternate prep and compute; under ``unblock`` the
    compute lane runs back-to-back after the startup copy while the prep
    lane streams continuously beside it (the fluid software-pipelining
    model of the scheduler).
    """
    intervals: List[Interval] = []
    if not rounds:
        return intervals
    if not scheduler.policy.overlaps_prep:
        clock = 0.0
        for index, round_ in enumerate(rounds):
            prep = scheduler.prep_duration_ns(round_)
            if prep > 0:
                intervals.append(
                    Interval("prep", clock, clock + prep, round_.label)
                )
                clock += prep
            if round_.compute_ns > 0:
                intervals.append(
                    Interval(
                        "compute",
                        clock,
                        clock + round_.compute_ns,
                        round_.label or f"round {index}",
                    )
                )
                clock += round_.compute_ns
        return intervals

    first = rounds[0]
    startup = scheduler.prep_duration_ns(first) / max(1, first.prep_targets)
    if startup > 0:
        intervals.append(Interval("prep", 0.0, startup, "startup copy"))
    compute_clock = startup
    prep_clock = startup
    for index, round_ in enumerate(rounds):
        if round_.compute_ns > 0:
            intervals.append(
                Interval(
                    "compute",
                    compute_clock,
                    compute_clock + round_.compute_ns,
                    round_.label or f"round {index}",
                )
            )
            compute_clock += round_.compute_ns
        prep = scheduler.prep_duration_ns(round_)
        remaining = prep - (startup if index == 0 else 0.0)
        if remaining > 0:
            intervals.append(
                Interval(
                    "prep",
                    prep_clock,
                    prep_clock + remaining,
                    round_.label,
                )
            )
            prep_clock += remaining
    return intervals


def timeline_to_csv(
    intervals: Sequence[Interval],
    target: Union[str, TextIO],
) -> None:
    """Write a timeline as CSV (lane, start_ns, end_ns, label).

    Labels are emitted through the :mod:`csv` module, so commas, quotes
    and newlines in round labels survive quoting intact instead of
    corrupting the row structure; :func:`timeline_from_csv` reads the
    file back losslessly (timestamps are rounded to 3 decimals on the
    way out).
    """
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8", newline="") as handle:
            timeline_to_csv(intervals, handle)
        return
    writer = csv.writer(target, lineterminator="\n")
    writer.writerow(["lane", "start_ns", "end_ns", "label"])
    for interval in intervals:
        writer.writerow(
            [
                interval.lane,
                f"{interval.start_ns:.3f}",
                f"{interval.end_ns:.3f}",
                interval.label,
            ]
        )


def timeline_from_csv(
    source: Union[str, TextIO],
) -> List[Interval]:
    """Read a :func:`timeline_to_csv` file back into intervals."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8", newline="") as handle:
            return timeline_from_csv(handle)
    reader = csv.reader(source)
    header = next(reader, None)
    if header != ["lane", "start_ns", "end_ns", "label"]:
        raise ValueError(f"unrecognised timeline CSV header: {header!r}")
    intervals = []
    for row in reader:
        if not row:
            continue
        if len(row) != 4:
            raise ValueError(f"malformed timeline CSV row: {row!r}")
        lane, start, end, label = row
        intervals.append(Interval(lane, float(start), float(end), label))
    return intervals


def render_gantt(
    intervals: Sequence[Interval], width: int = 60
) -> str:
    """ASCII Gantt chart: one row per lane, time left to right."""
    if not intervals:
        raise ValueError("empty timeline")
    if width <= 0:
        raise ValueError("width must be positive")
    span = max(interval.end_ns for interval in intervals)
    if span <= 0:
        raise ValueError("timeline has zero span")
    lanes = []
    for lane in ("prep", "compute"):
        if any(i.lane == lane for i in intervals):
            lanes.append(lane)
    glyphs = {"prep": "▒", "compute": "█"}
    rows = []
    for lane in lanes:
        cells = [" "] * width
        for interval in intervals:
            if interval.lane != lane:
                continue
            first = int(interval.start_ns / span * width)
            last = max(first + 1, int(interval.end_ns / span * width))
            for cell in range(first, min(last, width)):
                cells[cell] = glyphs[lane]
        rows.append(f"{lane.rjust(7)} |{''.join(cells)}|")
    rows.append(f"{'':7s}  0 {'-' * (width - 12)} {span / 1e3:.1f} us")
    return "\n".join(rows)
