"""Device datasheet: derived headline figures of one configuration.

Collects the quantities a datasheet (or a reviewer) would ask for —
capacity, peak PIM throughput, bus bandwidth, energy per operation,
area split — all derived from the configured models rather than stated
independently, so they stay consistent with the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.area import AreaModel
from repro.core.device import StreamPIMConfig
from repro.core.processor import RMProcessor
from repro.core.rmbus import RMBus
from repro.isa.vpc import VPCOpcode


@dataclass(frozen=True)
class Datasheet:
    """Derived headline figures of one StreamPIM configuration."""

    capacity_gib: float
    pim_subarrays: int
    core_mhz: float
    #: Dot-product element rate of one processor (elements/s).
    processor_element_rate: float
    #: Aggregate multiply-accumulate rate of the device (MAC/s).
    peak_macs_per_second: float
    #: One RM bus's steady-state bandwidth (bytes/s).
    bus_bandwidth_gbps: float
    #: Energy of one MAC at the processor (pJ).
    energy_per_mac_pj: float
    #: Aggregate efficiency (MAC/s per watt at peak).
    macs_per_joule: float
    bus_area_fraction: float
    processor_area_fraction: float

    def render(self) -> str:
        """Human-readable datasheet block."""
        lines = [
            f"capacity            : {self.capacity_gib:.0f} GiB",
            f"PIM subarrays       : {self.pim_subarrays}",
            f"core clock          : {self.core_mhz:.0f} MHz",
            f"per-processor rate  : "
            f"{self.processor_element_rate / 1e6:.1f} M elements/s",
            f"peak device rate    : "
            f"{self.peak_macs_per_second / 1e9:.2f} GMAC/s",
            f"RM bus bandwidth    : {self.bus_bandwidth_gbps:.2f} GB/s "
            f"per subarray",
            f"energy per MAC      : {self.energy_per_mac_pj:.2f} pJ",
            f"efficiency          : "
            f"{self.macs_per_joule / 1e12:.2f} TMAC/J",
            f"bus area            : {self.bus_area_fraction:.2%}",
            f"processor area      : {self.processor_area_fraction:.2%}",
        ]
        return "\n".join(lines)


def build_datasheet(config: Optional[StreamPIMConfig] = None) -> Datasheet:
    """Derive the datasheet of a device configuration."""
    config = config or StreamPIMConfig()
    timing = config.timing
    processor = RMProcessor(config.processor, timing)
    bus = RMBus(config.bus, timing)
    geometry = config.geometry

    interval = processor.initiation_interval(VPCOpcode.MUL)
    cycles_per_second = timing.core_freq_mhz * 1e6
    element_rate = cycles_per_second / interval
    peak_macs = element_rate * geometry.pim_subarrays

    # Bus steady state: one chunk per two cycles.
    words_per_second = (
        bus.config.words_per_segment * cycles_per_second / 2.0
    )
    bus_bandwidth = words_per_second * (bus.config.word_bits / 8) / 1e9

    energy_per_mac = timing.pim_mul_pj + timing.pim_add_pj
    macs_per_joule = 1e12 / energy_per_mac  # pJ -> J

    area = AreaModel(geometry, config.bus, config.processor).breakdown()
    return Datasheet(
        capacity_gib=geometry.capacity_bytes / 2**30,
        pim_subarrays=geometry.pim_subarrays,
        core_mhz=timing.core_freq_mhz,
        processor_element_rate=element_rate,
        peak_macs_per_second=peak_macs,
        bus_bandwidth_gbps=bus_bandwidth,
        energy_per_mac_pj=energy_per_mac,
        macs_per_joule=macs_per_joule,
        bus_area_fraction=area.fraction("bus"),
        processor_area_fraction=area.fraction("processor"),
    )
