"""Area model (section V-G): domain counting.

The paper estimates area by counting the domains of each component.  With
the default configuration it reports:

* RM bus: 1.8 % of the total device area;
* RM processor: 0.1 % of the total device area;
* transfer tracks: 3.1 % of the (PIM) bank area;
* control logic: ~1.0 % of the bank area.

Domain counting here follows the same structural reasoning:

* a *save track* costs its data domains, the shift-overhead domains, and
  its access ports — a port (MTJ stack, sense amplifier, write driver,
  access transistors) dwarfs a magnetic domain, which is exactly why
  ports are shared across many domains in the first place;
* a *transfer track* has no access ports (it only feeds the RM bus), so
  it is several times cheaper than a save track — this is how 1/9 of the
  PIM tracks come to only ~3 % of the bank area;
* the *RM bus* carries a full row (one wire per save track) across the
  mats it connects;
* the *RM processor* is dominated not by its logic gates but by the
  operand staging racetracks that buffer the inbound vector stream at
  bus width.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.processor import RMProcessorConfig
from repro.core.rmbus import RMBusConfig
from repro.dwlogic.adder import AdderTree
from repro.rm.address import DeviceGeometry


@dataclass(frozen=True)
class AreaBreakdown:
    """Domain(-equivalent) counts per component."""

    mat_domains: float
    transfer_track_domains: float
    bus_domains: float
    processor_domains: float
    control_domains: float

    @property
    def total_domains(self) -> float:
        return (
            self.mat_domains
            + self.transfer_track_domains
            + self.bus_domains
            + self.processor_domains
            + self.control_domains
        )

    def fraction(self, component: str) -> float:
        """Share of the total device area for one component."""
        value = getattr(self, f"{component}_domains")
        return value / self.total_domains


class AreaModel:
    """Counts domain-equivalents for each component of the device."""

    #: Domain-equivalents of one access port (MTJ + sense amplifier +
    #: write driver + access transistors).
    PORT_AREA_DOMAINS = 4608
    #: Mats an RM bus spans within a subarray (the PIM-facing half).
    BUS_SPAN_MATS = 8
    #: Domains of one operand staging wire in the processor.
    STAGING_DOMAINS_PER_WIRE = 768
    #: Operand staging buffers per processor (two inbound streams).
    STAGING_BUFFERS = 2
    #: Domains per logic gate (input, bias, output and coupling region).
    GATE_DOMAINS = 4
    #: Extra nanowire length per duplicator bit (fan-out + diode loop).
    DUPLICATOR_DOMAINS_PER_BIT = 6
    #: Control logic overhead relative to bank array area (paper: ~1 %).
    CONTROL_FRACTION_OF_BANK = 0.01

    def __init__(
        self,
        geometry: DeviceGeometry | None = None,
        bus: RMBusConfig | None = None,
        processor: RMProcessorConfig | None = None,
    ) -> None:
        self.geometry = geometry or DeviceGeometry()
        self.bus = bus or RMBusConfig()
        self.processor = processor or RMProcessorConfig()

    # ------------------------------------------------------------------
    # Per-track costs
    # ------------------------------------------------------------------
    def _overhead_domains(self) -> int:
        mat = self.geometry.bank.subarray.mat
        return 2 * (mat.domains_per_track // mat.ports_per_track)

    def save_track_domains(self) -> float:
        """Domain-equivalents of one save track (ports included)."""
        mat = self.geometry.bank.subarray.mat
        return (
            mat.domains_per_track
            + self._overhead_domains()
            + mat.ports_per_track * self.PORT_AREA_DOMAINS
        )

    def transfer_track_domains_each(self) -> float:
        """Domain-equivalents of one (portless) transfer track."""
        mat = self.geometry.bank.subarray.mat
        return mat.domains_per_track + self._overhead_domains()

    # ------------------------------------------------------------------
    # Component totals
    # ------------------------------------------------------------------
    def mat_domains(self) -> float:
        sub = self.geometry.bank.subarray
        per_mat = sub.mat.save_tracks * self.save_track_domains()
        return per_mat * self.geometry.total_subarrays * sub.mats

    def transfer_track_domains(self) -> float:
        sub = self.geometry.bank.subarray
        per_mat = sub.mat.transfer_tracks * self.transfer_track_domains_each()
        return per_mat * self.geometry.pim_subarrays * sub.pim_mats

    def bus_domains(self) -> float:
        """RM-bus domains: one wire per save track, spanning the mats."""
        mat = self.geometry.bank.subarray.mat
        per_bus = (
            mat.save_tracks * self.BUS_SPAN_MATS * mat.domains_per_track
        )
        return float(self.geometry.pim_subarrays * per_bus)

    def processor_domains(self) -> float:
        cfg = self.processor
        bits = cfg.word_bits
        mat = self.geometry.bank.subarray.mat
        staging = (
            self.STAGING_BUFFERS
            * mat.save_tracks
            * self.STAGING_DOMAINS_PER_WIRE
        )
        duplicators = cfg.duplicators * bits * self.DUPLICATOR_DOMAINS_PER_BIT
        multiplier = bits * bits * self.GATE_DOMAINS
        tree = AdderTree(bits).adder_count * 2 * bits * 11 * self.GATE_DOMAINS
        circle = cfg.accumulator_bits * (11 * self.GATE_DOMAINS + 4)
        per_processor = staging + duplicators + multiplier + tree + circle
        return float(self.geometry.pim_subarrays * per_processor)

    def control_domains(self) -> float:
        per_bank = (
            self.mat_domains() / self.geometry.banks
        ) * self.CONTROL_FRACTION_OF_BANK
        return per_bank * self.geometry.banks

    # ------------------------------------------------------------------
    def breakdown(self) -> AreaBreakdown:
        return AreaBreakdown(
            mat_domains=self.mat_domains(),
            transfer_track_domains=self.transfer_track_domains(),
            bus_domains=self.bus_domains(),
            processor_domains=self.processor_domains(),
            control_domains=self.control_domains(),
        )

    def transfer_fraction_of_pim_bank_area(self) -> float:
        """Transfer-track share of the PIM banks' array area (paper: 3.1%)."""
        sub = self.geometry.bank.subarray
        pim_bank_save = (
            self.geometry.pim_subarrays
            * sub.mats
            * sub.mat.save_tracks
            * self.save_track_domains()
        )
        transfer = self.transfer_track_domains()
        return transfer / (pim_bank_save + transfer)
