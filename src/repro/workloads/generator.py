"""Deterministic random operand generation for workloads and tests."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np


def random_matrix(
    rows: int,
    cols: int,
    rng: Optional[np.random.Generator] = None,
    word_bits: int = 8,
    seed: int = 7,
) -> np.ndarray:
    """An unsigned ``word_bits``-wide random integer matrix.

    Args:
        rows: row count.
        cols: column count.
        rng: generator to draw from; a seeded default is created if None.
        word_bits: operand width (values in ``[0, 2**word_bits)``).
        seed: seed for the default generator.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError(f"shape must be positive, got {rows}x{cols}")
    if word_bits <= 0:
        raise ValueError(f"word_bits must be positive, got {word_bits}")
    if rng is None:
        rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << word_bits, size=(rows, cols), dtype=np.int64)


def random_vector(
    length: int,
    rng: Optional[np.random.Generator] = None,
    word_bits: int = 8,
    seed: int = 7,
) -> np.ndarray:
    """An unsigned random vector (1-D)."""
    return random_matrix(1, length, rng=rng, word_bits=word_bits, seed=seed)[0]
