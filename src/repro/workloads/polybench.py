"""The nine PolyBench linear-algebra kernels of Table IV.

Dimensions follow the PolyBench/C 4.2 EXTRALARGE datasets, whose
characteristic vector dimension is the 2000 the paper quotes; the mapping
was recovered by matching Table IV's #PIM-VPC column (e.g. gemm's
4.61e6 = 2000 x 2300 dot products, syrk's 6.77e6 = 2600^2).  ``scale``
shrinks every dimension proportionally for functional tests and CI-sized
runs.

Each kernel provides both the platform-neutral op list (for analytic
baselines) and a PIM task builder (for StreamPIM platforms).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.core.task import PimTask, TaskOp
from repro.workloads.generator import random_matrix
from repro.workloads.spec import MatrixOp, MatrixOpKind, WorkloadSpec

#: Kernels whose working set is small (matrix-vector class); these are
#: the workloads Figs. 3a/3b call "small".
SMALL_KERNELS = ("atax", "bicg", "gesu", "mvt")

#: PolyBench 4.2 EXTRALARGE dimensions per kernel (see module docstring).
KERNEL_DIMS: Dict[str, Dict[str, int]] = {
    "2mm": {"ni": 1600, "nj": 1800, "nk": 2200, "nl": 2400},
    "3mm": {"ni": 1600, "nj": 1800, "nk": 2000, "nl": 2200, "nm": 2400},
    "gemm": {"ni": 2000, "nj": 2300, "nk": 2600},
    "syrk": {"n": 2600, "m": 2000},
    "syr2k": {"n": 2600, "m": 2000},
    "atax": {"m": 1800, "n": 2200},
    "bicg": {"n": 1800, "m": 1800},
    "gesu": {"n": 2800},
    "mvt": {"n": 2000},
}

#: Table IV reference counts (paper values).
PAPER_VPC_COUNTS: Dict[str, Tuple[float, float]] = {
    "2mm": (7.37e6, 7.36e6),
    "3mm": (1.19e7, 1.18e7),
    "gemm": (4.61e6, 4.60e6),
    "syrk": (6.77e6, 6.76e6),
    "syr2k": (1.36e7, 1.35e7),
    "atax": (4.00e3, 8.40e3),
    "bicg": (3.60e3, 8.00e3),
    "gesu": (5.60e3, 8.40e3),
    "mvt": (8.00e3, 1.60e4),
}

PAPER_TASKS: Dict[str, str] = {
    "2mm": "E = alpha*A*B*C + beta*D",
    "3mm": "G = (A*B)*(C*D)",
    "gemm": "C' = alpha*A*B + beta*C",
    "syrk": "C' = alpha*A*A^T + beta*C",
    "syr2k": "C' = alpha*A*B^T + alpha*B*A^T + beta*C",
    "atax": "y = A^T*(A*x)",
    "bicg": "q = A*p, s = A^T*r",
    "gesu": "y = alpha*A*x + beta*B*x",
    "mvt": "x1 = x1 + A*y1, x2 = x2 + A^T*y2",
}


def _scaled(dims: Dict[str, int], scale: float) -> Dict[str, int]:
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return {k: max(2, int(round(v * scale))) for k, v in dims.items()}


# ----------------------------------------------------------------------
# Per-kernel op lists
# ----------------------------------------------------------------------
def _ops_2mm(d: Dict[str, int]) -> List[MatrixOp]:
    ni, nj, nk, nl = d["ni"], d["nj"], d["nk"], d["nl"]
    return [
        MatrixOp(MatrixOpKind.MATMUL, (ni, nk, nj)),  # tmp = A @ B
        MatrixOp(MatrixOpKind.MAT_SCALE, (ni, nj)),  # tmp *= alpha
        MatrixOp(MatrixOpKind.MATMUL, (ni, nj, nl)),  # E = tmp @ C
        MatrixOp(MatrixOpKind.MAT_SCALE, (ni, nl)),  # D *= beta
        MatrixOp(MatrixOpKind.MAT_ADD, (ni, nl)),  # E += D
    ]


def _ops_3mm(d: Dict[str, int]) -> List[MatrixOp]:
    ni, nj, nk, nl, nm = d["ni"], d["nj"], d["nk"], d["nl"], d["nm"]
    return [
        MatrixOp(MatrixOpKind.MATMUL, (ni, nk, nj)),  # E = A @ B
        MatrixOp(MatrixOpKind.MATMUL, (nj, nm, nl)),  # F = C @ D
        MatrixOp(MatrixOpKind.MATMUL, (ni, nj, nl)),  # G = E @ F
    ]


def _ops_gemm(d: Dict[str, int]) -> List[MatrixOp]:
    ni, nj, nk = d["ni"], d["nj"], d["nk"]
    return [
        MatrixOp(MatrixOpKind.MATMUL, (ni, nk, nj)),  # P = A @ B
        MatrixOp(MatrixOpKind.MAT_SCALE, (ni, nj)),  # P *= alpha
        MatrixOp(MatrixOpKind.MAT_SCALE, (ni, nj)),  # C *= beta
        MatrixOp(MatrixOpKind.MAT_ADD, (ni, nj)),  # C += P
    ]


def _ops_syrk(d: Dict[str, int]) -> List[MatrixOp]:
    n, m = d["n"], d["m"]
    return [
        MatrixOp(MatrixOpKind.MATMUL, (n, m, n)),  # P = A @ A^T
        MatrixOp(MatrixOpKind.MAT_SCALE, (n, n)),  # P *= alpha
        MatrixOp(MatrixOpKind.MAT_SCALE, (n, n)),  # C *= beta
        MatrixOp(MatrixOpKind.MAT_ADD, (n, n)),  # C += P
    ]


def _ops_syr2k(d: Dict[str, int]) -> List[MatrixOp]:
    n, m = d["n"], d["m"]
    return [
        MatrixOp(MatrixOpKind.MATMUL, (n, m, n)),  # P = A @ B^T
        MatrixOp(MatrixOpKind.MATMUL, (n, m, n)),  # Q = B @ A^T
        MatrixOp(MatrixOpKind.MAT_SCALE, (n, n)),  # P *= alpha
        MatrixOp(MatrixOpKind.MAT_SCALE, (n, n)),  # Q *= alpha
        MatrixOp(MatrixOpKind.MAT_SCALE, (n, n)),  # C *= beta
        MatrixOp(MatrixOpKind.MAT_ADD, (n, n)),  # C += P
        MatrixOp(MatrixOpKind.MAT_ADD, (n, n)),  # C += Q
    ]


def _ops_atax(d: Dict[str, int]) -> List[MatrixOp]:
    m, n = d["m"], d["n"]
    return [
        MatrixOp(MatrixOpKind.MATVEC, (m, n)),  # tmp = A @ x
        MatrixOp(MatrixOpKind.MATVEC_T, (m, n)),  # y = A^T @ tmp
    ]


def _ops_bicg(d: Dict[str, int]) -> List[MatrixOp]:
    n, m = d["n"], d["m"]
    return [
        MatrixOp(MatrixOpKind.MATVEC, (n, m)),  # q = A @ p
        MatrixOp(MatrixOpKind.MATVEC_T, (n, m)),  # s = A^T @ r
    ]


def _ops_gesu(d: Dict[str, int]) -> List[MatrixOp]:
    n = d["n"]
    return [
        MatrixOp(MatrixOpKind.MATVEC, (n, n)),  # u = A @ x
        MatrixOp(MatrixOpKind.MATVEC, (n, n)),  # v = B @ x
        MatrixOp(MatrixOpKind.VEC_SCALE, (n,)),  # u *= alpha
        MatrixOp(MatrixOpKind.VEC_SCALE, (n,)),  # v *= beta
        MatrixOp(MatrixOpKind.VEC_ADD, (n,)),  # y = u + v
    ]


def _ops_mvt(d: Dict[str, int]) -> List[MatrixOp]:
    n = d["n"]
    return [
        MatrixOp(MatrixOpKind.MATVEC, (n, n), accumulate=True),
        MatrixOp(MatrixOpKind.MATVEC_T, (n, n), accumulate=True),
    ]


_OPS_BUILDERS: Dict[str, Callable[[Dict[str, int]], List[MatrixOp]]] = {
    "2mm": _ops_2mm,
    "3mm": _ops_3mm,
    "gemm": _ops_gemm,
    "syrk": _ops_syrk,
    "syr2k": _ops_syr2k,
    "atax": _ops_atax,
    "bicg": _ops_bicg,
    "gesu": _ops_gesu,
    "mvt": _ops_mvt,
}


# ----------------------------------------------------------------------
# Per-kernel PIM task builders
# ----------------------------------------------------------------------
def _task_2mm(d, task: PimTask, rng: np.random.Generator) -> None:
    ni, nj, nk, nl = d["ni"], d["nj"], d["nk"], d["nl"]
    task.add_matrix("A", random_matrix(ni, nk, rng))
    task.add_matrix("B", random_matrix(nk, nj, rng))
    task.add_matrix("C", random_matrix(nj, nl, rng))
    task.add_matrix("D", random_matrix(ni, nl, rng))
    task.add_matrix("tmp", shape=(ni, nj))
    task.add_matrix("E", shape=(ni, nl))
    task.add_scalar("alpha", 3)
    task.add_scalar("beta", 2)
    task.add_operation(TaskOp.MATMUL, "A", "B", "tmp")
    task.add_operation(TaskOp.MAT_SCALE, "tmp", "tmp", scalar="alpha")
    task.add_operation(TaskOp.MATMUL, "tmp", "C", "E")
    task.add_operation(TaskOp.MAT_SCALE, "D", "D", scalar="beta")
    task.add_operation(TaskOp.MAT_ADD, "E", "D", "E")


def _task_3mm(d, task: PimTask, rng: np.random.Generator) -> None:
    ni, nj, nk, nl, nm = d["ni"], d["nj"], d["nk"], d["nl"], d["nm"]
    task.add_matrix("A", random_matrix(ni, nk, rng))
    task.add_matrix("B", random_matrix(nk, nj, rng))
    task.add_matrix("C", random_matrix(nj, nm, rng))
    task.add_matrix("D", random_matrix(nm, nl, rng))
    task.add_matrix("E", shape=(ni, nj))
    task.add_matrix("F", shape=(nj, nl))
    task.add_matrix("G", shape=(ni, nl))
    task.add_operation(TaskOp.MATMUL, "A", "B", "E")
    task.add_operation(TaskOp.MATMUL, "C", "D", "F")
    task.add_operation(TaskOp.MATMUL, "E", "F", "G")


def _task_gemm(d, task: PimTask, rng: np.random.Generator) -> None:
    ni, nj, nk = d["ni"], d["nj"], d["nk"]
    task.add_matrix("A", random_matrix(ni, nk, rng))
    task.add_matrix("B", random_matrix(nk, nj, rng))
    task.add_matrix("C", random_matrix(ni, nj, rng))
    task.add_matrix("P", shape=(ni, nj))
    task.add_scalar("alpha", 3)
    task.add_scalar("beta", 2)
    task.add_operation(TaskOp.MATMUL, "A", "B", "P")
    task.add_operation(TaskOp.MAT_SCALE, "P", "P", scalar="alpha")
    task.add_operation(TaskOp.MAT_SCALE, "C", "C", scalar="beta")
    task.add_operation(TaskOp.MAT_ADD, "C", "P", "C")


def _task_syrk(d, task: PimTask, rng: np.random.Generator) -> None:
    n, m = d["n"], d["m"]
    a = random_matrix(n, m, rng)
    task.add_matrix("A", a)
    task.add_matrix("At", a.T)
    task.add_matrix("C", random_matrix(n, n, rng))
    task.add_matrix("P", shape=(n, n))
    task.add_scalar("alpha", 3)
    task.add_scalar("beta", 2)
    task.add_operation(TaskOp.MATMUL, "A", "At", "P")
    task.add_operation(TaskOp.MAT_SCALE, "P", "P", scalar="alpha")
    task.add_operation(TaskOp.MAT_SCALE, "C", "C", scalar="beta")
    task.add_operation(TaskOp.MAT_ADD, "C", "P", "C")


def _task_syr2k(d, task: PimTask, rng: np.random.Generator) -> None:
    n, m = d["n"], d["m"]
    a = random_matrix(n, m, rng)
    b = random_matrix(n, m, rng)
    task.add_matrix("A", a)
    task.add_matrix("B", b)
    task.add_matrix("At", a.T)
    task.add_matrix("Bt", b.T)
    task.add_matrix("C", random_matrix(n, n, rng))
    task.add_matrix("P", shape=(n, n))
    task.add_matrix("Q", shape=(n, n))
    task.add_scalar("alpha", 3)
    task.add_scalar("beta", 2)
    task.add_operation(TaskOp.MATMUL, "A", "Bt", "P")
    task.add_operation(TaskOp.MATMUL, "B", "At", "Q")
    task.add_operation(TaskOp.MAT_SCALE, "P", "P", scalar="alpha")
    task.add_operation(TaskOp.MAT_SCALE, "Q", "Q", scalar="alpha")
    task.add_operation(TaskOp.MAT_SCALE, "C", "C", scalar="beta")
    task.add_operation(TaskOp.MAT_ADD, "C", "P", "C")
    task.add_operation(TaskOp.MAT_ADD, "C", "Q", "C")


def _task_atax(d, task: PimTask, rng: np.random.Generator) -> None:
    m, n = d["m"], d["n"]
    task.add_matrix("A", random_matrix(m, n, rng))
    task.add_vector("x", random_matrix(1, n, rng)[0])
    task.add_matrix("tmp", shape=(1, m))
    task.add_matrix("y", shape=(1, n))
    task.add_operation(TaskOp.MATVEC, "A", "x", "tmp")
    task.add_operation(TaskOp.MATVEC_T, "A", "tmp", "y")


def _task_bicg(d, task: PimTask, rng: np.random.Generator) -> None:
    n, m = d["n"], d["m"]
    task.add_matrix("A", random_matrix(n, m, rng))
    task.add_vector("p", random_matrix(1, m, rng)[0])
    task.add_vector("r", random_matrix(1, n, rng)[0])
    task.add_matrix("q", shape=(1, n))
    task.add_matrix("s", shape=(1, m))
    task.add_operation(TaskOp.MATVEC, "A", "p", "q")
    task.add_operation(TaskOp.MATVEC_T, "A", "r", "s")


def _task_gesu(d, task: PimTask, rng: np.random.Generator) -> None:
    n = d["n"]
    task.add_matrix("A", random_matrix(n, n, rng))
    task.add_matrix("B", random_matrix(n, n, rng))
    task.add_vector("x", random_matrix(1, n, rng)[0])
    task.add_matrix("u", shape=(1, n))
    task.add_matrix("v", shape=(1, n))
    task.add_matrix("y", shape=(1, n))
    task.add_scalar("alpha", 3)
    task.add_scalar("beta", 2)
    task.add_operation(TaskOp.MATVEC, "A", "x", "u")
    task.add_operation(TaskOp.MATVEC, "B", "x", "v")
    task.add_operation(TaskOp.VEC_SCALE, "u", "u", scalar="alpha")
    task.add_operation(TaskOp.VEC_SCALE, "v", "v", scalar="beta")
    task.add_operation(TaskOp.VEC_ADD, "u", "v", "y")


def _task_mvt(d, task: PimTask, rng: np.random.Generator) -> None:
    n = d["n"]
    task.add_matrix("A", random_matrix(n, n, rng))
    task.add_vector("y1", random_matrix(1, n, rng)[0])
    task.add_vector("y2", random_matrix(1, n, rng)[0])
    task.add_matrix("x1", random_matrix(1, n, rng))
    task.add_matrix("x2", random_matrix(1, n, rng))
    task.add_operation(TaskOp.MATVEC_ACC, "A", "y1", "x1")
    task.add_operation(TaskOp.MATVEC_T_ACC, "A", "y2", "x2")


_TASK_BUILDERS = {
    "2mm": _task_2mm,
    "3mm": _task_3mm,
    "gemm": _task_gemm,
    "syrk": _task_syrk,
    "syr2k": _task_syr2k,
    "atax": _task_atax,
    "bicg": _task_bicg,
    "gesu": _task_gesu,
    "mvt": _task_mvt,
}


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
#: Named dataset presets, as approximate scale factors of EXTRALARGE.
#: (PolyBench datasets shrink roughly geometrically between levels.)
DATASET_SCALES: Dict[str, float] = {
    "extralarge": 1.0,
    "large": 0.5,
    "medium": 0.1,
    "small": 0.025,
    "mini": 0.01,
}


def dataset_scale(dataset: str) -> float:
    """Scale factor of a named PolyBench dataset preset."""
    try:
        return DATASET_SCALES[dataset.lower()]
    except KeyError:
        raise KeyError(
            f"unknown dataset {dataset!r}; choose from "
            f"{tuple(DATASET_SCALES)}"
        ) from None


def polybench_names() -> Tuple[str, ...]:
    """The nine kernel names, in Table IV order."""
    return tuple(KERNEL_DIMS)


def polybench_workload(name: str, scale: float = 1.0) -> WorkloadSpec:
    """Build one PolyBench workload spec.

    Args:
        name: kernel name (see :func:`polybench_names`).
        scale: dimension scale factor (1.0 = paper's EXTRALARGE dims).

    Raises:
        KeyError: for unknown kernel names.
    """
    if name not in KERNEL_DIMS:
        raise KeyError(
            f"unknown kernel {name!r}; choose from {polybench_names()}"
        )
    dims = _scaled(KERNEL_DIMS[name], scale)
    ops = _OPS_BUILDERS[name](dims)
    task_builder = _TASK_BUILDERS[name]

    def build(task: PimTask, rng: np.random.Generator) -> None:
        task_builder(dims, task, rng)

    paper = PAPER_VPC_COUNTS[name] if scale == 1.0 else (None, None)
    return WorkloadSpec(
        name=name,
        ops=ops,
        build=build,
        paper_pim_vpcs=paper[0],
        paper_move_vpcs=paper[1],
        description=PAPER_TASKS[name],
    )


#: All nine kernels at paper dimensions.
POLYBENCH: Dict[str, WorkloadSpec] = {
    name: polybench_workload(name) for name in KERNEL_DIMS
}
