"""Additional linear-algebra kernels (beyond the paper's nine).

The paper evaluates nine PolyBench kernels; a library release benefits
from wider coverage, so this module adds further PolyBench kernels built
from the same op machinery: trmm, symm, gramschmidt-style
orthogonalisation, and a power-iteration kernel.  They are clearly
marked as *beyond-paper* (no Table IV reference counts) and reuse the
same EXTRALARGE-style dimension conventions.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.task import PimTask, TaskOp
from repro.workloads.generator import random_matrix
from repro.workloads.spec import MatrixOp, MatrixOpKind, WorkloadSpec

EXTRA_DIMS: Dict[str, Dict[str, int]] = {
    "trmm": {"m": 2000, "n": 2300},
    "symm": {"m": 2000, "n": 2300},
    "gramschmidt": {"m": 2000, "n": 64},
    "power_iter": {"n": 2000, "steps": 8},
}


def _ops_trmm(d: Dict[str, int]) -> List[MatrixOp]:
    m, n = d["m"], d["n"]
    # B = alpha * A * B with triangular A: modelled at full matmul cost
    # (the PIM datapath gains nothing from the zero structure).
    return [
        MatrixOp(MatrixOpKind.MATMUL, (m, m, n)),
        MatrixOp(MatrixOpKind.MAT_SCALE, (m, n)),
    ]


def _ops_symm(d: Dict[str, int]) -> List[MatrixOp]:
    m, n = d["m"], d["n"]
    # C = alpha*A*B + beta*C with symmetric A.
    return [
        MatrixOp(MatrixOpKind.MATMUL, (m, m, n)),
        MatrixOp(MatrixOpKind.MAT_SCALE, (m, n)),
        MatrixOp(MatrixOpKind.MAT_SCALE, (m, n)),
        MatrixOp(MatrixOpKind.MAT_ADD, (m, n)),
    ]


def _ops_gramschmidt(d: Dict[str, int]) -> List[MatrixOp]:
    m, n = d["m"], d["n"]
    ops: List[MatrixOp] = []
    # Classical Gram-Schmidt over n columns of length m: each column is
    # projected against the previous ones (dots + scaled subtractions).
    for column in range(1, n):
        ops.append(MatrixOp(MatrixOpKind.MATVEC, (column, m)))
        ops.append(MatrixOp(MatrixOpKind.VEC_SCALE, (m,)))
        ops.append(MatrixOp(MatrixOpKind.VEC_ADD, (m,)))
    return ops


def _ops_power_iter(d: Dict[str, int]) -> List[MatrixOp]:
    n, steps = d["n"], d["steps"]
    ops: List[MatrixOp] = []
    for _ in range(steps):
        ops.append(MatrixOp(MatrixOpKind.MATVEC, (n, n)))
        ops.append(MatrixOp(MatrixOpKind.VEC_SCALE, (n,)))
    return ops


def _task_power_iter(d, task: PimTask, rng: np.random.Generator) -> None:
    n, steps = d["n"], d["steps"]
    task.add_matrix("A", random_matrix(n, n, rng))
    task.add_vector("x0", random_matrix(1, n, rng)[0])
    task.add_scalar("inv_norm", 1)
    previous = "x0"
    for step in range(steps):
        raw = f"y{step}"
        out = f"x{step + 1}"
        task.add_matrix(raw, shape=(1, n))
        task.add_matrix(out, shape=(1, n))
        task.add_operation(TaskOp.MATVEC, "A", previous, raw)
        task.add_operation(TaskOp.VEC_SCALE, raw, out, scalar="inv_norm")
        previous = out


def _task_symm(d, task: PimTask, rng: np.random.Generator) -> None:
    m, n = d["m"], d["n"]
    a = random_matrix(m, m, rng)
    symmetric = (a + a.T) // 2
    task.add_matrix("A", symmetric)
    task.add_matrix("B", random_matrix(m, n, rng))
    task.add_matrix("C", random_matrix(m, n, rng))
    task.add_matrix("P", shape=(m, n))
    task.add_scalar("alpha", 3)
    task.add_scalar("beta", 2)
    task.add_operation(TaskOp.MATMUL, "A", "B", "P")
    task.add_operation(TaskOp.MAT_SCALE, "P", "P", scalar="alpha")
    task.add_operation(TaskOp.MAT_SCALE, "C", "C", scalar="beta")
    task.add_operation(TaskOp.MAT_ADD, "C", "P", "C")


_OPS = {
    "trmm": _ops_trmm,
    "symm": _ops_symm,
    "gramschmidt": _ops_gramschmidt,
    "power_iter": _ops_power_iter,
}
_TASKS = {
    "symm": _task_symm,
    "power_iter": _task_power_iter,
}
_DESCRIPTIONS = {
    "trmm": "B = alpha * tril(A) * B (triangular matmul)",
    "symm": "C = alpha * sym(A) * B + beta * C",
    "gramschmidt": "classical Gram-Schmidt orthogonalisation",
    "power_iter": "power iteration x_{k+1} = normalise(A x_k)",
}


def extra_workload(name: str, scale: float = 1.0) -> WorkloadSpec:
    """Build one beyond-paper workload spec."""
    if name not in EXTRA_DIMS:
        raise KeyError(
            f"unknown extra kernel {name!r}; choose from "
            f"{tuple(EXTRA_DIMS)}"
        )
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    dims = {
        k: max(2, int(round(v * scale))) if k != "steps" else v
        for k, v in EXTRA_DIMS[name].items()
    }
    build = None
    if name in _TASKS:
        builder = _TASKS[name]

        def build(task: PimTask, rng: np.random.Generator) -> None:
            builder(dims, task, rng)

    return WorkloadSpec(
        name=name,
        ops=_OPS[name](dims),
        build=build,
        description=_DESCRIPTIONS[name],
    )


EXTRA_WORKLOADS: Dict[str, WorkloadSpec] = {
    name: extra_workload(name) for name in EXTRA_DIMS
}
