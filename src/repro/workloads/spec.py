"""Platform-neutral workload descriptions.

A :class:`WorkloadSpec` is a sequence of matrix operations with concrete
dimensions.  Every evaluation platform consumes the same spec:

* StreamPIM platforms build a :class:`~repro.core.task.PimTask` from it
  (:meth:`WorkloadSpec.build_task`);
* analytic baselines (CPU, GPU, CORUSCANT, ELP2IM, FELIX) derive scalar
  operation counts and memory traffic from it
  (:meth:`WorkloadSpec.scalar_ops`);
* Table IV reproduction derives the closed-form VPC counts
  (:meth:`WorkloadSpec.vpc_counts`), which tests cross-check against
  explicit trace enumeration at reduced dimensions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.device import StreamPIMDevice
from repro.core.task import PimTask, TaskOp, create_pim_task


class MatrixOpKind(enum.Enum):
    """Matrix-level operation kinds a workload is built from."""

    MATMUL = "matmul"  # (m, k, n): C[m,n] = A[m,k] @ B[k,n]
    MATVEC = "matvec"  # (m, k): y[m] = A[m,k] @ x[k]
    MATVEC_T = "matvec_t"  # (m, k): y[k] = A[m,k].T @ x[m]
    MAT_ADD = "mat_add"  # (m, k): C = A + B
    MAT_SCALE = "mat_scale"  # (m, k): B = alpha * A
    VEC_ADD = "vec_add"  # (k,): z = x + y
    VEC_SCALE = "vec_scale"  # (k,): y = alpha * x
    DOT = "dot"  # (k,): s = x . y


@dataclass(frozen=True)
class MatrixOp:
    """One matrix operation with concrete dimensions.

    Attributes:
        kind: operation kind.
        dims: dimensions; see :class:`MatrixOpKind` for the convention.
        accumulate: the result is added into an existing destination
            (``y += ...``), which costs extra element-wise additions.
    """

    kind: MatrixOpKind
    dims: Tuple[int, ...]
    accumulate: bool = False

    def __post_init__(self) -> None:
        expected = {
            MatrixOpKind.MATMUL: 3,
            MatrixOpKind.MATVEC: 2,
            MatrixOpKind.MATVEC_T: 2,
            MatrixOpKind.MAT_ADD: 2,
            MatrixOpKind.MAT_SCALE: 2,
            MatrixOpKind.VEC_ADD: 1,
            MatrixOpKind.VEC_SCALE: 1,
            MatrixOpKind.DOT: 1,
        }[self.kind]
        if len(self.dims) != expected:
            raise ValueError(
                f"{self.kind.value} takes {expected} dims, got {self.dims}"
            )
        if any(d <= 0 for d in self.dims):
            raise ValueError(f"dims must be positive, got {self.dims}")

    # ------------------------------------------------------------------
    # Scalar-op algebra
    # ------------------------------------------------------------------
    @property
    def scalar_muls(self) -> int:
        kind, dims = self.kind, self.dims
        if kind is MatrixOpKind.MATMUL:
            m, k, n = dims
            return m * k * n
        if kind in (MatrixOpKind.MATVEC, MatrixOpKind.MATVEC_T):
            m, k = dims
            return m * k
        if kind in (MatrixOpKind.MAT_SCALE,):
            m, k = dims
            return m * k
        if kind is MatrixOpKind.VEC_SCALE:
            return dims[0]
        if kind is MatrixOpKind.DOT:
            return dims[0]
        return 0

    @property
    def scalar_adds(self) -> int:
        kind, dims = self.kind, self.dims
        extra = 0
        if self.accumulate:
            extra = self.result_words
        if kind is MatrixOpKind.MATMUL:
            m, k, n = dims
            return m * (k - 1) * n + extra
        if kind in (MatrixOpKind.MATVEC, MatrixOpKind.MATVEC_T):
            m, k = dims
            return m * (k - 1) + extra
        if kind is MatrixOpKind.MAT_ADD:
            m, k = dims
            return m * k + extra
        if kind is MatrixOpKind.VEC_ADD:
            return dims[0] + extra
        if kind is MatrixOpKind.DOT:
            return dims[0] - 1 + extra
        return extra

    @property
    def operand_words(self) -> int:
        """Input elements the operation touches (for traffic models)."""
        kind, dims = self.kind, self.dims
        if kind is MatrixOpKind.MATMUL:
            m, k, n = dims
            return m * k + k * n
        if kind in (MatrixOpKind.MATVEC, MatrixOpKind.MATVEC_T):
            m, k = dims
            return m * k + (k if kind is MatrixOpKind.MATVEC else m)
        if kind is MatrixOpKind.MAT_ADD:
            m, k = dims
            return 2 * m * k
        if kind is MatrixOpKind.MAT_SCALE:
            m, k = dims
            return m * k
        if kind in (MatrixOpKind.VEC_ADD,):
            return 2 * dims[0]
        if kind in (MatrixOpKind.VEC_SCALE,):
            return dims[0]
        if kind is MatrixOpKind.DOT:
            return 2 * dims[0]
        raise AssertionError(kind)

    @property
    def result_words(self) -> int:
        kind, dims = self.kind, self.dims
        if kind is MatrixOpKind.MATMUL:
            m, _, n = dims
            return m * n
        if kind is MatrixOpKind.MATVEC:
            return dims[0]
        if kind is MatrixOpKind.MATVEC_T:
            return dims[1]
        if kind in (MatrixOpKind.MAT_ADD, MatrixOpKind.MAT_SCALE):
            m, k = dims
            return m * k
        if kind in (MatrixOpKind.VEC_ADD, MatrixOpKind.VEC_SCALE):
            return dims[0]
        if kind is MatrixOpKind.DOT:
            return 1
        raise AssertionError(kind)

    @property
    def flops(self) -> int:
        return self.scalar_muls + self.scalar_adds

    # ------------------------------------------------------------------
    # VPC counting (the Table IV convention; see repro.core.task)
    # ------------------------------------------------------------------
    @property
    def pim_vpcs(self) -> int:
        kind, dims = self.kind, self.dims
        if kind is MatrixOpKind.MATMUL:
            m, _, n = dims
            return m * n
        if kind in (MatrixOpKind.MATVEC, MatrixOpKind.MATVEC_T):
            rows = dims[0] if kind is MatrixOpKind.MATVEC else dims[1]
            return rows * (2 if self.accumulate else 1)
        if kind in (MatrixOpKind.MAT_ADD, MatrixOpKind.MAT_SCALE):
            return dims[0]
        if kind in (
            MatrixOpKind.VEC_ADD,
            MatrixOpKind.VEC_SCALE,
            MatrixOpKind.DOT,
        ):
            return 1
        raise AssertionError(kind)

    @property
    def move_vpcs(self) -> int:
        kind, dims = self.kind, self.dims
        if kind is MatrixOpKind.MATMUL:
            m, _, n = dims
            return m * n  # one operand delivery per dot; results stay put
        if kind in (MatrixOpKind.MATVEC, MatrixOpKind.MATVEC_T):
            rows = dims[0] if kind is MatrixOpKind.MATVEC else dims[1]
            # delivery + scalar collection per dot (+ the same again for
            # the accumulation adds)
            return rows * (4 if self.accumulate else 2)
        if kind in (MatrixOpKind.MAT_ADD, MatrixOpKind.MAT_SCALE):
            return dims[0]
        if kind is MatrixOpKind.VEC_ADD:
            return 1
        if kind is MatrixOpKind.VEC_SCALE:
            return 1
        if kind is MatrixOpKind.DOT:
            return 2
        raise AssertionError(kind)


@dataclass(frozen=True)
class ScalarOpCounts:
    """Aggregate scalar-operation/traffic view of one workload."""

    muls: int
    adds: int
    operand_words: int
    result_words: int

    @property
    def flops(self) -> int:
        return self.muls + self.adds

    @property
    def traffic_words(self) -> int:
        return self.operand_words + self.result_words


# Builder signature: (task) -> None, records matrices + operations.
TaskBuilder = Callable[[PimTask, np.random.Generator], None]


@dataclass
class WorkloadSpec:
    """One named workload: matrix ops plus optional PIM task builder.

    Attributes:
        name: workload label ("gemm", "mlp", ...).
        ops: the matrix operations, in execution order.
        build: optional callable that records the same computation on a
            :class:`PimTask` (for running on StreamPIM platforms).
        paper_pim_vpcs: Table IV #PIM-VPC (None if not listed).
        paper_move_vpcs: Table IV #move-VPC (None if not listed).
        nonlinear_flop_fraction: fraction of end-to-end scalar work that
            is non-offloadable (DNN nonlinear layers, section V-E).
        description: the "process task" formula of Table IV.
    """

    name: str
    ops: List[MatrixOp]
    build: Optional[TaskBuilder] = None
    paper_pim_vpcs: Optional[float] = None
    paper_move_vpcs: Optional[float] = None
    nonlinear_flop_fraction: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError(f"workload {self.name!r} has no operations")
        if not 0.0 <= self.nonlinear_flop_fraction < 1.0:
            raise ValueError(
                "nonlinear_flop_fraction must be in [0, 1), got "
                f"{self.nonlinear_flop_fraction}"
            )

    # ------------------------------------------------------------------
    def scalar_ops(self) -> ScalarOpCounts:
        """Aggregate scalar mul/add counts and traffic."""
        return ScalarOpCounts(
            muls=sum(op.scalar_muls for op in self.ops),
            adds=sum(op.scalar_adds for op in self.ops),
            operand_words=sum(op.operand_words for op in self.ops),
            result_words=sum(op.result_words for op in self.ops),
        )

    def vpc_counts(self) -> Tuple[int, int]:
        """Closed-form (#PIM-VPC, #move-VPC) of the lowered workload."""
        return (
            sum(op.pim_vpcs for op in self.ops),
            sum(op.move_vpcs for op in self.ops),
        )

    def build_task(
        self,
        device: Optional[StreamPIMDevice] = None,
        seed: int = 7,
    ) -> PimTask:
        """Materialise a PimTask for this workload.

        Raises:
            NotImplementedError: if the workload has no task builder.
        """
        if self.build is None:
            raise NotImplementedError(
                f"workload {self.name!r} has no PIM task builder"
            )
        task = create_pim_task(device)
        self.build(task, np.random.default_rng(seed))
        return task

    def scaled(self, factor: float, name: Optional[str] = None) -> "WorkloadSpec":
        """A copy with every dimension scaled by ``factor`` (for tests).

        The task builder is dropped (it is bound to the original dims).
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        ops = [
            MatrixOp(
                op.kind,
                tuple(max(1, int(round(d * factor))) for d in op.dims),
                op.accumulate,
            )
            for op in self.ops
        ]
        return WorkloadSpec(
            name=name or f"{self.name}@x{factor}",
            ops=ops,
            build=None,
            nonlinear_flop_fraction=self.nonlinear_flop_fraction,
            description=self.description,
        )
