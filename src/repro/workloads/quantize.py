"""Quantisation helpers: real-valued matrices on the 8-bit datapath.

StreamPIM's datapath is integer (8-bit operands, wide accumulation); DNN
inference on it therefore runs quantised, exactly like integer
accelerators.  This module provides the standard affine scheme:

    q = clip(round(x / scale) + zero_point, 0, 2^bits - 1)

with per-tensor scales, plus the matmul identity that lets the PIM
device do all the heavy work in integers:

    A @ B  ~=  s_a * s_b * (Qa - z_a) @ (Qb - z_b)

The integer product expands into four terms (Qa@Qb and three
zero-point corrections), of which only Qa@Qb is data-dependent on both
operands — so the PIM device computes Qa@Qb, and the cheap correction
terms fold into the host-side dequantisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class QuantParams:
    """Affine quantisation parameters for one tensor.

    Attributes:
        scale: real value of one quantisation step.
        zero_point: integer code representing real 0.0.
        bits: code width (the datapath's word width).
    """

    scale: float
    zero_point: int
    bits: int = 8

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.bits <= 0:
            raise ValueError("bits must be positive")
        if not 0 <= self.zero_point < (1 << self.bits):
            raise ValueError("zero_point out of code range")

    @property
    def qmax(self) -> int:
        return (1 << self.bits) - 1


def calibrate(values: np.ndarray, bits: int = 8) -> QuantParams:
    """Min/max calibration of affine parameters for one tensor."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot calibrate an empty tensor")
    low = float(min(values.min(), 0.0))
    high = float(max(values.max(), 0.0))
    qmax = (1 << bits) - 1
    if high == low:
        return QuantParams(scale=1.0, zero_point=0, bits=bits)
    scale = (high - low) / qmax
    zero_point = int(round(-low / scale))
    zero_point = max(0, min(qmax, zero_point))
    return QuantParams(scale=scale, zero_point=zero_point, bits=bits)


def quantize(values: np.ndarray, params: QuantParams) -> np.ndarray:
    """Real tensor -> integer codes."""
    values = np.asarray(values, dtype=np.float64)
    codes = np.round(values / params.scale) + params.zero_point
    return np.clip(codes, 0, params.qmax).astype(np.int64)


def dequantize(codes: np.ndarray, params: QuantParams) -> np.ndarray:
    """Integer codes -> real tensor."""
    return (np.asarray(codes, dtype=np.float64) - params.zero_point) * (
        params.scale
    )


def quantized_matmul(
    qa: np.ndarray,
    pa: QuantParams,
    qb: np.ndarray,
    pb: QuantParams,
) -> np.ndarray:
    """Real-valued A @ B from integer codes.

    Performs the data-dependent integer product (the part the PIM device
    executes) plus the three zero-point correction terms, then scales
    back to reals.
    """
    qa = np.asarray(qa, dtype=np.int64)
    qb = np.asarray(qb, dtype=np.int64)
    if qa.shape[1] != qb.shape[0]:
        raise ValueError(
            f"inner dimensions differ: {qa.shape} @ {qb.shape}"
        )
    k = qa.shape[1]
    raw = qa @ qb  # the PIM-side product
    row_sums = qa.sum(axis=1, keepdims=True)
    col_sums = qb.sum(axis=0, keepdims=True)
    corrected = (
        raw
        - pb.zero_point * row_sums
        - pa.zero_point * col_sums
        + k * pa.zero_point * pb.zero_point
    )
    return pa.scale * pb.scale * corrected.astype(np.float64)


def quantization_error(
    a: np.ndarray, b: np.ndarray, bits: int = 8
) -> Tuple[float, float]:
    """Relative Frobenius error of a quantised matmul vs float.

    Returns:
        ``(error, worst_element_error)`` — relative Frobenius-norm error
        and the worst absolute element error normalised by the result's
        magnitude scale.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    pa, pb = calibrate(a, bits), calibrate(b, bits)
    approx = quantized_matmul(quantize(a, pa), pa, quantize(b, pb), pb)
    exact = a @ b
    norm = np.linalg.norm(exact)
    if norm == 0:
        return 0.0, 0.0
    scale = max(np.abs(exact).max(), 1e-30)
    return (
        float(np.linalg.norm(approx - exact) / norm),
        float(np.abs(approx - exact).max() / scale),
    )
