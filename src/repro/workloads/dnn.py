"""End-to-end DNN inference workloads (section V-E): MLP and BERT.

The paper offloads matrix multiplications and additions to StreamPIM and
keeps nonlinear operations (activations, softmax, layer norm) on the CPU,
so each workload here carries a ``nonlinear_flop_fraction`` — the share
of end-to-end *CPU execution time* spent in the non-offloadable layers.
MLP's nonlinearities are a small portion of inference; BERT's softmax and
normalisation layers are substantial, which is why the paper's BERT
speed-up (4.49x over CPU-DRAM) is far below MLP's (54.77x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.task import PimTask, TaskOp
from repro.workloads.generator import random_matrix
from repro.workloads.spec import MatrixOp, MatrixOpKind, WorkloadSpec


@dataclass(frozen=True)
class MLPShape:
    """Multi-layer perceptron inference shape.

    Defaults: a 3-layer classifier over flattened 28x28 inputs, batch 64
    (the mlbench-style benchmark problem the paper cites).
    """

    batch: int = 64
    layers: Tuple[int, ...] = (784, 1024, 1024, 10)

    def __post_init__(self) -> None:
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        if len(self.layers) < 2:
            raise ValueError("an MLP needs at least input and output dims")
        if any(d <= 0 for d in self.layers):
            raise ValueError("layer dims must be positive")


@dataclass(frozen=True)
class BERTShape:
    """BERT-base encoder inference shape (one sequence)."""

    seq_len: int = 128
    hidden: int = 768
    ffn: int = 3072
    heads: int = 12
    layers: int = 12

    def __post_init__(self) -> None:
        for name in ("seq_len", "hidden", "ffn", "heads", "layers"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.hidden % self.heads != 0:
            raise ValueError("hidden must divide evenly among heads")

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads


def _mlp_ops(shape: MLPShape) -> List[MatrixOp]:
    ops: List[MatrixOp] = []
    for fan_in, fan_out in zip(shape.layers, shape.layers[1:]):
        ops.append(MatrixOp(MatrixOpKind.MATMUL, (shape.batch, fan_in, fan_out)))
        ops.append(MatrixOp(MatrixOpKind.MAT_ADD, (shape.batch, fan_out)))
    return ops


def _bert_layer_ops(shape: BERTShape) -> List[MatrixOp]:
    s, h, f = shape.seq_len, shape.hidden, shape.ffn
    d = shape.head_dim
    ops: List[MatrixOp] = []
    # Q, K, V projections.
    for _ in range(3):
        ops.append(MatrixOp(MatrixOpKind.MATMUL, (s, h, h)))
    # Per-head attention: scores (s x d @ d x s) and context (s x s @ s x d).
    for _ in range(shape.heads):
        ops.append(MatrixOp(MatrixOpKind.MATMUL, (s, d, s)))
        ops.append(MatrixOp(MatrixOpKind.MATMUL, (s, s, d)))
    # Output projection + residual.
    ops.append(MatrixOp(MatrixOpKind.MATMUL, (s, h, h)))
    ops.append(MatrixOp(MatrixOpKind.MAT_ADD, (s, h)))
    # Feed-forward network + residual.
    ops.append(MatrixOp(MatrixOpKind.MATMUL, (s, h, f)))
    ops.append(MatrixOp(MatrixOpKind.MATMUL, (s, f, h)))
    ops.append(MatrixOp(MatrixOpKind.MAT_ADD, (s, h)))
    return ops


def _bert_ops(shape: BERTShape) -> List[MatrixOp]:
    ops: List[MatrixOp] = []
    for _ in range(shape.layers):
        ops.extend(_bert_layer_ops(shape))
    return ops


def _mlp_task(shape: MLPShape, task: PimTask, rng: np.random.Generator) -> None:
    activation = "act0"
    task.add_matrix(activation, random_matrix(shape.batch, shape.layers[0], rng))
    for i, (fan_in, fan_out) in enumerate(zip(shape.layers, shape.layers[1:])):
        weight = f"w{i}"
        bias = f"b{i}"
        out = f"act{i + 1}"
        task.add_matrix(weight, random_matrix(fan_in, fan_out, rng))
        task.add_matrix(bias, random_matrix(shape.batch, fan_out, rng))
        task.add_matrix(out, shape=(shape.batch, fan_out))
        task.add_operation(TaskOp.MATMUL, activation, weight, out)
        task.add_operation(TaskOp.MAT_ADD, out, bias, out)
        activation = out


def _bert_task(shape: BERTShape, task: PimTask, rng: np.random.Generator) -> None:
    s, h, f = shape.seq_len, shape.hidden, shape.ffn
    x = "x"
    task.add_matrix(x, random_matrix(s, h, rng))
    for layer in range(shape.layers):
        prefix = f"l{layer}"
        for proj in ("q", "k", "v", "o"):
            task.add_matrix(f"{prefix}_w{proj}", random_matrix(h, h, rng))
        task.add_matrix(f"{prefix}_wf1", random_matrix(h, f, rng))
        task.add_matrix(f"{prefix}_wf2", random_matrix(f, h, rng))
        for proj in ("q", "k", "v"):
            task.add_matrix(f"{prefix}_{proj}", shape=(s, h))
            task.add_operation(
                TaskOp.MATMUL, x, f"{prefix}_w{proj}", f"{prefix}_{proj}"
            )
        # Attention is computed head-by-head at matrix granularity; the
        # softmax between scores and context runs on the CPU and is
        # covered by the workload's nonlinear fraction.
        task.add_matrix(f"{prefix}_scores", shape=(s, s))
        task.add_matrix(f"{prefix}_kT", shape=(h, s))
        task.add_operation(
            TaskOp.MATMUL, f"{prefix}_q", f"{prefix}_kT", f"{prefix}_scores"
        )
        task.add_matrix(f"{prefix}_ctx", shape=(s, h))
        task.add_operation(
            TaskOp.MATMUL, f"{prefix}_scores", f"{prefix}_v", f"{prefix}_ctx"
        )
        task.add_matrix(f"{prefix}_attn", shape=(s, h))
        task.add_operation(
            TaskOp.MATMUL, f"{prefix}_ctx", f"{prefix}_wo", f"{prefix}_attn"
        )
        task.add_operation(TaskOp.MAT_ADD, f"{prefix}_attn", x, f"{prefix}_attn")
        task.add_matrix(f"{prefix}_ffn1", shape=(s, f))
        task.add_operation(
            TaskOp.MATMUL, f"{prefix}_attn", f"{prefix}_wf1", f"{prefix}_ffn1"
        )
        task.add_matrix(f"{prefix}_ffn2", shape=(s, h))
        task.add_operation(
            TaskOp.MATMUL, f"{prefix}_ffn1", f"{prefix}_wf2", f"{prefix}_ffn2"
        )
        task.add_matrix(f"{prefix}_out", shape=(s, h))
        task.add_operation(
            TaskOp.MAT_ADD, f"{prefix}_ffn2", f"{prefix}_attn", f"{prefix}_out"
        )
        x = f"{prefix}_out"


def mlp_spec(shape: MLPShape | None = None) -> WorkloadSpec:
    """The MLP end-to-end workload.

    The nonlinear fraction (ReLU activations, ~1% of CPU inference time)
    stays on the CPU; everything else offloads.
    """
    shape = shape or MLPShape()

    def build(task: PimTask, rng: np.random.Generator) -> None:
        _mlp_task(shape, task, rng)

    return WorkloadSpec(
        name="mlp",
        ops=_mlp_ops(shape),
        build=build,
        nonlinear_flop_fraction=0.012,
        description="MLP inference (matmul+bias offloaded, ReLU on CPU)",
    )


def bert_spec(shape: BERTShape | None = None) -> WorkloadSpec:
    """The BERT end-to-end workload.

    Softmax, GELU and layer normalisation stay on the CPU; the paper
    notes BERT "involves more nonlinear operations", which caps its
    speed-up — modelled as a 18% non-offloadable share of CPU time.
    """
    shape = shape or BERTShape()

    def build(task: PimTask, rng: np.random.Generator) -> None:
        _bert_task(shape, task, rng)

    return WorkloadSpec(
        name="bert",
        ops=_bert_ops(shape),
        build=build,
        nonlinear_flop_fraction=0.18,
        description="BERT-base inference (matmuls offloaded, "
        "softmax/layernorm/GELU on CPU)",
    )


def dnn_workload(name: str) -> WorkloadSpec:
    """Look up a DNN workload by name ("mlp" or "bert")."""
    try:
        return DNN_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown DNN workload {name!r}; choose from "
            f"{tuple(DNN_WORKLOADS)}"
        ) from None


DNN_WORKLOADS: Dict[str, WorkloadSpec] = {
    "mlp": mlp_spec(),
    "bert": bert_spec(),
}
