"""Workload generators: PolyBench kernels (Table IV) and DNN graphs (V-E)."""

from repro.workloads.spec import (
    MatrixOpKind,
    MatrixOp,
    WorkloadSpec,
    ScalarOpCounts,
)
from repro.workloads.polybench import (
    POLYBENCH,
    DATASET_SCALES,
    dataset_scale,
    polybench_workload,
    polybench_names,
    SMALL_KERNELS,
)
from repro.workloads.dnn import DNN_WORKLOADS, dnn_workload, mlp_spec, bert_spec
from repro.workloads.extra import EXTRA_WORKLOADS, extra_workload
from repro.workloads.generator import random_matrix, random_vector

__all__ = [
    "MatrixOpKind",
    "MatrixOp",
    "WorkloadSpec",
    "ScalarOpCounts",
    "POLYBENCH",
    "DATASET_SCALES",
    "dataset_scale",
    "polybench_workload",
    "polybench_names",
    "SMALL_KERNELS",
    "DNN_WORKLOADS",
    "dnn_workload",
    "EXTRA_WORKLOADS",
    "extra_workload",
    "mlp_spec",
    "bert_spec",
    "random_matrix",
    "random_vector",
]
