"""Workload generators: PolyBench kernels (Table IV) and DNN graphs (V-E)."""

from repro.workloads.spec import (
    MatrixOpKind,
    MatrixOp,
    WorkloadSpec,
    ScalarOpCounts,
)
from repro.workloads.polybench import (
    POLYBENCH,
    DATASET_SCALES,
    dataset_scale,
    polybench_workload,
    polybench_names,
    SMALL_KERNELS,
)
from repro.workloads.dnn import DNN_WORKLOADS, dnn_workload, mlp_spec, bert_spec
from repro.workloads.extra import EXTRA_WORKLOADS, extra_workload
from repro.workloads.generator import random_matrix, random_vector


def find_workload(name, scale=1.0):
    """Resolve a workload name from any suite into a spec.

    The shared lookup behind the CLI and the serving layer.

    Raises:
        KeyError: unknown name, or ``--scale`` on a DNN workload
            (their dimensions are fixed graphs).
    """
    if name in POLYBENCH:
        return polybench_workload(name, scale=scale)
    if name in DNN_WORKLOADS:
        if scale != 1.0:
            raise KeyError(
                f"DNN workload {name!r} does not support scaling"
            )
        return dnn_workload(name)
    if name in EXTRA_WORKLOADS:
        return extra_workload(name, scale=scale)
    raise KeyError(
        f"unknown workload {name!r}; choose from "
        f"{sorted([*POLYBENCH, *DNN_WORKLOADS, *EXTRA_WORKLOADS])}"
    )


__all__ = [
    "find_workload",
    "MatrixOpKind",
    "MatrixOp",
    "WorkloadSpec",
    "ScalarOpCounts",
    "POLYBENCH",
    "DATASET_SCALES",
    "dataset_scale",
    "polybench_workload",
    "polybench_names",
    "SMALL_KERNELS",
    "DNN_WORKLOADS",
    "dnn_workload",
    "EXTRA_WORKLOADS",
    "extra_workload",
    "mlp_spec",
    "bert_spec",
    "random_matrix",
    "random_vector",
]
