"""Pre-sampled fault plans for one trace execution.

All randomness of a fault-injection run is drawn *here*, once, before
either engine executes a single VPC: per-VPC fault counts, guard-domain
detection outcomes, net undetected drift, and the per-fault retry
attempt counts.  Both the scalar and the vector engine then consume the
same immutable plan, which makes their behaviour under faults identical
by construction — the equivalence contract of
:mod:`repro.sim.vector_exec` extends to fault campaigns for free.

The sampling model mirrors :class:`~repro.core.redundancy.RedundancyAnalysis`:
every VPC of ``size`` words performs ``ceil(size / words_per_segment) *
n_segments`` bounded segment hops, each of which misaligns independently
with the per-hop probability of
:meth:`~repro.rm.faults.ShiftFaultModel.shift_fault_probability` at the
segment length.  Detected faults follow the configured recovery policy;
undetected faults drift the destination by net +/-1 steps and silently
corrupt data (:mod:`repro.resilience.corruption`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple, Union

import numpy as np

from repro.core.rmbus import RMBusConfig
from repro.rm.faults import ShiftFaultConfig, ShiftFaultModel


class RecoveryPolicy(enum.Enum):
    """What execution does when guard domains detect a misaligned hop."""

    #: Re-shift the segment with bounded attempts and exponential
    #: backoff; escalate to abort only when the budget runs out.
    RETRY = "retry"
    #: Raise a typed :class:`~repro.sim.errors.SimulationFault` carrying
    #: the trace offset of the faulting VPC.
    ABORT = "abort"
    #: Quarantine the faulty subarray, replay its placement on a healthy
    #: one via the placement optimiser, and charge the migration cost.
    DEGRADE = "degrade"


@dataclass(frozen=True)
class FaultCampaignConfig:
    """Parameters of one fault-injection campaign.

    Attributes:
        faults: fault-rate / guard-detection parameters (shared with the
            analytic :class:`~repro.core.redundancy.RedundancyAnalysis`).
        policy: recovery policy for guard-detected faults.
        max_retries: re-shift attempts per detected fault before the
            ``retry`` policy escalates to abort.
        backoff: multiplicative backoff on the re-shift latency between
            consecutive attempts on the same fault.
    """

    faults: ShiftFaultConfig = field(default_factory=ShiftFaultConfig)
    policy: RecoveryPolicy = RecoveryPolicy.RETRY
    max_retries: int = 3
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if not isinstance(self.policy, RecoveryPolicy):
            raise ValueError(
                f"policy must be a RecoveryPolicy, got {self.policy!r}"
            )
        if self.max_retries < 1:
            raise ValueError(
                f"max_retries must be at least 1, got {self.max_retries}"
            )
        if self.backoff < 1.0:
            raise ValueError(
                f"backoff must be at least 1, got {self.backoff}"
            )


@dataclass(frozen=True)
class PlannedFault:
    """Sampled fault outcome of one VPC's transfer.

    Attributes:
        index: trace position of the VPC.
        src1: the VPC's first-operand address (locates the faulty
            subarray for the ``degrade`` policy).
        words: transfer size in words.
        faults: misaligned hops sampled for this transfer.
        detected: how many of them the guard domains caught.
        undetected: the silent remainder.
        drift: net positions of undetected misalignment (each undetected
            fault is +/-1 with equal likelihood).
        attempts: re-shift attempts per detected fault (``retry``).
        recovered: True when every detected fault's retries succeeded
            within the budget.
    """

    index: int
    src1: int
    words: int
    faults: int
    detected: int
    undetected: int
    drift: int
    attempts: Tuple[int, ...]
    recovered: bool


@dataclass(frozen=True)
class FaultPlan:
    """Every sampled fault of one run, in trace order."""

    n_vpcs: int
    hops_total: int
    p_hop: float
    guard_detection: float
    events: Tuple[PlannedFault, ...]

    @property
    def expected_undetected(self) -> float:
        """Analytic expected undetected-fault count for this trace.

        Matches ``RedundancyAnalysis.expected_undetected_faults`` summed
        over the trace (same hop total, same per-hop probability), which
        is what campaign Monte-Carlo estimates converge to.
        """
        return self.hops_total * self.p_hop * (1.0 - self.guard_detection)


def build_fault_plan(
    sizes: np.ndarray,
    src1: np.ndarray,
    config: FaultCampaignConfig,
    bus: RMBusConfig,
    seed: Union[int, np.random.SeedSequence],
) -> FaultPlan:
    """Sample one run's complete fault plan from one seed.

    ``sizes``/``src1`` are the per-VPC transfer sizes and first-operand
    addresses (identical whether read from a scalar or columnar trace).
    The draw order is fixed — vectorized per-VPC fault counts first,
    then detection/drift/retry per faulty VPC in trace order — so one
    seed always yields one plan.
    """
    rng = np.random.default_rng(seed)
    model = ShiftFaultModel(config.faults)
    p_hop = model.shift_fault_probability(bus.segment_domains)
    sizes = np.asarray(sizes, dtype=np.int64)
    src1 = np.asarray(src1, dtype=np.int64)
    if len(sizes) != len(src1):
        raise ValueError(
            f"sizes and src1 must align, got {len(sizes)} vs {len(src1)}"
        )
    chunks = -(-sizes // bus.words_per_segment)
    hops = chunks * bus.n_segments
    fault_counts = (
        rng.binomial(hops, p_hop) if len(sizes) else np.zeros(0, np.int64)
    )
    detection = config.faults.guard_detection
    events = []
    for idx in np.flatnonzero(fault_counts):
        count = int(fault_counts[idx])
        detected = int(rng.binomial(count, detection))
        undetected = count - detected
        drift = 0
        if undetected:
            drift = int(2 * rng.binomial(undetected, 0.5) - undetected)
        attempts = []
        recovered = True
        for _ in range(detected):
            tries = 0
            repaired = False
            while tries < config.max_retries:
                tries += 1
                if rng.random() >= p_hop:  # this re-shift landed cleanly
                    repaired = True
                    break
            attempts.append(tries)
            recovered = recovered and repaired
        events.append(
            PlannedFault(
                index=int(idx),
                src1=int(src1[idx]),
                words=int(sizes[idx]),
                faults=count,
                detected=detected,
                undetected=undetected,
                drift=drift,
                attempts=tuple(attempts),
                recovered=recovered,
            )
        )
    return FaultPlan(
        n_vpcs=int(len(sizes)),
        hops_total=int(hops.sum()) if len(sizes) else 0,
        p_hop=float(p_hop),
        guard_detection=float(detection),
        events=tuple(events),
    )
