"""Per-run fault session: the object the trace engines consume.

A :class:`FaultSession` resolves a sampled :class:`~repro.resilience.plan.FaultPlan`
against one device under one recovery policy — *before* execution
starts, so the engines see only immutable decisions:

* ``abort_index`` — the trace position where execution must raise a
  typed :class:`~repro.sim.errors.SimulationFault` (``abort`` policy, or
  a ``retry`` whose budget ran out), or None;
* ``drift`` — the per-index net undetected misalignment that silently
  corrupts destination words (applied identically by both engines via
  :func:`~repro.resilience.corruption.corrupt_words`);
* ``recovery_ns`` / ``recovery_pj`` — the total detect-and-repair cost,
  charged into the run's ``recovery`` breakdown categories.

Both engines take the session through ``execute_trace(...,
faults=session)`` and, because every random draw happened in the plan,
produce bit-identical stats, word stores, and reliability reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.placement import Placer
from repro.isa.vpc import VPCOpcode
from repro.obs.spans import NULL_COLLECTOR
from repro.resilience.corruption import corrupt_words
from repro.resilience.plan import (
    FaultCampaignConfig,
    FaultPlan,
    RecoveryPolicy,
)
from repro.resilience.report import ReliabilityRunReport
from repro.sim.errors import SimulationFault


class FaultSession:
    """One run's resolved fault decisions and recovery accounting."""

    def __init__(
        self,
        device,
        plan: FaultPlan,
        config: FaultCampaignConfig,
    ) -> None:
        self.plan = plan
        self.config = config
        self.drift: Dict[int, int] = {}
        self.abort_index: Optional[int] = None
        self.recovery_ns = 0.0
        self.recovery_pj = 0.0
        self.injected = 0
        self.detected = 0
        self.undetected = 0
        self.retries = 0
        self.recovered = 0
        self.quarantined: List[Tuple[int, int]] = []
        self.remapped: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
        self._resolve(device)

    # ------------------------------------------------------------------
    def _resolve(self, device) -> None:
        policy = self.config.policy
        hop_ns = device.bus.hop_ns
        hop_pj = device.bus.energy_per_hop_pj
        placer = None
        quarantine_set = set()
        # Observation sink, checked once per session resolve; every
        # retry attempt / quarantine re-copy becomes a span on the
        # "recovery" track whose running offsets mirror recovery_ns, so
        # the exported trace's recovery durations sum to exactly the
        # total the engines charge into the breakdown.
        obs = getattr(device, "obs", NULL_COLLECTOR)
        emitting = obs.enabled
        for event in self.plan.events:
            self.injected += event.faults
            self.detected += event.detected
            self.undetected += event.undetected
            if event.drift:
                self.drift[event.index] = event.drift
            if event.detected == 0:
                continue
            if policy is RecoveryPolicy.ABORT:
                self._abort_at(event.index)
                break
            if policy is RecoveryPolicy.RETRY:
                for tries in event.attempts:
                    self.retries += tries
                    for attempt in range(tries):
                        attempt_ns = hop_ns * self.config.backoff**attempt
                        if emitting:
                            obs.emit(
                                "retry",
                                "recovery",
                                self.recovery_ns,
                                attempt_ns,
                                "recovery",
                                {
                                    "index": event.index,
                                    "attempt": attempt,
                                },
                            )
                        self.recovery_ns += attempt_ns
                    self.recovery_pj += tries * hop_pj
                if event.recovered:
                    self.recovered += event.detected
                else:
                    # Retry budget exhausted: escalate to abort.
                    self._abort_at(event.index)
                    break
                continue
            # DEGRADE: quarantine the faulty subarray, replay placement.
            if placer is None:
                placer = Placer(geometry=device.config.geometry)
            key = device.address_map.subarray_of(event.src1)
            if key not in quarantine_set:
                target = placer.remap_target(self.quarantined)
                quarantine_set.add(key)
                self.quarantined.append(key)
                self.remapped.append((key, target))
            remap_ns = device.bus.transfer_ns(event.words)
            if emitting:
                obs.emit(
                    "remap",
                    "recovery",
                    self.recovery_ns,
                    remap_ns,
                    "recovery",
                    {"index": event.index, "words": event.words},
                )
            self.recovery_ns += remap_ns
            self.recovery_pj += device.bus.transfer_energy_pj(event.words)
            self.recovered += event.detected
        if emitting:
            registry = obs.registry
            registry.counter("faults.injected").inc(self.injected)
            registry.counter("faults.detected").inc(self.detected)
            registry.counter("faults.undetected").inc(self.undetected)
            registry.counter("faults.retries").inc(self.retries)
            registry.counter("faults.recovered").inc(self.recovered)
            registry.counter("faults.quarantined").inc(
                len(self.quarantined)
            )
            if self.abort_index is not None:
                registry.counter("faults.aborts").inc()

    def _abort_at(self, index: int) -> None:
        self.abort_index = index
        # The faulting VPC never completes, so its destination is never
        # written: no silent corruption at the abort point itself.
        self.drift.pop(index, None)

    # ------------------------------------------------------------------
    # Engine contract
    # ------------------------------------------------------------------
    def abort_error(self) -> SimulationFault:
        """The typed fault execution raises at ``abort_index``."""
        if self.abort_index is None:
            raise RuntimeError("session has no abort decision")
        return SimulationFault(
            "guard domains detected a misaligned hop; "
            f"{self.config.policy.value} policy stopped execution",
            index=self.abort_index,
        )

    def corrupt_values(self, values: np.ndarray, drift: int) -> np.ndarray:
        """Corrupt one destination slice (vector-engine hook)."""
        return corrupt_words(values, drift)

    def corrupt_store(self, store, vpc, index: int) -> None:
        """Corrupt one VPC's destination words (scalar-engine hook)."""
        drift = self.drift.get(index)
        if not drift:
            return
        length = 1 if vpc.opcode is VPCOpcode.MUL else vpc.size
        store.write(
            vpc.des, corrupt_words(store.read(vpc.des, length), drift)
        )

    # ------------------------------------------------------------------
    def report(
        self,
        workload: str,
        seed: int,
        time_ns: Optional[float] = None,
    ) -> ReliabilityRunReport:
        """Summarise the run; identical for both engines by design."""
        sdc_events = len(self.drift)
        mttf_ns = None
        if time_ns is not None and self.undetected > 0:
            mttf_ns = time_ns / self.undetected
        return ReliabilityRunReport(
            workload=workload,
            seed=seed,
            policy=self.config.policy.value,
            n_vpcs=self.plan.n_vpcs,
            hops=self.plan.hops_total,
            p_hop=self.plan.p_hop,
            injected=self.injected,
            detected=self.detected,
            undetected=self.undetected,
            retries=self.retries,
            recovered=self.recovered,
            sdc_events=sdc_events,
            sdc_rate=(
                sdc_events / self.plan.n_vpcs if self.plan.n_vpcs else 0.0
            ),
            aborted=self.abort_index is not None,
            abort_index=self.abort_index,
            quarantined=tuple(self.quarantined),
            recovery_ns=self.recovery_ns,
            recovery_pj=self.recovery_pj,
            time_ns=time_ns,
            expected_undetected=self.plan.expected_undetected,
            mttf_ns=mttf_ns,
        )
