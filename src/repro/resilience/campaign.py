"""Fault-injected runs and Monte-Carlo campaigns.

:func:`run_with_faults` executes one trace under one seeded fault plan
on either engine and returns ``(RunStats, ReliabilityRunReport)``;
:func:`run_campaign` sweeps many independent seeds over one workload —
optionally on a process pool — and aggregates a
:class:`~repro.resilience.report.CampaignReport`.

Seeding: run ``i`` of a campaign uses
``numpy.random.SeedSequence(master_seed, spawn_key=(i,))``, which is
exactly ``SeedSequence(master_seed).spawn(n)[i]`` — each worker can
rebuild its child seed from two integers, so sequential and parallel
campaigns draw identical streams and produce identical reports.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.isa.columnar import ColumnarTrace
from repro.resilience.plan import (
    FaultCampaignConfig,
    build_fault_plan,
)
from repro.resilience.report import CampaignReport, ReliabilityRunReport
from repro.resilience.session import FaultSession
from repro.sim.errors import SimulationFault
from repro.sim.stats import RunStats


def _trace_columns(trace) -> Tuple[np.ndarray, np.ndarray]:
    """(sizes, src1) per VPC, identical for scalar/columnar traces."""
    if isinstance(trace, ColumnarTrace):
        return (
            trace.size.astype(np.int64),
            trace.src1.astype(np.int64),
        )
    n = len(trace)
    sizes = np.fromiter((vpc.size for vpc in trace), np.int64, count=n)
    src1 = np.fromiter((vpc.src1 for vpc in trace), np.int64, count=n)
    return sizes, src1


def _seed_label(seed: Union[int, np.random.SeedSequence]) -> int:
    if isinstance(seed, np.random.SeedSequence):
        if seed.spawn_key:
            return int(seed.spawn_key[-1])
        entropy = seed.entropy
        return int(entropy if isinstance(entropy, int) else entropy[0])
    return int(seed)


def build_session(
    device,
    trace,
    config: FaultCampaignConfig,
    seed: Union[int, np.random.SeedSequence],
) -> FaultSession:
    """Sample a fault plan for ``trace`` and resolve it on ``device``."""
    sizes, src1 = _trace_columns(trace)
    plan = build_fault_plan(
        sizes, src1, config, device.config.bus, seed
    )
    return FaultSession(device, plan, config)


def run_with_faults(
    device,
    trace,
    config: Optional[FaultCampaignConfig] = None,
    seed: Union[int, np.random.SeedSequence] = 0,
    workload: str = "trace",
    engine: str = "scalar",
    functional: bool = True,
    verify: bool = True,
) -> Tuple[Optional[RunStats], ReliabilityRunReport]:
    """Execute one trace under seeded fault injection.

    Returns ``(stats, report)``.  When the recovery policy aborts the
    run (or a retry budget runs out), the engine's typed
    :class:`~repro.sim.errors.SimulationFault` is caught here, ``stats``
    is None, and the report records the abort; unplanned faults still
    propagate.
    """
    config = config or FaultCampaignConfig()
    session = build_session(device, trace, config, seed)
    try:
        stats = device.execute_trace(
            trace,
            workload=workload,
            functional=functional,
            verify=verify,
            engine=engine,
            faults=session,
        )
    except SimulationFault:
        if session.abort_index is None:
            raise
        stats = None
    time_ns = None if stats is None else stats.time_ns
    report = session.report(workload, _seed_label(seed), time_ns=time_ns)
    return stats, report


# ----------------------------------------------------------------------
# Monte-Carlo campaigns
# ----------------------------------------------------------------------
def _build_run(
    workload: str,
    scale: float,
    use_cache: bool = True,
    cache_dir=None,
    deep_check: bool = False,
):
    """(device, trace) for one workload name; raises ValueError.

    Every Monte-Carlo run rebuilds the identical workload, so the trace
    comes from the content-addressed cache
    (:func:`repro.core.compile.compile_workload`): run 0 compiles and
    stores, runs 1..N-1 load — ``use_cache=False`` restores the old
    compile-every-run behaviour.

    ``deep_check`` runs the whole-trace dataflow analysis on the
    compiled trace and raises
    :class:`~repro.verify.trace_verifier.TraceVerificationError` on any
    error-severity finding — a campaign injecting faults into a program
    that already races or reads uninitialised state would attribute
    those defects to the injected faults.
    """
    from repro.core.compile import compile_workload
    from repro.workloads import (
        DNN_WORKLOADS,
        EXTRA_WORKLOADS,
        POLYBENCH,
        dnn_workload,
        extra_workload,
        polybench_workload,
    )

    if workload in POLYBENCH:
        spec = polybench_workload(workload, scale=scale)
    elif workload in DNN_WORKLOADS:
        spec = dnn_workload(workload)
    elif workload in EXTRA_WORKLOADS:
        spec = extra_workload(workload, scale=scale)
    else:
        raise ValueError(
            f"unknown workload {workload!r}; choose from "
            f"{sorted([*POLYBENCH, *DNN_WORKLOADS, *EXTRA_WORKLOADS])}"
        )
    if spec.build is None:
        raise ValueError(f"workload {workload!r} has no task builder")
    compiled = compile_workload(
        spec,
        use_cache=use_cache,
        cache_dir=cache_dir,
        deep_verify=deep_check,
    )
    if deep_check and not compiled.deep_report.ok():
        from repro.verify.trace_verifier import TraceVerificationError

        raise TraceVerificationError(compiled.deep_report)
    return compiled.device, compiled.trace


def _campaign_worker(job) -> ReliabilityRunReport:
    """Run one campaign seed; top-level so it pickles for the pool."""
    (
        workload,
        scale,
        config,
        master_seed,
        run_index,
        engine,
        functional,
        use_cache,
        cache_dir,
    ) = job
    device, trace = _build_run(
        workload, scale, use_cache=use_cache, cache_dir=cache_dir
    )
    seed = np.random.SeedSequence(master_seed, spawn_key=(run_index,))
    _, report = run_with_faults(
        device,
        trace,
        config,
        seed=seed,
        workload=workload,
        engine=engine,
        functional=functional,
    )
    return report


def run_campaign(
    workload: str,
    config: Optional[FaultCampaignConfig] = None,
    scale: float = 0.01,
    runs: int = 16,
    master_seed: int = 0,
    jobs: int = 1,
    engine: str = "scalar",
    functional: bool = True,
    use_cache: bool = True,
    cache_dir=None,
    deep_check: bool = False,
) -> CampaignReport:
    """Monte-Carlo fault campaign: ``runs`` independent seeds.

    Each run rebuilds its workload, spawns its sub-seed from
    ``master_seed``, and executes with fault injection; with
    ``jobs > 1`` the runs are distributed over a process pool and the
    report is identical to the sequential one (each run is a pure
    function of its job tuple).  The fail-fast build below also primes
    the trace cache, so every run — in-process or pooled — loads the
    compiled trace instead of re-lowering it (``use_cache=False``
    opts out).

    ``deep_check`` gates the campaign on the whole-trace dataflow
    analysis during the fail-fast build: an error-severity finding
    (uninitialised read, schedule race) aborts before any fault is
    injected, raising ``TraceVerificationError``.
    """
    if runs <= 0:
        raise ValueError(f"runs must be positive, got {runs}")
    config = config or FaultCampaignConfig()
    # Fail fast on bad names (and, with deep_check, on traces whose
    # dataflow is already broken); with caching on, this also compiles
    # the trace once so the per-run builds below are cache hits.
    _build_run(
        workload,
        scale,
        use_cache=use_cache,
        cache_dir=cache_dir,
        deep_check=deep_check,
    )
    job_list = [
        (
            workload,
            scale,
            config,
            master_seed,
            index,
            engine,
            functional,
            use_cache,
            cache_dir,
        )
        for index in range(runs)
    ]
    if jobs <= 1:
        reports = [_campaign_worker(job) for job in job_list]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            reports = list(pool.map(_campaign_worker, job_list))
    return CampaignReport(
        workload=workload,
        scale=scale,
        engine=engine,
        policy=config.policy.value,
        master_seed=master_seed,
        runs=tuple(reports),
    )
