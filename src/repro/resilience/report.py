"""Reliability reports: one per run, one per campaign.

A :class:`ReliabilityRunReport` is attached to every fault-injected run
and deliberately carries no engine field — the scalar and vector engines
must produce *equal* reports under one seed, and that equality is
asserted by the differential tests.  A :class:`CampaignReport`
aggregates the Monte-Carlo runs of ``repro-streampim faults campaign``
and exposes the observed-vs-analytic undetected-fault comparison that
ties the simulation back to
:class:`~repro.core.redundancy.RedundancyAnalysis`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional, TextIO, Tuple, Union


@dataclass(frozen=True)
class ReliabilityRunReport:
    """Fault/detection/recovery outcome of one trace execution.

    Attributes:
        workload: workload label.
        seed: run seed (the campaign run index for spawned sub-seeds).
        policy: recovery policy name.
        n_vpcs: trace length.
        hops: bounded segment hops the trace performs in total.
        p_hop: per-hop misalignment probability.
        injected: sampled misaligned hops.
        detected: faults the guard domains caught.
        undetected: silent faults (the SDC source).
        retries: re-shift attempts spent repairing detected faults.
        recovered: detected faults fully repaired.
        sdc_events: VPCs whose destination was silently corrupted.
        sdc_rate: ``sdc_events / n_vpcs``.
        aborted: True when execution stopped with a SimulationFault.
        abort_index: trace position of the abort, when any.
        quarantined: (bank, subarray) pairs the degrade policy retired.
        recovery_ns: total repair/migration time charged to the run.
        recovery_pj: total repair/migration energy charged to the run.
        time_ns: end-to-end run time (None when the run aborted).
        expected_undetected: analytic expected undetected-fault count
            (consistent with ``RedundancyAnalysis``).
        mttf_ns: observed mean time to (undetected) failure, when the
            run completed and suffered at least one silent fault.
    """

    workload: str
    seed: int
    policy: str
    n_vpcs: int
    hops: int
    p_hop: float
    injected: int
    detected: int
    undetected: int
    retries: int
    recovered: int
    sdc_events: int
    sdc_rate: float
    aborted: bool
    abort_index: Optional[int]
    quarantined: Tuple[Tuple[int, int], ...]
    recovery_ns: float
    recovery_pj: float
    time_ns: Optional[float]
    expected_undetected: float
    mttf_ns: Optional[float]

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["quarantined"] = [list(key) for key in self.quarantined]
        return payload


@dataclass(frozen=True)
class CampaignReport:
    """Aggregate of one Monte-Carlo fault campaign.

    ``observed_undetected_mean`` converging to
    ``expected_undetected_per_run`` (within Monte-Carlo error) is the
    consistency check against the analytic redundancy model; the MTTF
    estimate divides completed-run time by observed silent faults.
    """

    workload: str
    scale: float
    engine: str
    policy: str
    master_seed: int
    runs: Tuple[ReliabilityRunReport, ...]

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def aborted_runs(self) -> int:
        return sum(1 for run in self.runs if run.aborted)

    @property
    def total_injected(self) -> int:
        return sum(run.injected for run in self.runs)

    @property
    def total_detected(self) -> int:
        return sum(run.detected for run in self.runs)

    @property
    def total_undetected(self) -> int:
        return sum(run.undetected for run in self.runs)

    @property
    def sdc_runs(self) -> int:
        return sum(1 for run in self.runs if run.sdc_events > 0)

    @property
    def observed_undetected_mean(self) -> float:
        if not self.runs:
            return 0.0
        return self.total_undetected / len(self.runs)

    @property
    def expected_undetected_per_run(self) -> float:
        if not self.runs:
            return 0.0
        return self.runs[0].expected_undetected

    @property
    def mttf_ns(self) -> Optional[float]:
        """Completed-run time divided by observed silent faults."""
        completed = [run for run in self.runs if run.time_ns is not None]
        silent = sum(run.undetected for run in completed)
        if not completed or silent == 0:
            return None
        total_time = 0.0
        for run in completed:
            total_time += run.time_ns
        return total_time / silent

    @property
    def analytic_mttf_ns(self) -> Optional[float]:
        """Mean completed-run time over the analytic expected count."""
        completed = [run for run in self.runs if run.time_ns is not None]
        expected = self.expected_undetected_per_run
        if not completed or expected <= 0.0:
            return None
        total_time = 0.0
        for run in completed:
            total_time += run.time_ns
        return (total_time / len(completed)) / expected

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "scale": self.scale,
            "engine": self.engine,
            "policy": self.policy,
            "master_seed": self.master_seed,
            "n_runs": self.n_runs,
            "aborted_runs": self.aborted_runs,
            "sdc_runs": self.sdc_runs,
            "total_injected": self.total_injected,
            "total_detected": self.total_detected,
            "total_undetected": self.total_undetected,
            "observed_undetected_mean": self.observed_undetected_mean,
            "expected_undetected_per_run": self.expected_undetected_per_run,
            "mttf_ns": self.mttf_ns,
            "analytic_mttf_ns": self.analytic_mttf_ns,
            "runs": [run.to_dict() for run in self.runs],
        }

    def to_json(self, target: Union[str, Path, TextIO]) -> None:
        if isinstance(target, (str, Path)):
            with open(target, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=1)
            return
        json.dump(self.to_dict(), target, indent=1)
