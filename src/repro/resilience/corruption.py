"""Bit-accurate word corruption for undetected shift faults.

An undetected over/under-shift leaves a racetrack's domain train off by
``drift`` positions, so every word subsequently read from it comes back
with its bits displaced.  :func:`corrupt_words` models that as a
rotation of each word's low bit window:

* the rotation is a bijection, so repeated faults keep corrupting
  rather than saturating, and the corruption is deterministic — both
  trace engines applying the same drift to the same words produce the
  same bits;
* only the low 31 bits rotate and the sign bit never sets, so corrupted
  words remain valid non-negative operands whose products stay inside
  int64 — downstream VPCs *propagate* the corruption instead of
  tripping the processor's operand validation, which is the
  silent-data-corruption behaviour the campaign measures.
"""

from __future__ import annotations

import numpy as np

_WINDOW_BITS = 31
_WINDOW_MASK = np.uint64((1 << _WINDOW_BITS) - 1)


def corrupt_words(values: np.ndarray, drift: int) -> np.ndarray:
    """Rotate each word's low 31 bits by ``drift`` positions.

    Positive drift (over-shift) rotates left, negative (under-shift)
    rotates right; ``drift`` of zero returns the input unchanged.  Bits
    above the window are preserved, so the result is always
    non-negative for non-negative input.
    """
    if drift == 0:
        return np.asarray(values, dtype=np.int64)
    steps = abs(drift) % _WINDOW_BITS
    if steps == 0:
        steps = 1  # a full-period drift still misplaces the word
    if drift < 0:
        steps = _WINDOW_BITS - steps
    raw = np.asarray(values, dtype=np.int64).astype(np.uint64)
    low = raw & _WINDOW_MASK
    left = np.uint64(steps)
    right = np.uint64(_WINDOW_BITS - steps)
    rotated = ((low << left) | (low >> right)) & _WINDOW_MASK
    return ((raw & ~_WINDOW_MASK) | rotated).astype(np.int64)
