"""End-to-end fault-injection campaigns with detect/recover policies.

Threads the paper's shift-fault model (section III-D) through event-mode
trace execution: seeded per-VPC fault sampling
(:mod:`~repro.resilience.plan`), guard-domain detection with
configurable recovery — bounded retry, typed abort, or subarray
quarantine (:mod:`~repro.resilience.session`) — bit-accurate silent
corruption (:mod:`~repro.resilience.corruption`), and Monte-Carlo
campaigns over seeds (:mod:`~repro.resilience.campaign`) whose reports
tie back to the analytic
:class:`~repro.core.redundancy.RedundancyAnalysis`.

Both trace engines accept a :class:`FaultSession` via
``execute_trace(..., faults=session)`` and stay bit-identical under the
same seed; the CLI surface is ``repro-streampim faults run|campaign``.
"""

from repro.resilience.campaign import (
    build_session,
    run_campaign,
    run_with_faults,
)
from repro.resilience.corruption import corrupt_words
from repro.resilience.plan import (
    FaultCampaignConfig,
    FaultPlan,
    PlannedFault,
    RecoveryPolicy,
    build_fault_plan,
)
from repro.resilience.report import CampaignReport, ReliabilityRunReport
from repro.resilience.session import FaultSession

__all__ = [
    "CampaignReport",
    "FaultCampaignConfig",
    "FaultPlan",
    "FaultSession",
    "PlannedFault",
    "RecoveryPolicy",
    "ReliabilityRunReport",
    "build_fault_plan",
    "build_session",
    "corrupt_words",
    "run_campaign",
    "run_with_faults",
]
