"""StreamPIM: streaming matrix computation in racetrack memory.

A full reproduction of the HPCA 2024 paper: the racetrack-memory device
model, the bit-accurate domain-wall logic substrate, the StreamPIM
architecture simulator (RM processor, segmented RM bus, VPC control
flow, ``distribute``/``unblock`` optimisations), every baseline platform
of the evaluation, and the PolyBench/DNN workload generators.

Quickstart::

    import numpy as np
    from repro import create_pim_task, TaskOp

    task = create_pim_task()
    task.add_matrix("A", np.arange(16).reshape(4, 4) % 7)
    task.add_matrix("B", np.eye(4, dtype=int))
    task.add_matrix("C", shape=(4, 4))
    task.add_operation(TaskOp.MATMUL, "A", "B", "C")
    report = task.run()
    print(report.time_ns, report.energy_pj)
"""

from repro.core import (
    PimTask,
    RunReport,
    StreamPIMConfig,
    StreamPIMDevice,
    TaskOp,
    create_pim_task,
)
from repro.core.scheduler import SchedulerPolicy
from repro.rm.timing import RMTimingConfig, energy_per_gate_pj
from repro.rm.address import DeviceGeometry
from repro.workloads import (
    POLYBENCH,
    DNN_WORKLOADS,
    polybench_workload,
    dnn_workload,
)
from repro.baselines import default_platforms
from repro.frontend import Matrix, Program, Scalar, Vector, compile_program

__version__ = "1.0.0"

__all__ = [
    "PimTask",
    "RunReport",
    "StreamPIMConfig",
    "StreamPIMDevice",
    "TaskOp",
    "create_pim_task",
    "SchedulerPolicy",
    "RMTimingConfig",
    "energy_per_gate_pj",
    "DeviceGeometry",
    "POLYBENCH",
    "DNN_WORKLOADS",
    "polybench_workload",
    "dnn_workload",
    "default_platforms",
    "Matrix",
    "Program",
    "Scalar",
    "Vector",
    "compile_program",
    "__version__",
]
