"""Shift-based scalar multiplier (Fig. 8).

A hardware scalar multiplication takes three steps: duplicate one operand
(A) once per bit of the other (B), AND each replica with one bit of B to
form the partial products, and sum the partial products with an adder
tree.  The partial product for bit ``i`` enters the tree shifted left by
``i`` positions — on a nanowire this shift is free positioning, so the
model zero-pads instead of charging gates for it.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.dwlogic.adder import AdderTree
from repro.dwlogic.bitutils import bits_to_int, int_to_bits
from repro.dwlogic.duplicator import Duplicator
from repro.dwlogic.gates import GateCounter, dw_and


class ShiftMultiplier:
    """Bit-accurate ``width x width -> 2*width`` unsigned multiplier.

    Args:
        width: operand width in bits (the paper's datapath is 8).
    """

    def __init__(self, width: int = 8) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.width = width
        self.adder_tree = AdderTree(width)
        self.duplicator = Duplicator()

    @property
    def result_width(self) -> int:
        return 2 * self.width

    def partial_products(
        self,
        a_bits: Sequence[int],
        b_bits: Sequence[int],
        counter: GateCounter | None = None,
    ) -> List[List[int]]:
        """Form the ``width`` shifted partial products ``A * b_i``.

        Each partial product ``i`` is A AND-ed with bit ``b_i``, placed at
        offset ``i`` and zero-extended to the result width.
        """
        self._check_operand("a", a_bits)
        self._check_operand("b", b_bits)
        products: List[List[int]] = []
        for i, b_bit in enumerate(b_bits):
            row = [dw_and(a_bit, b_bit, counter) for a_bit in a_bits]
            padded = [0] * i + row
            padded += [0] * (self.result_width - len(padded))
            products.append(padded)
        return products

    def multiply_bits(
        self,
        a_bits: Sequence[int],
        b_bits: Sequence[int],
        counter: GateCounter | None = None,
    ) -> List[int]:
        """Multiply two LSB-first bit vectors through the full datapath.

        Runs the duplicator (one duplication per bit of B), the AND
        plane, and the adder tree, and returns the LSB-first product
        truncated to ``result_width`` bits.
        """
        self.duplicator.load(a_bits)
        replicas = self.duplicator.duplicate_n(self.width)
        self.duplicator.drain()
        products: List[List[int]] = []
        for i, (replica, b_bit) in enumerate(zip(replicas, b_bits)):
            row = [dw_and(a_bit, b_bit, counter) for a_bit in replica]
            padded = [0] * i + row
            padded += [0] * (self.result_width - len(padded))
            products.append(padded)
        total = self.adder_tree.sum_bits(products, counter)
        return total[: self.result_width]

    def multiply(
        self, a: int, b: int, counter: GateCounter | None = None
    ) -> int:
        """Multiply two unsigned integers of ``width`` bits."""
        a_bits = int_to_bits(a, self.width)
        b_bits = int_to_bits(b, self.width)
        return bits_to_int(self.multiply_bits(a_bits, b_bits, counter))

    def _check_operand(self, name: str, bits: Sequence[int]) -> None:
        if len(bits) != self.width:
            raise ValueError(
                f"{name} must be {self.width} bits, got {len(bits)}"
            )
