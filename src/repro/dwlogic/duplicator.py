"""Fan-out duplicator (Fig. 9).

Scalar multiplication needs one operand replicated once per bit of the
other operand (section III-C).  Shift operations *move* domains rather
than copying them, so StreamPIM builds a *Duplicator* from two
material-level mechanisms:

* **Fan-out** — a Y-shaped nanowire junction: a domain propagating
  through the fan-out point is split into two domains, one per branch.
* **Domain-wall diode** — placed on one branch so the replica on that
  branch can be shifted *back* to the input position without colliding
  with incoming data.

One duplication is a four-step cycle: (1) shift data toward the
branches, (2) the domain splits at the fan-out point, (3) the retained
replica returns through the diode branch, (4) data is back at the start,
ready to duplicate again, while the other replica moves onward.

An ``n``-bit scalar multiplication therefore needs ``n`` duplications;
the processor integrates several duplicators working on different parts
of a vector to hide this latency (Table III uses 2).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.dwlogic.diode import DomainWallDiode


class Duplicator:
    """Functional model of the fan-out duplicator.

    Holds a word (as an LSB-first bit list) at its input position and
    emits one replica per :meth:`duplicate` call, modelling the four-step
    shift sequence of Fig. 9.  Step counting lets the processor timing
    model derive the duplication initiation interval from the structure
    instead of hard-coding it.
    """

    #: Shift steps in one duplication cycle (Fig. 9 steps 1-4).
    STEPS_PER_DUPLICATION = 4

    def __init__(self) -> None:
        self.diode = DomainWallDiode(forward=-1)
        self._word: List[int] | None = None
        self.duplication_count = 0
        self.step_count = 0

    @property
    def loaded(self) -> bool:
        return self._word is not None

    def load(self, bits: Sequence[int]) -> None:
        """Place an operand at the duplicator input."""
        word = list(bits)
        if not word:
            raise ValueError("cannot load an empty word")
        if any(b not in (0, 1) for b in word):
            raise ValueError(f"bits must be 0/1, got {word}")
        self._word = word

    def duplicate(self) -> List[int]:
        """Run one four-step duplication; return the outgoing replica.

        The retained replica stays loaded, so the call can be repeated —
        exactly how the processor produces the n copies needed for an
        n-bit multiplication.

        Raises:
            RuntimeError: if no word is loaded.
        """
        if self._word is None:
            raise RuntimeError("duplicator is empty; call load() first")
        # Step 1: shift toward the branches. Step 2: fan-out split.
        outgoing = list(self._word)
        retained = list(self._word)
        # Step 3: retained replica returns through the diode branch.
        self.diode.propagate(self.diode.forward)
        # Step 4: back at the input position.
        self._word = retained
        self.duplication_count += 1
        self.step_count += self.STEPS_PER_DUPLICATION
        return outgoing

    def duplicate_n(self, count: int) -> List[List[int]]:
        """Produce ``count`` replicas (``count`` duplication cycles)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.duplicate() for _ in range(count)]

    def drain(self) -> List[int]:
        """Remove and return the loaded word (ends the operand's use)."""
        if self._word is None:
            raise RuntimeError("duplicator is empty")
        word = self._word
        self._word = None
        return word
