"""Transverse-read addition (the CORUSCANT mechanism, section II-B).

CORUSCANT accelerates arithmetic with *Transverse Read*: one sensing
operation reports how many of a span of consecutive domains are set.
Storing the operands bit-interleaved on one racetrack —
``[a0, b0, a1, b1, ...]`` — a TR of span 2 at position ``2i`` yields
``a_i + b_i`` directly; the peripheral CMOS then ripples the carries and
writes the sum back.

This module implements that datapath on the real
:class:`~repro.rm.nanowire.Racetrack` model so the two PIM styles can be
compared operation-for-operation: TR addition needs only ``n`` sensing
operations (versus the domain-wall adder's ``11n`` gate evaluations) but
must *write the result back into the magnetic domain* — the
electromagnetic-conversion cost StreamPIM's shift-only datapath avoids,
and the reason CORUSCANT's per-op time is write-dominated (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.dwlogic.bitutils import bits_to_int, int_to_bits
from repro.rm.nanowire import Racetrack


@dataclass
class TROpCounts:
    """RM operations one TR addition performed."""

    transverse_reads: int = 0
    writes: int = 0
    shifts: int = 0


class TransverseReadAdder:
    """CORUSCANT-style adder over one interleaved racetrack.

    Args:
        width: operand width in bits.
    """

    def __init__(self, width: int = 8) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.width = width
        # Interleaved layout: 2 domains per bit position, one port at
        # the start; TR senses span-2 columns as the track shifts by.
        self._track = Racetrack(
            2 * width, ports=[0], overhead=2 * width
        )

    def load(self, a: int, b: int) -> None:
        """Write both operands, bit-interleaved, onto the track."""
        a_bits = int_to_bits(a, self.width)
        b_bits = int_to_bits(b, self.width)
        interleaved: List[int] = []
        for a_bit, b_bit in zip(a_bits, b_bits):
            interleaved.extend((a_bit, b_bit))
        self._track.load(interleaved)

    def add(
        self, a: int, b: int, counts: TROpCounts | None = None
    ) -> int:
        """Add two unsigned integers through the TR datapath.

        Per bit position: one shift to align the bit pair under the
        port, one transverse read of span 2 (the per-position sum), and
        — once the peripheral logic has rippled the carries — one write
        per result bit to store the sum back into the array.
        """
        self.load(a, b)
        counts = counts if counts is not None else TROpCounts()
        position_sums: List[int] = []
        for bit in range(self.width):
            distance = self._track.align(2 * bit)
            counts.shifts += distance
            position_sums.append(self._track.transverse_read(0, 2))
            counts.transverse_reads += 1
        # Peripheral carry ripple over the per-position sums (CMOS side).
        result_bits: List[int] = []
        carry = 0
        for total in position_sums:
            total += carry
            result_bits.append(total & 1)
            carry = total >> 1
        result_bits.append(carry)
        # The result is written back into the magnetic domain — the
        # conversion cost CORUSCANT pays and StreamPIM does not.
        counts.writes += len(result_bits)
        return bits_to_int(result_bits)


def tr_add(a: int, b: int, width: int = 8) -> int:
    """One-shot TR addition (convenience wrapper)."""
    return TransverseReadAdder(width).add(a, b)
