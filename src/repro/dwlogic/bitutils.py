"""Bit-vector helpers shared by the domain-wall logic models.

Bit lists are LSB-first throughout this package: ``bits[0]`` is the least
significant bit, matching how operands stream tail-first through the
shift-based datapath.
"""

from __future__ import annotations

from typing import List, Sequence


def int_to_bits(value: int, width: int) -> List[int]:
    """Convert an unsigned integer to an LSB-first bit list.

    Args:
        value: non-negative integer, must fit in ``width`` bits.
        width: number of bits to produce.

    Raises:
        ValueError: if the value is negative or does not fit.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Convert an LSB-first bit list to an unsigned integer."""
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bits[{i}] must be 0 or 1, got {bit}")
        value |= bit << i
    return value


def bit_width(value: int) -> int:
    """Minimum number of bits needed to represent a non-negative int."""
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return max(1, value.bit_length())
