"""Circle adder (Fig. 10).

Stage 4 of the RM processor accumulates the stream of scalar-product
results of a dot product.  The *circle adder* is an n-bit full adder
whose output loops back to one operand position through a circle-shaped
nanowire guarded by a domain-wall diode:

1. the full adder sums the incoming product ``d1`` with the accumulated
   result ``s1``;
2. the new result ``s2`` shifts across the diode;
3. ``s2`` travels around the circle nanowire back to the operand
   position;
4. the next product ``d2`` arrives, ready for the following iteration.

With the feedback path unused (operands simply shifted across the full
adder and out), the same hardware performs plain scalar addition — the
paper multiplexes one circle adder for both roles.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.dwlogic.adder import ripple_carry_add
from repro.dwlogic.bitutils import bits_to_int, int_to_bits
from repro.dwlogic.diode import DomainWallDiode
from repro.dwlogic.gates import GateCounter


class CircleAdder:
    """Accumulator built from a full adder and a circular feedback wire.

    Args:
        width: bit width of the accumulation register.  Dot products over
            long vectors need headroom beyond the product width; callers
            size this as ``2 * operand_bits + ceil(log2(n))``.
    """

    #: Shift steps of one accumulation iteration (Fig. 10 steps 1-4).
    STEPS_PER_ACCUMULATE = 4

    def __init__(self, width: int = 32) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.width = width
        self.diode = DomainWallDiode(forward=1)
        self._acc_bits: List[int] = [0] * width
        self.accumulate_count = 0
        self.step_count = 0

    @property
    def value(self) -> int:
        """Current accumulated value."""
        return bits_to_int(self._acc_bits)

    def reset(self) -> None:
        self._acc_bits = [0] * self.width
        self.accumulate_count = 0
        self.step_count = 0

    def accumulate_bits(
        self, bits: Sequence[int], counter: GateCounter | None = None
    ) -> None:
        """Add an incoming LSB-first value into the accumulator.

        Models the four-step loop of Fig. 10, including the diode
        crossing on the feedback path.

        Raises:
            OverflowError: if the sum no longer fits in ``width`` bits —
                a real circle adder would silently wrap, so the model
                refuses instead of corrupting results.
        """
        if len(bits) > self.width:
            raise ValueError(
                f"operand of {len(bits)} bits exceeds accumulator width "
                f"{self.width}"
            )
        total = ripple_carry_add(self._acc_bits, list(bits), counter)
        if any(total[self.width :]):
            raise OverflowError(
                f"accumulator overflow: result needs more than "
                f"{self.width} bits"
            )
        # Steps 2-3: the new sum crosses the diode and loops back.
        self.diode.propagate(self.diode.forward)
        self._acc_bits = total[: self.width]
        self.accumulate_count += 1
        self.step_count += self.STEPS_PER_ACCUMULATE

    def accumulate(self, value: int, counter: GateCounter | None = None) -> None:
        """Add an unsigned integer into the accumulator."""
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        self.accumulate_bits(
            int_to_bits(value, max(1, value.bit_length())), counter
        )

    def add_once(
        self,
        a_bits: Sequence[int],
        b_bits: Sequence[int],
        counter: GateCounter | None = None,
    ) -> List[int]:
        """One-shot scalar addition (feedback path bypassed).

        This is the multiplexed "simple adder" role: operands shift
        across the full adder and the result leaves immediately instead
        of looping back.
        """
        return ripple_carry_add(list(a_bits), list(b_bits), counter)

    def dot_product_tail(
        self,
        products: Sequence[int],
        counter: GateCounter | None = None,
    ) -> int:
        """Accumulate a stream of scalar products and return the total."""
        self.reset()
        for product in products:
            self.accumulate(product, counter)
        return self.value
