"""Domain-wall nanowire logic substrate (bit-accurate).

Implements the physical mechanism of section III-A — Boolean logic
performed directly on domain-wall nanowires via DMI-coupled inverters
(Luo et al., Nature 2020) — as functional, bit-accurate models: NOT/NAND/
NOR primitive gates, composed AND/OR/XOR, full adders, ripple-carry
adders, adder trees, the fan-out duplicator, the domain-wall diode, the
shift-based multiplier, and the circle adder.  Every gate evaluation is
counted so higher layers can charge per-gate energy.
"""

from repro.dwlogic.bitutils import (
    int_to_bits,
    bits_to_int,
    bit_width,
)
from repro.dwlogic.gates import (
    GateCounter,
    dw_not,
    dw_nand,
    dw_nor,
    dw_and,
    dw_or,
    dw_xor,
)
from repro.dwlogic.adder import (
    full_adder,
    ripple_carry_add,
    AdderTree,
)
from repro.dwlogic.diode import DomainWallDiode, DiodeDirectionError
from repro.dwlogic.duplicator import Duplicator
from repro.dwlogic.multiplier import ShiftMultiplier
from repro.dwlogic.circle_adder import CircleAdder
from repro.dwlogic.divider import RestoringDivider
from repro.dwlogic.isqrt import SquareRootExtractor
from repro.dwlogic.floatpoint import (
    BFLOAT16,
    DWFloat,
    DWFloatUnit,
    FloatFormat,
)

__all__ = [
    "int_to_bits",
    "bits_to_int",
    "bit_width",
    "GateCounter",
    "dw_not",
    "dw_nand",
    "dw_nor",
    "dw_and",
    "dw_or",
    "dw_xor",
    "full_adder",
    "ripple_carry_add",
    "AdderTree",
    "DomainWallDiode",
    "DiodeDirectionError",
    "Duplicator",
    "ShiftMultiplier",
    "CircleAdder",
    "RestoringDivider",
    "SquareRootExtractor",
    "BFLOAT16",
    "DWFloat",
    "DWFloatUnit",
    "FloatFormat",
]
