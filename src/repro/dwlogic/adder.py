"""Domain-wall adders: full adder, ripple-carry adder, adder tree.

The one-bit full adder of Fig. 6 is built from domain-wall NAND gates;
the RM processor chains it into a ripple-carry adder for scalar addition
(section III-C) and into an adder tree that sums the partial products of
a multiplication.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.dwlogic.bitutils import bits_to_int, int_to_bits
from repro.dwlogic.gates import GateCounter, dw_nand, dw_xor


def full_adder(
    a: int, b: int, cin: int, counter: GateCounter | None = None
) -> Tuple[int, int]:
    """One-bit full adder from NAND/XOR domain-wall gates (Fig. 6).

    Returns:
        ``(sum, carry_out)``.
    """
    partial = dw_xor(a, b, counter)
    s = dw_xor(partial, cin, counter)
    # carry = (a AND b) OR (cin AND (a XOR b)) via three NANDs.
    n1 = dw_nand(a, b, counter)
    n2 = dw_nand(partial, cin, counter)
    carry = dw_nand(n1, n2, counter)
    return s, carry


def ripple_carry_add(
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    counter: GateCounter | None = None,
    cin: int = 0,
) -> List[int]:
    """Ripple-carry addition of two LSB-first bit vectors.

    Operands of unequal width are zero-extended; the result carries one
    extra bit so no overflow is lost (the RM processor widens its
    accumulation nanowires the same way).

    Returns:
        LSB-first sum bits, ``max(len(a), len(b)) + 1`` wide.
    """
    width = max(len(a_bits), len(b_bits))
    if width == 0:
        raise ValueError("operands must have at least one bit")
    a_ext = list(a_bits) + [0] * (width - len(a_bits))
    b_ext = list(b_bits) + [0] * (width - len(b_bits))
    carry = cin
    out: List[int] = []
    for a_bit, b_bit in zip(a_ext, b_ext):
        s, carry = full_adder(a_bit, b_bit, carry, counter)
        out.append(s)
    out.append(carry)
    return out


class AdderTree:
    """Balanced tree of ripple-carry adders summing many operands.

    Stage 3 of the RM processor pipeline (Fig. 11) sums the partial
    products of a scalar multiplication with such a tree; its depth
    (``ceil(log2(n_operands))`` levels) sets that pipeline stage's fill
    latency.

    Args:
        n_operands: number of inputs the tree accepts (>= 1).
    """

    def __init__(self, n_operands: int) -> None:
        if n_operands < 1:
            raise ValueError(f"n_operands must be >= 1, got {n_operands}")
        self.n_operands = n_operands

    @property
    def depth(self) -> int:
        """Number of adder levels between inputs and the root."""
        depth = 0
        width = self.n_operands
        while width > 1:
            width = (width + 1) // 2
            depth += 1
        return depth

    @property
    def adder_count(self) -> int:
        """Total ripple-carry adders in the tree (n-1 for n operands)."""
        return max(0, self.n_operands - 1)

    def sum_bits(
        self,
        operands: Sequence[Sequence[int]],
        counter: GateCounter | None = None,
    ) -> List[int]:
        """Sum LSB-first bit vectors through the tree, level by level.

        Returns:
            LSB-first bits of the total.
        """
        if len(operands) != self.n_operands:
            raise ValueError(
                f"expected {self.n_operands} operands, got {len(operands)}"
            )
        level: List[List[int]] = [list(op) for op in operands]
        while len(level) > 1:
            next_level: List[List[int]] = []
            for i in range(0, len(level) - 1, 2):
                next_level.append(
                    ripple_carry_add(level[i], level[i + 1], counter)
                )
            if len(level) % 2 == 1:
                next_level.append(level[-1])
            level = next_level
        return level[0]

    def sum_ints(
        self,
        values: Sequence[int],
        width: int,
        counter: GateCounter | None = None,
    ) -> int:
        """Sum unsigned integers (each ``width`` bits) through the tree."""
        bit_operands = [int_to_bits(v, width) for v in values]
        return bits_to_int(self.sum_bits(bit_operands, counter))
