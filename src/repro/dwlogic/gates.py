"""Domain-wall logic gates.

Section III-A: coupling a magnetic metal with a heavy metal integrates
*domain-wall inverters* into a nanowire; a domain shifting across such an
inverter is logically inverted by the Dzyaloshinskii-Moriya interaction,
so the inverter acts as a NOT gate.  Coupling two inputs, one bias and
one output domain yields NAND (bias = 1) or NOR (bias = 0).  NOT, NAND
and NOR are functionally complete, so all other gates here are built from
them, exactly as a fabricated StreamPIM datapath would be.

Every primitive gate evaluation increments the supplied
:class:`GateCounter`, which higher layers convert to energy via the
per-gate figure of :func:`repro.rm.timing.energy_per_gate_pj`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


#: Bias value that configures the two-input DMI gate as NAND.
NAND_BIAS = 1
#: Bias value that configures the two-input DMI gate as NOR.
NOR_BIAS = 0


@dataclass
class GateCounter:
    """Counts primitive gate evaluations by kind."""

    counts: Dict[str, int] = field(default_factory=dict)

    def tick(self, kind: str, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self.counts[kind] = self.counts.get(kind, 0) + count

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def merge(self, other: "GateCounter") -> None:
        for kind, count in other.counts.items():
            self.tick(kind, count)

    def reset(self) -> None:
        self.counts.clear()


def _check_bit(name: str, bit: int) -> int:
    if bit not in (0, 1):
        raise ValueError(f"{name} must be 0 or 1, got {bit}")
    return bit


def dw_not(a: int, counter: GateCounter | None = None) -> int:
    """Domain-wall inverter: a domain flips as it shifts across the DMI
    coupling region."""
    _check_bit("a", a)
    if counter is not None:
        counter.tick("not")
    return 1 - a


def _dmi_gate(a: int, b: int, bias: int, counter: GateCounter | None) -> int:
    """The two-input, one-bias DMI-coupled gate of Fig. 6.

    The output domain's magnetisation follows the majority of the two
    (inverted) inputs and the bias: with bias = 1 the structure computes
    NAND, with bias = 0 it computes NOR.
    """
    _check_bit("a", a)
    _check_bit("b", b)
    _check_bit("bias", bias)
    if counter is not None:
        counter.tick("nand" if bias == NAND_BIAS else "nor")
    # Majority of (NOT a, NOT b, bias):
    inverted_sum = (1 - a) + (1 - b) + bias
    return 1 if inverted_sum >= 2 else 0


def dw_nand(a: int, b: int, counter: GateCounter | None = None) -> int:
    """Two-input NAND (DMI gate with bias = 1)."""
    return _dmi_gate(a, b, NAND_BIAS, counter)


def dw_nor(a: int, b: int, counter: GateCounter | None = None) -> int:
    """Two-input NOR (DMI gate with bias = 0)."""
    return _dmi_gate(a, b, NOR_BIAS, counter)


def dw_and(a: int, b: int, counter: GateCounter | None = None) -> int:
    """AND composed as NAND + NOT (2 primitive gates)."""
    return dw_not(dw_nand(a, b, counter), counter)


def dw_or(a: int, b: int, counter: GateCounter | None = None) -> int:
    """OR composed as NOR + NOT (2 primitive gates)."""
    return dw_not(dw_nor(a, b, counter), counter)


def dw_xor(a: int, b: int, counter: GateCounter | None = None) -> int:
    """XOR composed from four NAND gates (the canonical NAND network)."""
    nand_ab = dw_nand(a, b, counter)
    return dw_nand(
        dw_nand(a, nand_ab, counter),
        dw_nand(b, nand_ab, counter),
        counter,
    )


#: Primitive-gate cost of each composed operation (used by the timing
#: model to convert operation counts to gate counts without re-simulating
#: the bit-level network).
GATE_COSTS = {
    "not": 1,
    "nand": 1,
    "nor": 1,
    "and": 2,
    "or": 2,
    "xor": 4,
    # Full adder: sum = 2 x XOR (8), carry = 3 x NAND (3): 11 primitives.
    "full_adder": 11,
}
