"""Domain-wall integer square-root extractor (section VI extension).

Digit-by-digit (binary restoring) square root: one result bit per
iteration, each iteration a trial subtraction through the same
two's-complement subtract network the divider uses — the classic
hardware method the paper's cited square-root designs pipeline.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.dwlogic.bitutils import bits_to_int, int_to_bits
from repro.dwlogic.divider import _twos_complement_subtract
from repro.dwlogic.gates import GateCounter


class SquareRootExtractor:
    """Bit-accurate integer square root over ``width``-bit radicands.

    Args:
        width: radicand width in bits (must be even so result bits pair
            with radicand bit-pairs; pad odd operands with a zero MSB).
    """

    def __init__(self, width: int = 16) -> None:
        if width <= 0 or width % 2 != 0:
            raise ValueError(
                f"width must be a positive even number, got {width}"
            )
        self.width = width

    @property
    def steps(self) -> int:
        """Trial-subtraction iterations per extraction."""
        return self.width // 2

    def isqrt_bits(
        self,
        radicand: Sequence[int],
        counter: GateCounter | None = None,
    ) -> Tuple[List[int], List[int]]:
        """LSB-first (root, remainder) with root^2 + remainder = input."""
        if len(radicand) != self.width:
            raise ValueError(
                f"radicand must be {self.width} bits, got {len(radicand)}"
            )
        acc_width = self.width + 2
        remainder: List[int] = [0] * acc_width
        root: List[int] = []
        for step in range(self.steps - 1, -1, -1):
            # Remainder <<= 2, bringing down the next radicand bit pair
            # (LSB-first: new low bits are the pair's low and high bit).
            pair = [radicand[2 * step], radicand[2 * step + 1]]
            remainder = pair + remainder[:-2]
            # Trial subtrahend: (root << 2) | 1.
            trial_sub = ([1, 0] + root)[:acc_width]
            trial_sub += [0] * (acc_width - len(trial_sub))
            trial, no_borrow = _twos_complement_subtract(
                remainder, trial_sub, acc_width, counter
            )
            if no_borrow:
                remainder = trial
            # Root <<= 1 with the new bit in the LSB.
            root = [no_borrow] + root
        return root, remainder[: self.width]

    def isqrt(self, value: int, counter: GateCounter | None = None) -> int:
        """Floor square root of an unsigned integer."""
        bits = int_to_bits(value, self.width)
        root, _ = self.isqrt_bits(bits, counter)
        return bits_to_int(root)
