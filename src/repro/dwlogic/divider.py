"""Domain-wall integer divider (section VI extension).

The paper leaves dividers as future work ("by implementing and
integrating other specified processors (e.g., divider, square-root
extractor ...) StreamPIM can be extended"); this module implements one
from the same primitives the core datapath uses: a restoring divider
built from ripple-carry subtraction (two's-complement addition through
the domain-wall full adder) and shift positioning, which on nanowires is
free placement.

One quotient bit is produced per iteration, so a ``width``-bit division
takes ``width`` subtract-and-restore steps — the structural cycle count
exposed for timing models.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.dwlogic.adder import ripple_carry_add
from repro.dwlogic.bitutils import bits_to_int, int_to_bits
from repro.dwlogic.gates import GateCounter, dw_not


def _twos_complement_subtract(
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    width: int,
    counter: GateCounter | None = None,
) -> Tuple[List[int], int]:
    """``a - b`` at fixed ``width`` via invert-and-add-one.

    Returns:
        ``(difference_bits, no_borrow)`` — ``no_borrow`` is the carry
        out, 1 when ``a >= b``.
    """
    a_ext = list(a_bits) + [0] * (width - len(a_bits))
    b_ext = list(b_bits) + [0] * (width - len(b_bits))
    b_inverted = [dw_not(bit, counter) for bit in b_ext]
    total = ripple_carry_add(a_ext, b_inverted, counter, cin=1)
    return total[:width], total[width]


class RestoringDivider:
    """Bit-accurate ``width``-bit restoring divider.

    Args:
        width: operand width in bits.
    """

    def __init__(self, width: int = 8) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.width = width

    @property
    def steps(self) -> int:
        """Subtract-and-restore iterations per division."""
        return self.width

    def divide_bits(
        self,
        dividend: Sequence[int],
        divisor: Sequence[int],
        counter: GateCounter | None = None,
    ) -> Tuple[List[int], List[int]]:
        """LSB-first (quotient, remainder) of an unsigned division.

        Raises:
            ZeroDivisionError: when the divisor is zero.
        """
        if len(dividend) != self.width or len(divisor) != self.width:
            raise ValueError(
                f"operands must be {self.width} bits, got "
                f"{len(dividend)}/{len(divisor)}"
            )
        if not any(divisor):
            raise ZeroDivisionError("division by zero")
        # Remainder register one bit wider than the divisor so the trial
        # subtraction's borrow is meaningful.
        acc_width = self.width + 1
        remainder = [0] * acc_width
        quotient = [0] * self.width
        for bit in range(self.width - 1, -1, -1):
            # Shift the next dividend bit into the remainder (MSB first).
            remainder = [dividend[bit]] + remainder[:-1]
            trial, no_borrow = _twos_complement_subtract(
                remainder, list(divisor), acc_width, counter
            )
            if no_borrow:
                remainder = trial
                quotient[bit] = 1
        return quotient, remainder[: self.width]

    def divide(
        self, dividend: int, divisor: int, counter: GateCounter | None = None
    ) -> Tuple[int, int]:
        """Unsigned integer division: returns (quotient, remainder)."""
        q_bits, r_bits = self.divide_bits(
            int_to_bits(dividend, self.width),
            int_to_bits(divisor, self.width),
            counter,
        )
        return bits_to_int(q_bits), bits_to_int(r_bits)
