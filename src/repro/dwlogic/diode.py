"""Domain-wall diode.

Luo et al. (Phys. Rev. Applied 2021) demonstrate a field-/current-driven
domain-wall diode: when enabled it lets domains propagate in only one
direction, which StreamPIM uses to steer data inside the duplicator
(Fig. 9) and the circle adder (Fig. 10).
"""

from __future__ import annotations


class DiodeDirectionError(RuntimeError):
    """Raised when a domain is pushed against an enabled diode."""


class DomainWallDiode:
    """Direction gate on a nanowire junction.

    Attributes:
        forward: the direction (+1 or -1) domains may pass when the
            diode is enabled.
        enabled: whether the diode currently blocks reverse propagation.
            A disabled diode passes domains both ways (the device can be
            switched off by removing its drive field/current).
    """

    def __init__(self, forward: int = 1, enabled: bool = True) -> None:
        if forward not in (1, -1):
            raise ValueError(f"forward must be +1 or -1, got {forward}")
        self.forward = forward
        self.enabled = enabled
        self.pass_count = 0
        self.block_count = 0

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def allows(self, direction: int) -> bool:
        """Whether a domain moving in ``direction`` may pass."""
        if direction not in (1, -1):
            raise ValueError(f"direction must be +1 or -1, got {direction}")
        return (not self.enabled) or direction == self.forward

    def propagate(self, direction: int) -> None:
        """Record a domain crossing attempt.

        Raises:
            DiodeDirectionError: if the diode blocks the move.
        """
        if not self.allows(direction):
            self.block_count += 1
            raise DiodeDirectionError(
                f"diode blocks propagation in direction {direction}"
            )
        self.pass_count += 1
