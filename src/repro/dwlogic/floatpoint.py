"""Domain-wall floating-point unit (section VI extension).

The paper names floating-point processors among the extensions that
would widen StreamPIM's kernel coverage (FFT, DNN training).  This
module builds a small binary floating-point format on top of the
integer blocks the core datapath already provides: the ripple-carry
adder/subtractor for exponent handling and mantissa addition, and the
shift-based multiplier for mantissa products — alignment shifts are,
as everywhere on nanowires, just positioning.

The default format is bfloat16-like (8-bit exponent, 7-bit stored
mantissa), chosen so the mantissa datapath matches the 8-bit integer
units.  Subnormals flush to zero, rounding is truncation (round toward
zero), and infinities/NaNs saturate — documented simplifications
consistent with an accelerator-style unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.dwlogic.gates import GateCounter
from repro.dwlogic.multiplier import ShiftMultiplier
from repro.dwlogic.bitutils import int_to_bits, bits_to_int
from repro.dwlogic.adder import ripple_carry_add


@dataclass(frozen=True)
class FloatFormat:
    """A simple binary floating-point format.

    Attributes:
        exponent_bits: width of the biased exponent field.
        mantissa_bits: stored (fractional) mantissa bits; the leading
            one is implicit for normal numbers.
    """

    exponent_bits: int = 8
    mantissa_bits: int = 7

    def __post_init__(self) -> None:
        if self.exponent_bits <= 1 or self.mantissa_bits <= 0:
            raise ValueError("degenerate floating-point format")

    @property
    def bias(self) -> int:
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def max_exponent(self) -> int:
        return (1 << self.exponent_bits) - 1

    @property
    def total_bits(self) -> int:
        return 1 + self.exponent_bits + self.mantissa_bits


#: bfloat16: the default format.
BFLOAT16 = FloatFormat(exponent_bits=8, mantissa_bits=7)


@dataclass(frozen=True)
class DWFloat:
    """One packed floating-point value: (sign, exponent, mantissa)."""

    sign: int
    exponent: int
    mantissa: int
    fmt: FloatFormat = BFLOAT16

    def __post_init__(self) -> None:
        if self.sign not in (0, 1):
            raise ValueError(f"sign must be 0/1, got {self.sign}")
        if not 0 <= self.exponent <= self.fmt.max_exponent:
            raise ValueError(f"exponent {self.exponent} out of range")
        if not 0 <= self.mantissa < (1 << self.fmt.mantissa_bits):
            raise ValueError(f"mantissa {self.mantissa} out of range")

    # ------------------------------------------------------------------
    @classmethod
    def from_float(cls, value: float, fmt: FloatFormat = BFLOAT16) -> "DWFloat":
        """Encode a Python float (truncating; subnormals flush to 0)."""
        if value != value:  # NaN saturates to max magnitude
            return cls(0, fmt.max_exponent, (1 << fmt.mantissa_bits) - 1, fmt)
        sign = 1 if value < 0 else 0
        magnitude = abs(value)
        if magnitude == 0.0:
            return cls(sign, 0, 0, fmt)
        exponent = fmt.bias
        while magnitude >= 2.0 and exponent < fmt.max_exponent:
            magnitude /= 2.0
            exponent += 1
        while magnitude < 1.0 and exponent > 0:
            magnitude *= 2.0
            exponent -= 1
        if exponent <= 0 or magnitude < 1.0:
            return cls(sign, 0, 0, fmt)  # flush subnormals
        if exponent >= fmt.max_exponent:
            return cls(sign, fmt.max_exponent, 0, fmt)  # saturate
        mantissa = int((magnitude - 1.0) * (1 << fmt.mantissa_bits))
        return cls(sign, exponent, mantissa, fmt)

    def to_float(self) -> float:
        """Decode back to a Python float."""
        if self.exponent == 0 and self.mantissa == 0:
            return -0.0 if self.sign else 0.0
        if self.exponent == self.fmt.max_exponent and self.mantissa == 0:
            return float("-inf") if self.sign else float("inf")
        significand = 1.0 + self.mantissa / (1 << self.fmt.mantissa_bits)
        scale = 2.0 ** (self.exponent - self.fmt.bias)
        return (-1.0 if self.sign else 1.0) * significand * scale

    @property
    def is_zero(self) -> bool:
        return self.exponent == 0 and self.mantissa == 0


class DWFloatUnit:
    """Floating-point add/multiply built on the integer blocks."""

    def __init__(self, fmt: FloatFormat = BFLOAT16) -> None:
        self.fmt = fmt
        # Mantissa product width: implicit bit + stored bits.
        self._multiplier = ShiftMultiplier(fmt.mantissa_bits + 1)

    # ------------------------------------------------------------------
    def multiply(
        self, a: DWFloat, b: DWFloat, counter: GateCounter | None = None
    ) -> DWFloat:
        """Floating-point product (truncating)."""
        fmt = self.fmt
        sign = a.sign ^ b.sign
        if a.is_zero or b.is_zero:
            return DWFloat(sign, 0, 0, fmt)
        mant_a = (1 << fmt.mantissa_bits) | a.mantissa
        mant_b = (1 << fmt.mantissa_bits) | b.mantissa
        product = self._multiplier.multiply(mant_a, mant_b, counter)
        exponent = a.exponent + b.exponent - fmt.bias
        # The product of two [1, 2) significands is in [1, 4): renormalise.
        top_bit = 2 * fmt.mantissa_bits + 1
        if product >> top_bit:
            product >>= 1
            exponent += 1
        mantissa = (product >> fmt.mantissa_bits) & (
            (1 << fmt.mantissa_bits) - 1
        )
        return self._pack(sign, exponent, mantissa)

    def add(
        self, a: DWFloat, b: DWFloat, counter: GateCounter | None = None
    ) -> DWFloat:
        """Floating-point sum (truncating; same-format operands)."""
        fmt = self.fmt
        if a.is_zero:
            return b
        if b.is_zero:
            return a
        # Order so |a| >= |b| (compare packed magnitude).
        if (a.exponent, a.mantissa) < (b.exponent, b.mantissa):
            a, b = b, a
        align = a.exponent - b.exponent
        guard = 2  # guard bits kept through alignment
        mant_a = ((1 << fmt.mantissa_bits) | a.mantissa) << guard
        mant_b = ((1 << fmt.mantissa_bits) | b.mantissa) << guard
        mant_b >>= min(align, fmt.mantissa_bits + guard + 1)
        width = fmt.mantissa_bits + guard + 2
        if a.sign == b.sign:
            total_bits = ripple_carry_add(
                int_to_bits(mant_a, width),
                int_to_bits(mant_b, width),
                counter,
            )
            total = bits_to_int(total_bits)
            sign = a.sign
        else:
            from repro.dwlogic.divider import _twos_complement_subtract

            diff_bits, _ = _twos_complement_subtract(
                int_to_bits(mant_a, width),
                int_to_bits(mant_b, width),
                width,
                counter,
            )
            total = bits_to_int(diff_bits)
            sign = a.sign
        if total == 0:
            return DWFloat(0, 0, 0, fmt)
        exponent = a.exponent
        # Renormalise into [1, 2).
        top = fmt.mantissa_bits + guard
        while total >> (top + 1):
            total >>= 1
            exponent += 1
        while not (total >> top) and exponent > 0:
            total <<= 1
            exponent -= 1
        mantissa = (total >> guard) & ((1 << fmt.mantissa_bits) - 1)
        return self._pack(sign, exponent, mantissa)

    # ------------------------------------------------------------------
    def _pack(self, sign: int, exponent: int, mantissa: int) -> DWFloat:
        fmt = self.fmt
        if exponent <= 0:
            return DWFloat(sign, 0, 0, fmt)  # flush underflow
        if exponent >= fmt.max_exponent:
            return DWFloat(sign, fmt.max_exponent, 0, fmt)  # saturate
        return DWFloat(sign, exponent, mantissa, fmt)
