"""Host-interface granularity trade-off (section IV-A).

The paper weighs three granularities for the host PIM commands:

* **scalar** — each command carries two scalar operands: up to O(n^3)
  commands for an n x n matrix multiplication, maximal programmability,
  crushing host-link traffic;
* **vector** — the VPC design chosen by StreamPIM: O(n^2) commands, a
  simple decoder, enough programmability;
* **matrix** — O(1) commands naming whole matrices: minimal traffic but
  the device must manage Omega(n^2) operand units per command, and the
  host loses the ability to schedule at sub-matrix granularity.

This module quantifies that trade-off: command counts, encoded traffic
on the host link, link-occupancy time, and a decoder-complexity proxy —
the numbers behind the paper's choice of vector granularity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.isa.encoding import VPC_ENCODED_BYTES

if TYPE_CHECKING:  # pragma: no cover - type-only import (avoids a cycle)
    from repro.workloads.spec import WorkloadSpec


class CommandGranularity(enum.Enum):
    """Host-interface granularity choices of section IV-A."""

    SCALAR = "scalar"
    VECTOR = "vector"
    MATRIX = "matrix"


@dataclass(frozen=True)
class HostLinkModel:
    """The host-device command link.

    Attributes:
        bandwidth_gbps: sustained link bandwidth (command direction).
        command_bytes: encoded size of one command (the VPC wire format
            by default; scalar/matrix commands use the same framing).
        response_bytes: size of one completion response.
        decode_ns: device-side decode cost per command.
    """

    bandwidth_gbps: float = 16.0
    command_bytes: int = VPC_ENCODED_BYTES
    response_bytes: int = 8
    decode_ns: float = 10.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth_gbps must be positive")
        if self.command_bytes <= 0 or self.response_bytes < 0:
            raise ValueError("command sizes must be positive")
        if self.decode_ns < 0:
            raise ValueError("decode_ns must be non-negative")


@dataclass(frozen=True)
class GranularityProfile:
    """Interface cost of one workload at one granularity."""

    granularity: CommandGranularity
    commands: int
    traffic_bytes: int
    link_time_ns: float
    decode_time_ns: float
    #: Operand units the device must manage per command (decoder
    #: complexity proxy; the paper's Omega(n^2) argument against matrix
    #: granularity).
    max_units_per_command: int


def command_count(op, granularity: CommandGranularity) -> int:
    """Host commands one matrix operation needs at a granularity."""
    kind, dims = op.kind, op.dims
    if granularity is CommandGranularity.MATRIX:
        return 1
    if granularity is CommandGranularity.VECTOR:
        return op.pim_vpcs + op.move_vpcs
    # Scalar granularity: one command per scalar multiply/add.
    return op.scalar_muls + op.scalar_adds


def units_per_command(op, granularity: CommandGranularity) -> int:
    """Operand elements the device handles for one command."""
    from repro.workloads.spec import MatrixOpKind

    if granularity is CommandGranularity.SCALAR:
        return 2
    if granularity is CommandGranularity.VECTOR:
        kind, dims = op.kind, op.dims
        if kind is MatrixOpKind.MATMUL:
            return 2 * dims[1]  # two vectors of the inner dimension
        if kind in (MatrixOpKind.MATVEC, MatrixOpKind.MATVEC_T):
            return 2 * dims[1]
        return 2 * dims[-1]
    return op.operand_words  # matrix granularity: everything at once


def profile_workload(
    workload: "WorkloadSpec",
    granularity: CommandGranularity,
    link: HostLinkModel | None = None,
) -> GranularityProfile:
    """Interface cost of a workload at one command granularity."""
    link = link or HostLinkModel()
    commands = sum(command_count(op, granularity) for op in workload.ops)
    traffic = commands * (link.command_bytes + link.response_bytes)
    link_time = traffic / link.bandwidth_gbps
    decode_time = commands * link.decode_ns
    max_units = max(
        units_per_command(op, granularity) for op in workload.ops
    )
    return GranularityProfile(
        granularity=granularity,
        commands=commands,
        traffic_bytes=traffic,
        link_time_ns=link_time,
        decode_time_ns=decode_time,
        max_units_per_command=max_units,
    )


def compare_granularities(
    workload: "WorkloadSpec", link: HostLinkModel | None = None
):
    """Profiles for all three granularities, keyed by enum."""
    return {
        granularity: profile_workload(workload, granularity, link)
        for granularity in CommandGranularity
    }
