"""VPC command objects (Table II) and bank-level decomposition (Fig. 14).

A VPC operates on vectors identified by linear word addresses:

====  ========================  =============================
Cmd   Operands                  Meaning
====  ========================  =============================
MUL   src1, src2, des, size     dot product of two vectors
SMUL  src1, src2, des, size     scalar (at src1) times vector
ADD   src1, src2, des, size     element-wise vector addition
TRAN  src, des, size            data transfer (copy)
====  ========================  =============================

The device decodes each VPC into one or more *bank commands*; a bank
controller further decodes those into subarray operations (transfer on
the RM bus, processor operations, read/write for cross-subarray data
preparation).
"""

from __future__ import annotations

import enum
import numbers
from dataclasses import dataclass
from typing import Optional, Tuple


class VPCOpcode(enum.Enum):
    """Host-visible vector processing command opcodes (Table II)."""

    MUL = "MUL"
    SMUL = "SMUL"
    ADD = "ADD"
    TRAN = "TRAN"

    @property
    def is_compute(self) -> bool:
        """PIM-VPCs perform computation; TRAN is a move-VPC."""
        return self is not VPCOpcode.TRAN


@dataclass(frozen=True)
class VPC:
    """One vector processing command.

    Attributes:
        opcode: which command.
        src1: linear word address of the first operand vector (for TRAN,
            the source).
        src2: linear word address of the second operand (None for TRAN).
        des: linear word address of the destination.
        size: vector length in elements (words).
    """

    opcode: VPCOpcode
    src1: int
    src2: Optional[int]
    des: int
    size: int

    def __post_init__(self) -> None:
        if not isinstance(self.opcode, VPCOpcode):
            raise TypeError(
                f"opcode must be a VPCOpcode, got {self.opcode!r}"
            )
        # src2 is None exactly for TRAN (Table II: the only one-source
        # command); everything else takes two operand addresses.
        if self.opcode is VPCOpcode.TRAN:
            if self.src2 is not None:
                raise ValueError("TRAN takes a single source operand")
        elif self.src2 is None:
            raise ValueError(f"{self.opcode.value} needs two operands")
        for name in ("src1", "src2", "des", "size"):
            value = getattr(self, name)
            if name == "src2" and value is None:
                continue
            # Bools are Integral but never a meaningful address/length;
            # floats and strings from sloppy generators are rejected,
            # numpy integer scalars are normalised to builtin int so the
            # binary encoder always sees plain integers.
            if isinstance(value, bool) or not isinstance(
                value, numbers.Integral
            ):
                raise TypeError(
                    f"{name} must be an integer, got {value!r}"
                )
            object.__setattr__(self, name, int(value))
        if self.size < 1:
            raise ValueError(f"size must be >= 1, got {self.size}")
        if self.src1 < 0 or self.des < 0 or (
            self.src2 is not None and self.src2 < 0
        ):
            raise ValueError("addresses must be non-negative")

    @property
    def is_compute(self) -> bool:
        return self.opcode.is_compute

    @property
    def operands(self) -> Tuple[int, ...]:
        if self.src2 is None:
            return (self.src1,)
        return (self.src1, self.src2)

    @staticmethod
    def mul(src1: int, src2: int, des: int, size: int) -> "VPC":
        """Dot product: des[0] = sum_i src1[i] * src2[i]."""
        return VPC(VPCOpcode.MUL, src1, src2, des, size)

    @staticmethod
    def smul(src1: int, src2: int, des: int, size: int) -> "VPC":
        """Scalar-vector multiply: des[i] = src1[0] * src2[i]."""
        return VPC(VPCOpcode.SMUL, src1, src2, des, size)

    @staticmethod
    def add(src1: int, src2: int, des: int, size: int) -> "VPC":
        """Vector addition: des[i] = src1[i] + src2[i]."""
        return VPC(VPCOpcode.ADD, src1, src2, des, size)

    @staticmethod
    def tran(src: int, des: int, size: int) -> "VPC":
        """Data transfer: des[i] = src[i]."""
        return VPC(VPCOpcode.TRAN, src, None, des, size)


class BankOp(enum.Enum):
    """Operation classes a bank controller issues to a subarray."""

    TRANSFER_IN = "transfer_in"  # mats -> RM bus -> processor (shifts)
    COMPUTE = "compute"  # RM processor pipeline
    TRANSFER_OUT = "transfer_out"  # processor -> RM bus -> mats (shifts)
    READ = "read"  # cross-subarray data preparation
    WRITE = "write"  # cross-subarray data preparation


@dataclass(frozen=True)
class BankCommand:
    """One decoded, subarray-targeted command.

    Attributes:
        bank: target bank index.
        subarray: target subarray index within the bank.
        op: operation class.
        vpc: the originating VPC (for result bookkeeping).
        elements: how many vector elements the operation touches.
    """

    bank: int
    subarray: int
    op: BankOp
    vpc: VPC
    elements: int

    def __post_init__(self) -> None:
        if self.bank < 0 or self.subarray < 0:
            raise ValueError("bank/subarray must be non-negative")
        if self.elements <= 0:
            raise ValueError(f"elements must be positive, got {self.elements}")

    @property
    def uses_rw(self) -> bool:
        """Whether the op is of the read/write class (blocks PIM shifts)."""
        return self.op in (BankOp.READ, BankOp.WRITE)
