"""Fixed-width binary encoding of VPCs.

The host-device link carries VPCs as 21-byte packets: a 1-byte opcode and
four 5-byte little-endian fields (src1, src2, des, size).  Forty bits of
word address covers the paper's 8 GiB device with room to spare, and a
fixed width keeps the device-side decoder trivial — the property the
paper's vector-granularity trade-off (section IV-A) aims for.
"""

from __future__ import annotations

from repro.isa.vpc import VPC, VPCOpcode

#: Bytes per encoded address/size field.
_FIELD_BYTES = 5
#: Total bytes of one encoded VPC.
VPC_ENCODED_BYTES = 1 + 4 * _FIELD_BYTES

#: Wire byte of each opcode (the columnar codec indexes by these too).
OPCODE_TO_BYTE = {
    VPCOpcode.MUL: 0x01,
    VPCOpcode.SMUL: 0x02,
    VPCOpcode.ADD: 0x03,
    VPCOpcode.TRAN: 0x04,
}
BYTE_TO_OPCODE = {v: k for k, v in OPCODE_TO_BYTE.items()}

#: Sentinel stored in the src2 field of TRAN commands.
NO_OPERAND_SENTINEL = (1 << (8 * _FIELD_BYTES)) - 1

_OPCODE_TO_BYTE = OPCODE_TO_BYTE
_BYTE_TO_OPCODE = BYTE_TO_OPCODE
_NO_OPERAND = NO_OPERAND_SENTINEL
_FIELD_MAX = _NO_OPERAND - 1


def _encode_field(value: int) -> bytes:
    if not 0 <= value <= _FIELD_MAX:
        raise ValueError(
            f"field value {value} out of range [0, {_FIELD_MAX}]"
        )
    return value.to_bytes(_FIELD_BYTES, "little")


def _decode_field(raw: bytes) -> int:
    return int.from_bytes(raw, "little")


def encode_vpc(vpc: VPC) -> bytes:
    """Serialise a VPC into its fixed 21-byte wire format."""
    src2 = _NO_OPERAND if vpc.src2 is None else vpc.src2
    packet = bytes([_OPCODE_TO_BYTE[vpc.opcode]])
    packet += _encode_field(vpc.src1)
    packet += src2.to_bytes(_FIELD_BYTES, "little")
    packet += _encode_field(vpc.des)
    packet += _encode_field(vpc.size)
    if src2 != _NO_OPERAND:
        _encode_field(src2)  # range check
    return packet


def decode_vpc(packet: bytes) -> VPC:
    """Deserialise a 21-byte packet back into a VPC.

    Raises:
        ValueError: on wrong length or unknown opcode byte.
    """
    if len(packet) != VPC_ENCODED_BYTES:
        raise ValueError(
            f"expected {VPC_ENCODED_BYTES} bytes, got {len(packet)}"
        )
    opcode = _BYTE_TO_OPCODE.get(packet[0])
    if opcode is None:
        raise ValueError(f"unknown opcode byte 0x{packet[0]:02x}")
    fields = [
        _decode_field(packet[1 + i * _FIELD_BYTES : 1 + (i + 1) * _FIELD_BYTES])
        for i in range(4)
    ]
    src1, src2_raw, des, size = fields
    src2 = None if src2_raw == _NO_OPERAND else src2_raw
    return VPC(opcode, src1, src2, des, size)
