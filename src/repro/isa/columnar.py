"""Columnar VPC traces: NumPy structured arrays instead of objects.

The object-based :class:`~repro.isa.trace.VPCTrace` is convenient for
generation and inspection, but walking millions of :class:`VPC`
dataclasses dominates event-mode replay time.  This module keeps the
same trace *content* in a single NumPy structured array — one record per
command, one column per field — so that decoding, verification and
execution can run as bulk array passes:

* binary traces decode with one ``np.frombuffer`` over the fixed
  21-byte wire records (no per-record ``struct``/``int.from_bytes``);
* text traces parse straight into columns without building ``VPC``
  objects;
* conversion to/from :class:`~repro.isa.trace.VPCTrace` is lossless and
  property-tested, so the columnar form is a faithful interchange format
  rather than a lossy cache.

Malformed inputs raise the same :class:`~repro.isa.trace.TraceFormatError`
(with the same byte offsets / line numbers) as the scalar readers.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterator, List, Optional, Union

import numpy as np

from repro.isa.encoding import (
    BYTE_TO_OPCODE,
    NO_OPERAND_SENTINEL,
    OPCODE_TO_BYTE,
    VPC_ENCODED_BYTES,
    decode_vpc,
)
from repro.isa.trace import (
    _BINARY_MAGIC,
    TraceFormatError,
    TraceStats,
    VPCTrace,
    _parse_vpc,
)
from repro.isa.vpc import VPC, VPCOpcode

#: One trace record: the wire opcode byte plus the four integer fields.
#: ``src2`` holds :data:`NO_OPERAND_SENTINEL` for TRAN commands.
RECORD_DTYPE = np.dtype(
    [
        ("opcode", np.uint8),
        ("src1", np.int64),
        ("src2", np.int64),
        ("des", np.int64),
        ("size", np.int64),
    ]
)

#: Wire byte of the TRAN opcode (the only single-source command).
TRAN_BYTE = OPCODE_TO_BYTE[VPCOpcode.TRAN]
#: Wire byte of the MUL opcode (the only single-result-word command).
MUL_BYTE = OPCODE_TO_BYTE[VPCOpcode.MUL]
#: Wire byte of the SMUL opcode (scalar first operand).
SMUL_BYTE = OPCODE_TO_BYTE[VPCOpcode.SMUL]
#: Wire byte of the ADD opcode (element-wise addition).
ADD_BYTE = OPCODE_TO_BYTE[VPCOpcode.ADD]

_VALID_OPCODE_BYTES = np.array(sorted(BYTE_TO_OPCODE), dtype=np.uint8)
_TEXT_OPCODE_BYTES = {op.value: OPCODE_TO_BYTE[op] for op in VPCOpcode}
#: Columnar fields are int64; anything beyond this cannot round-trip.
_COLUMN_MAX = np.iinfo(np.int64).max
#: Little-endian byte weights of one 5-byte wire field.
_FIELD_WEIGHTS = (np.int64(1) << (8 * np.arange(5, dtype=np.int64)))


class ColumnarTrace:
    """An ordered VPC stream stored as one structured NumPy array.

    Semantically equivalent to :class:`~repro.isa.trace.VPCTrace`
    (``from_trace``/``to_trace`` round-trip losslessly); operationally a
    set of parallel columns that vectorized passes index directly.
    """

    def __init__(
        self,
        records: np.ndarray,
        op_starts: Optional[np.ndarray] = None,
    ) -> None:
        records = np.asarray(records)
        if records.dtype != RECORD_DTYPE:
            raise TypeError(
                f"records must have dtype {RECORD_DTYPE}, got "
                f"{records.dtype}"
            )
        if records.ndim != 1:
            raise ValueError(
                f"records must be 1-D, got {records.ndim}-D"
            )
        self.records = records
        self.op_starts = (
            None
            if op_starts is None
            else _validate_op_starts(op_starts, len(records))
        )

    # ------------------------------------------------------------------
    # Column views
    # ------------------------------------------------------------------
    @property
    def opcode(self) -> np.ndarray:
        """Wire opcode byte per command (uint8)."""
        return self.records["opcode"]

    @property
    def src1(self) -> np.ndarray:
        return self.records["src1"]

    @property
    def src2(self) -> np.ndarray:
        """Second operand; :data:`NO_OPERAND_SENTINEL` for TRAN."""
        return self.records["src2"]

    @property
    def des(self) -> np.ndarray:
        return self.records["des"]

    @property
    def size(self) -> np.ndarray:
        return self.records["size"]

    @property
    def is_compute(self) -> np.ndarray:
        """Boolean mask of PIM (compute) commands."""
        return self.records["opcode"] != TRAN_BYTE

    # ------------------------------------------------------------------
    # Interval index (address footprints, one row per access)
    # ------------------------------------------------------------------
    def read_intervals(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Every word range a command reads, as parallel arrays.

        Returns ``(index, start, end)`` with one row per read access and
        half-open ``[start, end)`` ranges: the ``src1`` range of every
        command (one word for SMUL, whose first operand is a scalar)
        followed by the ``src2`` range of every compute command.  Rows
        are grouped by operand, not sorted; callers that need address
        order sort themselves.
        """
        rec = self.records
        size = rec["size"]
        compute = self.is_compute
        n = len(rec)
        first_len = np.where(rec["opcode"] == SMUL_BYTE, 1, size)
        index1 = np.arange(n, dtype=np.int64)
        start1 = rec["src1"].astype(np.int64, copy=True)
        start2 = rec["src2"][compute].astype(np.int64, copy=True)
        return (
            np.concatenate([index1, index1[compute]]),
            np.concatenate([start1, start2]),
            np.concatenate([start1 + first_len, start2 + size[compute]]),
        )

    def write_intervals(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Every word range a command writes, as ``(index, start, end)``.

        One row per command: the ``des`` range, which is a single word
        for MUL (dot-product result) and ``size`` words otherwise.
        """
        rec = self.records
        length = np.where(rec["opcode"] == MUL_BYTE, 1, rec["size"])
        start = rec["des"].astype(np.int64, copy=True)
        return (
            np.arange(len(rec), dtype=np.int64),
            start,
            start + length,
        )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[VPC]:
        rec = self.records
        for code, src1, src2, des, size in zip(
            rec["opcode"].tolist(),
            rec["src1"].tolist(),
            rec["src2"].tolist(),
            rec["des"].tolist(),
            rec["size"].tolist(),
        ):
            yield VPC(
                BYTE_TO_OPCODE[code],
                src1,
                None if src2 == NO_OPERAND_SENTINEL else src2,
                des,
                size,
            )

    def __getitem__(self, index: int) -> VPC:
        rec = self.records[index]
        src2 = int(rec["src2"])
        return VPC(
            BYTE_TO_OPCODE[int(rec["opcode"])],
            int(rec["src1"]),
            None if src2 == NO_OPERAND_SENTINEL else src2,
            int(rec["des"]),
            int(rec["size"]),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarTrace):
            return NotImplemented
        return np.array_equal(self.records, other.records)

    @property
    def stats(self) -> TraceStats:
        """The Table IV statistics, computed by column reduction."""
        compute = self.is_compute
        size = self.records["size"]
        return TraceStats(
            pim_vpcs=int(compute.sum()),
            move_vpcs=int((~compute).sum()),
            elements_processed=int(size[compute].sum()),
            elements_moved=int(size[~compute].sum()),
        )

    # ------------------------------------------------------------------
    # Summary arrays (analytic-model inputs)
    # ------------------------------------------------------------------
    def opcode_counts(self) -> np.ndarray:
        """Command count per wire opcode byte (length-256 int64 vector)."""
        return np.bincount(self.records["opcode"], minlength=256).astype(
            np.int64
        )

    def words_by_opcode(self) -> np.ndarray:
        """Total ``size`` words per wire opcode byte (length-256 vector)."""
        return np.bincount(
            self.records["opcode"],
            weights=self.records["size"].astype(np.float64),
            minlength=256,
        ).astype(np.int64)

    @property
    def num_ops(self) -> Optional[int]:
        """Number of source operations, when boundaries were recorded."""
        if self.op_starts is None:
            return None
        return len(self.op_starts)

    def op_slices(self) -> "List[tuple]":
        """``(start, end)`` command ranges per source operation.

        Falls back to one whole-trace range when no operation boundaries
        were recorded (e.g. traces decoded from the wire format, which
        does not carry them).
        """
        n = len(self.records)
        if self.op_starts is None or len(self.op_starts) == 0:
            return [] if n == 0 else [(0, n)]
        starts = self.op_starts.tolist()
        return list(zip(starts, starts[1:] + [n]))

    # ------------------------------------------------------------------
    # Conversion to/from the object form
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace) -> "ColumnarTrace":
        """Columnarise any iterable of VPCs (lossless)."""
        rows = [
            (
                OPCODE_TO_BYTE[vpc.opcode],
                vpc.src1,
                NO_OPERAND_SENTINEL if vpc.src2 is None else vpc.src2,
                vpc.des,
                vpc.size,
            )
            for vpc in trace
        ]
        for row in rows:
            for value in row[1:]:
                if value > _COLUMN_MAX:
                    raise ValueError(
                        f"field value {value} exceeds the columnar "
                        f"int64 range"
                    )
        return cls(np.array(rows, dtype=RECORD_DTYPE))

    def to_trace(self) -> VPCTrace:
        """Rebuild the object-form trace (inverse of :meth:`from_trace`)."""
        return VPCTrace(self)

    # ------------------------------------------------------------------
    # Binary wire format (same format as write_trace_binary)
    # ------------------------------------------------------------------
    @classmethod
    def from_bytes(cls, data: bytes) -> "ColumnarTrace":
        """Decode a binary trace in one bulk pass.

        Accepts exactly the files :func:`~repro.isa.trace.write_trace_binary`
        produces and raises the same :class:`TraceFormatError` (message
        and byte offset included) on bad magic, truncated records, or
        undecodable records.
        """
        magic_len = len(_BINARY_MAGIC)
        if data[:magic_len] != _BINARY_MAGIC:
            raise TraceFormatError(
                f"not a binary VPC trace: expected magic "
                f"{_BINARY_MAGIC!r}, got {bytes(data[:magic_len])!r}",
                offset=0,
            )
        body = memoryview(data)[magic_len:]
        extra = len(body) % VPC_ENCODED_BYTES
        if extra:
            raise TraceFormatError(
                f"truncated record / trailing garbage: got {extra} "
                f"of {VPC_ENCODED_BYTES} bytes",
                offset=magic_len + len(body) - extra,
            )
        raw = np.frombuffer(body, dtype=np.uint8).reshape(
            -1, VPC_ENCODED_BYTES
        )
        fields = raw[:, 1:].reshape(-1, 4, 5).astype(np.int64)
        values = fields @ _FIELD_WEIGHTS
        records = np.empty(len(raw), dtype=RECORD_DTYPE)
        records["opcode"] = raw[:, 0]
        records["src1"] = values[:, 0]
        records["src2"] = values[:, 1]
        records["des"] = values[:, 2]
        records["size"] = values[:, 3]
        _validate_records(records, body, magic_len)
        return cls(records)

    def to_bytes(self) -> bytes:
        """Encode to the binary wire format (one bulk pass).

        Byte-identical to :func:`~repro.isa.trace.write_trace_binary`
        over :meth:`to_trace`'s output.
        """
        rec = self.records
        field_max = NO_OPERAND_SENTINEL - 1
        for name in ("src1", "des", "size"):
            column = rec[name]
            bad = (column < 0) | (column > field_max)
            if bad.any():
                value = int(column[int(np.argmax(bad))])
                raise ValueError(
                    f"field value {value} out of range [0, {field_max}]"
                )
        src2 = rec["src2"]
        bad = (src2 < 0) | (
            (src2 > field_max) & (src2 != NO_OPERAND_SENTINEL)
        )
        if bad.any():
            value = int(src2[int(np.argmax(bad))])
            raise ValueError(
                f"field value {value} out of range [0, {field_max}]"
            )
        out = np.empty((len(rec), VPC_ENCODED_BYTES), dtype=np.uint8)
        out[:, 0] = rec["opcode"]
        values = np.stack(
            [rec["src1"], src2, rec["des"], rec["size"]], axis=1
        )
        shifted = values[:, :, None] >> (8 * np.arange(5, dtype=np.int64))
        out[:, 1:] = (shifted & 0xFF).reshape(len(rec), 20)
        return _BINARY_MAGIC + out.tobytes()

    # ------------------------------------------------------------------
    # Text format (same format as write_trace)
    # ------------------------------------------------------------------
    @classmethod
    def from_text(
        cls, source: Union[str, Path, io.TextIOBase]
    ) -> "ColumnarTrace":
        """Parse the line-oriented text format straight into columns.

        Raises the same :class:`TraceFormatError` (with line numbers) as
        :func:`~repro.isa.trace.read_trace` on malformed records.
        """
        if isinstance(source, (str, Path)):
            with open(source, "r", encoding="utf-8") as handle:
                return cls.from_text(handle)
        rows = []
        for line_no, line in enumerate(source, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            try:
                code = _TEXT_OPCODE_BYTES[parts[0]]
                if code == TRAN_BYTE:
                    if len(parts) != 4:
                        raise ValueError("TRAN takes 3 fields")
                    src1, des, size = (
                        int(parts[1]), int(parts[2]), int(parts[3])
                    )
                    src2 = NO_OPERAND_SENTINEL
                else:
                    if len(parts) != 5:
                        raise ValueError("takes 4 fields")
                    src1, src2, des, size = (
                        int(parts[1]), int(parts[2]),
                        int(parts[3]), int(parts[4]),
                    )
                if size < 1 or src1 < 0 or src2 < 0 or des < 0:
                    raise ValueError("field out of range")
            except (ValueError, KeyError, IndexError):
                # Re-parse through the scalar reader so the diagnostic
                # (message and line number) is exactly the canonical one.
                _parse_vpc(stripped, line_no)
                raise TraceFormatError(
                    f"bad trace record {stripped!r}: not representable "
                    f"in columnar form",
                    line=line_no,
                )
            if (
                code != TRAN_BYTE and src2 == NO_OPERAND_SENTINEL
            ) or max(src1, src2, des, size) > _COLUMN_MAX:
                raise TraceFormatError(
                    f"bad trace record {stripped!r}: field exceeds the "
                    f"columnar field range",
                    line=line_no,
                )
            rows.append((code, src1, src2, des, size))
        return cls(np.array(rows, dtype=RECORD_DTYPE))

    # ------------------------------------------------------------------
    # File helpers
    # ------------------------------------------------------------------
    @classmethod
    def read(cls, path: Union[str, Path]) -> "ColumnarTrace":
        """Read a trace file, sniffing the binary magic prefix."""
        with open(path, "rb") as handle:
            head = handle.read(len(_BINARY_MAGIC))
            if head == _BINARY_MAGIC:
                return cls.from_bytes(head + handle.read())
        return cls.from_text(path)

    def write_binary(self, target: Union[str, Path, io.BufferedIOBase]) -> None:
        """Write the binary wire format."""
        if isinstance(target, (str, Path)):
            with open(target, "wb") as handle:
                handle.write(self.to_bytes())
            return
        target.write(self.to_bytes())


def _validate_op_starts(op_starts, total: int) -> np.ndarray:
    """Normalise operation-boundary starts: sorted, in-range, unique."""
    starts = np.asarray(op_starts, dtype=np.int64).ravel()
    if len(starts) == 0:
        return starts
    if starts[0] != 0:
        raise ValueError(
            f"op_starts must begin at command 0, got {int(starts[0])}"
        )
    if np.any(np.diff(starts) <= 0):
        raise ValueError("op_starts must be strictly increasing")
    if int(starts[-1]) >= total and total > 0:
        raise ValueError(
            f"op_starts beyond trace end: {int(starts[-1])} >= {total}"
        )
    if total == 0 and len(starts):
        raise ValueError("op_starts must be empty for an empty trace")
    return starts


class ColumnarTraceBuilder:
    """Batched, append-only construction of a :class:`ColumnarTrace`.

    Vectorized trace lowering computes whole address streams as NumPy
    expressions; this builder accepts them in bulk —
    :meth:`emit_block` takes one array per column,
    :meth:`emit_records` takes pre-assembled :data:`RECORD_DTYPE`
    records — and never materialises per-command :class:`VPC` objects.
    Storage grows in chunks (scalar :meth:`emit` fills a doubling
    buffer; block emissions append whole chunks), so building an
    n-command trace is O(n) with no quadratic reallocation.

    Every emission is validated with the same rules the scalar
    :class:`~repro.isa.vpc.VPC` constructor enforces (known opcode,
    positive size, non-negative addresses, src2 sentinel if and only if
    TRAN), so a built trace always encodes and round-trips.
    """

    #: Initial scalar-emission buffer length (doubles when full).
    _INITIAL_BUFFER = 1024

    def __init__(self, capacity: int = _INITIAL_BUFFER) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._chunks: List[np.ndarray] = []
        self._buffer = np.empty(capacity, dtype=RECORD_DTYPE)
        self._filled = 0
        self._total = 0
        self._sealed = False
        self._boundary = 0
        self._drained = 0
        self._op_marks: List[int] = []
        self._op_marked = False

    def __len__(self) -> int:
        return self._total

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._sealed:
            raise RuntimeError("builder already built; create a new one")

    def emit(
        self,
        opcode: int,
        src1: int,
        src2: Optional[int],
        des: int,
        size: int,
    ) -> None:
        """Append one command (``src2=None`` for TRAN)."""
        self._check_open()
        if self._filled == len(self._buffer):
            self._flush_buffer(grow=True)
        record = self._buffer[self._filled]
        record["opcode"] = opcode
        record["src1"] = src1
        record["src2"] = NO_OPERAND_SENTINEL if src2 is None else src2
        record["des"] = des
        record["size"] = size
        _validate_built(self._buffer[self._filled : self._filled + 1])
        self._filled += 1
        self._total += 1

    def emit_block(
        self,
        opcodes,
        src1s,
        src2s,
        dess,
        sizes,
    ) -> None:
        """Append a batch of commands given one array per column.

        Columns broadcast against each other, so scalars are fine for
        constant fields (e.g. ``sizes=k``).  Pass ``src2s=None`` for an
        all-TRAN block; otherwise TRAN rows must carry
        :data:`~repro.isa.encoding.NO_OPERAND_SENTINEL`.
        """
        opcodes = np.asarray(opcodes)
        src1s = np.asarray(src1s, dtype=np.int64)
        if src2s is None:
            src2s = np.int64(NO_OPERAND_SENTINEL)
        src2s = np.asarray(src2s, dtype=np.int64)
        dess = np.asarray(dess, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        opcodes, src1s, src2s, dess, sizes = np.broadcast_arrays(
            opcodes, src1s, src2s, dess, sizes
        )
        records = np.empty(opcodes.size, dtype=RECORD_DTYPE)
        records["opcode"] = opcodes.ravel()
        records["src1"] = src1s.ravel()
        records["src2"] = src2s.ravel()
        records["des"] = dess.ravel()
        records["size"] = sizes.ravel()
        self.emit_records(records, _validated=False)

    def emit_records(
        self, records: np.ndarray, _validated: bool = False
    ) -> None:
        """Append pre-assembled :data:`RECORD_DTYPE` records (raveled)."""
        self._check_open()
        records = np.ascontiguousarray(records).ravel()
        if records.dtype != RECORD_DTYPE:
            raise TypeError(
                f"records must have dtype {RECORD_DTYPE}, got "
                f"{records.dtype}"
            )
        if not _validated:
            _validate_built(records)
        if len(records) == 0:
            return
        self._flush_buffer(grow=False)
        self._chunks.append(records)
        self._total += len(records)

    # ------------------------------------------------------------------
    def _flush_buffer(self, grow: bool) -> None:
        if self._filled:
            self._chunks.append(self._buffer[: self._filled].copy())
            self._filled = 0
        if grow:
            self._buffer = np.empty(
                max(len(self._buffer) * 2, self._INITIAL_BUFFER),
                dtype=RECORD_DTYPE,
            )

    def build(self) -> ColumnarTrace:
        """Seal the builder and return the assembled trace."""
        self._check_open()
        if self._drained:
            raise RuntimeError(
                "builder already drained incrementally; the full trace "
                "is the concatenation of the drained chunks"
            )
        self._flush_buffer(grow=False)
        self._sealed = True
        if not self._chunks:
            records = np.empty(0, dtype=RECORD_DTYPE)
        elif len(self._chunks) == 1:
            records = self._chunks[0]
        else:
            records = np.concatenate(self._chunks)
        self._chunks = []
        op_starts = None
        if self._op_marked:
            op_starts = np.array(
                [0] + [m for m in self._op_marks if 0 < m < self._total],
                dtype=np.int64,
            )
            if self._total == 0:
                op_starts = op_starts[:0]
        return ColumnarTrace(records, op_starts=op_starts)

    def op_starts_so_far(self) -> np.ndarray:
        """Operation start offsets recorded by :meth:`mark_op_boundary`.

        Usable on the streaming path too (where :meth:`build` is never
        called): after the final drain this is the boundary list of the
        concatenated trace.
        """
        if self._total == 0:
            return np.empty(0, dtype=np.int64)
        return np.array(
            [0] + [m for m in self._op_marks if 0 < m < self._total],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------
    # Incremental chunk API (streamed compile/execute pipeline)
    # ------------------------------------------------------------------
    def mark_op_boundary(self) -> None:
        """Record that every emitted record belongs to a finished op.

        :meth:`drain_chunks` only ever cuts a chunk at the most recent
        boundary, so a drained chunk can never split a multi-record
        operation group mid-op — the invariant the per-chunk functional
        apply and scratch recycling rely on.  Trace lowering calls this
        after each operation's ``ScratchAllocator.recycle()``.
        """
        self._check_open()
        self._boundary = self._total
        self._op_marked = True
        if not self._op_marks or self._op_marks[-1] != self._total:
            self._op_marks.append(self._total)

    def pending_records(self) -> int:
        """Records emitted up to the last op boundary but not drained."""
        return self._boundary - self._drained

    def drain_chunks(
        self, min_records: int = 1, force: bool = False
    ) -> Iterator[ColumnarTrace]:
        """Yield finished, validated chunks of the trace built so far.

        Records are handed out strictly in emission order and only up to
        the last :meth:`mark_op_boundary`; the concatenation of every
        yielded chunk (in order) is bit-identical to what :meth:`build`
        would have returned.  A chunk is cut once at least
        ``min_records`` boundary-complete records are pending (always,
        when ``force`` is true and anything is pending), so
        ``min_records=1`` gives per-operation chunks and larger values
        amortise per-chunk overheads.

        After the first drain the builder is committed to streaming:
        :meth:`build` raises, since the drained records are no longer
        held.
        """
        self._check_open()
        if min_records < 1:
            raise ValueError(
                f"min_records must be positive, got {min_records}"
            )
        pending = self._boundary - self._drained
        if pending <= 0 or (pending < min_records and not force):
            return
        self._flush_buffer(grow=False)
        take: List[np.ndarray] = []
        taken = 0
        while taken < pending:
            arr = self._chunks.pop(0)
            need = pending - taken
            if len(arr) <= need:
                take.append(arr)
                taken += len(arr)
            else:
                take.append(arr[:need])
                self._chunks.insert(0, arr[need:])
                taken = pending
        records = take[0] if len(take) == 1 else np.concatenate(take)
        self._drained += pending
        yield ColumnarTrace(records)


def _validate_built(records: np.ndarray) -> None:
    """Reject records the scalar VPC constructor would reject."""
    opcode = records["opcode"]
    src2 = records["src2"]
    bad = ~np.isin(opcode, _VALID_OPCODE_BYTES)
    bad |= records["size"] < 1
    bad |= records["src1"] < 0
    bad |= records["des"] < 0
    bad |= src2 < 0
    is_tran = opcode == TRAN_BYTE
    has_operand = src2 != NO_OPERAND_SENTINEL
    bad |= is_tran & has_operand
    bad |= ~is_tran & ~has_operand
    if not bad.any():
        return
    index = int(np.argmax(bad))
    record = records[index]
    raise ValueError(
        f"invalid trace record at emission index {index}: "
        f"opcode=0x{int(record['opcode']):02x} "
        f"src1={int(record['src1'])} src2={int(record['src2'])} "
        f"des={int(record['des'])} size={int(record['size'])}"
    )


def _validate_records(
    records: np.ndarray, body: memoryview, magic_len: int
) -> None:
    """Reject records the scalar decoder would reject.

    The offending record is re-decoded through the scalar
    :func:`~repro.isa.encoding.decode_vpc` path so the raised
    :class:`TraceFormatError` carries exactly the canonical message.
    """
    opcode = records["opcode"]
    src2 = records["src2"]
    bad = ~np.isin(opcode, _VALID_OPCODE_BYTES)
    bad |= records["size"] < 1
    is_tran = opcode == TRAN_BYTE
    has_operand = src2 != NO_OPERAND_SENTINEL
    bad |= is_tran & has_operand
    bad |= ~is_tran & ~has_operand
    if not bad.any():
        return
    index = int(np.argmax(bad))
    offset = magic_len + index * VPC_ENCODED_BYTES
    packet = bytes(
        body[index * VPC_ENCODED_BYTES : (index + 1) * VPC_ENCODED_BYTES]
    )
    try:
        decode_vpc(packet)
    except ValueError as exc:
        raise TraceFormatError(
            f"undecodable record: {exc}", offset=offset
        ) from exc
    raise TraceFormatError(  # pragma: no cover - defensive guard
        "undecodable record", offset=offset
    )


def read_trace_columnar(path: Union[str, Path]) -> ColumnarTrace:
    """Read any trace file (binary or text) into columnar form."""
    return ColumnarTrace.read(path)


def binary_record_offset(index: int) -> int:
    """Byte offset of record ``index`` in the binary wire encoding.

    Lets diagnostics point at the offending record of a ``.bin`` trace
    without re-reading the file.
    """
    if index < 0:
        raise ValueError(f"record index must be >= 0, got {index}")
    return len(_BINARY_MAGIC) + index * VPC_ENCODED_BYTES
