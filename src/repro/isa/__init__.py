"""Vector Processing Command (VPC) instruction set.

Table II of the paper defines four host-visible commands at vector
granularity: MUL (dot product), SMUL (scalar-vector multiplication), ADD
(vector addition) and TRAN (data transfer).  This package provides the
command objects, a binary encoding, and trace containers with the
PIM-VPC / move-VPC statistics reported in Table IV.
"""

from repro.isa.vpc import VPCOpcode, VPC, BankCommand, BankOp
from repro.isa.encoding import (
    encode_vpc,
    decode_vpc,
    OPCODE_TO_BYTE,
    BYTE_TO_OPCODE,
    NO_OPERAND_SENTINEL,
    VPC_ENCODED_BYTES,
)
from repro.isa.columnar import (
    ColumnarTrace,
    RECORD_DTYPE,
    read_trace_columnar,
)
from repro.isa.trace import (
    VPCTrace,
    TraceStats,
    TraceFormatError,
    write_trace,
    read_trace,
    write_trace_binary,
    read_trace_binary,
)
from repro.isa.granularity import (
    CommandGranularity,
    GranularityProfile,
    HostLinkModel,
    compare_granularities,
    profile_workload,
)

__all__ = [
    "VPCOpcode",
    "VPC",
    "BankCommand",
    "BankOp",
    "encode_vpc",
    "decode_vpc",
    "OPCODE_TO_BYTE",
    "BYTE_TO_OPCODE",
    "NO_OPERAND_SENTINEL",
    "VPC_ENCODED_BYTES",
    "ColumnarTrace",
    "RECORD_DTYPE",
    "read_trace_columnar",
    "VPCTrace",
    "TraceStats",
    "TraceFormatError",
    "write_trace",
    "read_trace",
    "write_trace_binary",
    "read_trace_binary",
    "CommandGranularity",
    "GranularityProfile",
    "HostLinkModel",
    "compare_granularities",
    "profile_workload",
]
