"""Content-addressed on-disk cache for compiled VPC traces.

Trace *execution* is vectorized and trace *lowering* is batched, which
leaves recompilation as the remaining repeated cost: every figure,
sweep point and fault-campaign repetition lowers the identical workload
again.  This module stores compiled traces on disk under a
content-derived key so that any run which would compile the same trace
loads it instead:

* **Key** — SHA-256 over a canonical JSON of everything the trace bytes
  depend on: workload identity (name, operation fingerprint, scale,
  seed), device geometry, placement policy, and a lowering version
  stamp (:data:`repro.core.compile.LOWERING_VERSION`).  Change any
  input and the key changes, so stale entries are unreachable rather
  than invalidated in place.
* **Value** — one file per entry: a magic header, a JSON metadata block
  (payload checksum plus any auxiliary JSON the caller attaches, e.g.
  the serialized placement plan), and the raw columnar trace bytes.
  Writes are atomic (temp file + ``os.replace``); reads verify the
  checksum and treat any mismatch, truncation or undecodable payload as
  a miss — the corrupt file is deleted and the caller recompiles, so an
  entry is never half-loaded.
* **Front** — a small in-process LRU keeps recently used entries live
  (a campaign's repeated runs hit memory, not disk).

Hit/miss/byte counters go to a
:class:`~repro.obs.metrics.MetricsRegistry` and are also persisted to
``stats.json`` in the cache directory, which is what
``repro-streampim cache stats`` reports across processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.isa.columnar import ColumnarTrace
from repro.isa.trace import TraceFormatError
from repro.obs.metrics import MetricsRegistry

#: Bump when the entry file layout changes (not when lowering changes —
#: that is :data:`repro.core.compile.LOWERING_VERSION`'s job).
TRACE_CACHE_FORMAT = 1

#: Magic prefix of one cache entry file.
_ENTRY_MAGIC = b"SPTC\x01"

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_STREAMPIM_CACHE_DIR"

#: Shared registry the CLI and benchmarks read in-process counters from.
CACHE_METRICS = MetricsRegistry()

_STATS_FIELDS = (
    "hits",
    "memory_hits",
    "misses",
    "corrupt",
    "puts",
    "bytes_read",
    "bytes_written",
)


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_STREAMPIM_CACHE_DIR`` or
    ``~/.cache/repro-streampim``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-streampim"


def make_cache_key(**fields: object) -> str:
    """SHA-256 hex digest of a canonical JSON of ``fields``.

    Every field that influences the compiled trace bytes must be
    passed; two calls with equal fields produce equal keys regardless
    of dict ordering.
    """
    canonical = json.dumps(
        fields, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class InflightTracker:
    """Crash-safe record of compiles currently in flight.

    Long-lived serving needs to know which cache keys are being
    compiled *right now* — both for observability and so a worker
    crash mid-compile cannot poison future runs.  Each in-flight
    compile drops a marker file (``inflight/<key>.json`` with the
    owner's pid and start time, written atomically); the marker is
    removed when the compile finishes, successfully or not.

    Crash safety is structural: a marker whose owner pid is dead (or
    which is older than ``max_age_s``) is *stale* and is deleted on
    the next scan, so a killed worker leaves no permanent residue and
    never blocks anything — markers are advisory, correctness still
    comes from the cache's atomic entry writes.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path, None] = None,
        max_age_s: float = 3600.0,
    ) -> None:
        root = Path(cache_dir) if cache_dir else default_cache_dir()
        self.inflight_dir = root / "inflight"
        if max_age_s <= 0:
            raise ValueError(f"max_age_s must be positive, got {max_age_s}")
        self.max_age_s = max_age_s

    def _marker_path(self, key: str) -> Path:
        return self.inflight_dir / f"{key}.json"

    def mark(self, key: str) -> Path:
        """Record ``key`` as in flight by this process (atomic write)."""
        import time

        path = self._marker_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"key": key, "pid": os.getpid(), "started": time.time()},
            sort_keys=True,
        ).encode("utf-8")
        fd, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    def clear(self, key: str) -> None:
        """Remove ``key``'s marker (compile finished or gave up)."""
        try:
            self._marker_path(key).unlink()
        except OSError:
            pass

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except (PermissionError, OSError):
            return True
        return True

    def active(self) -> Dict[str, Dict[str, object]]:
        """Live in-flight markers, pruning stale ones as a side effect.

        Stale = owner pid no longer running, or marker older than
        ``max_age_s``, or the marker file itself is unreadable (a
        crash mid-write) — all are deleted, never raised.
        """
        import time

        now = time.time()
        live: Dict[str, Dict[str, object]] = {}
        if not self.inflight_dir.is_dir():
            return live
        for path in sorted(self.inflight_dir.glob("*.json")):
            stale = False
            info: Dict[str, object] = {}
            try:
                data = json.loads(path.read_text("utf-8"))
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                data = None
            if not isinstance(data, dict):
                stale = True
            else:
                pid = data.get("pid")
                started = data.get("started")
                if not isinstance(pid, int) or not self._pid_alive(pid):
                    stale = True
                elif (
                    isinstance(started, (int, float))
                    and now - started > self.max_age_s
                ):
                    stale = True
                else:
                    info = {"pid": pid, "started": started}
            if stale:
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            live[path.stem] = info
        return live

    def is_inflight(self, key: str) -> bool:
        return key in self.active()


@dataclass
class CacheEntry:
    """One loaded cache entry: the trace plus its attached metadata."""

    key: str
    trace: ColumnarTrace
    aux: Dict[str, object] = field(default_factory=dict)
    provenance: Dict[str, object] = field(default_factory=dict)


class TraceCache:
    """Content-addressed trace store with an in-process LRU front.

    Args:
        cache_dir: entry directory (created lazily); defaults to
            :func:`default_cache_dir`.
        registry: metrics sink; defaults to the module-wide
            :data:`CACHE_METRICS`.
        memory_entries: LRU capacity (0 disables the memory front).
    """

    def __init__(
        self,
        cache_dir: Union[str, Path, None] = None,
        registry: Optional[MetricsRegistry] = None,
        memory_entries: int = 8,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.registry = CACHE_METRICS if registry is None else registry
        if memory_entries < 0:
            raise ValueError(
                f"memory_entries must be >= 0, got {memory_entries}"
            )
        self.memory_entries = memory_entries
        self._memory: "OrderedDict[str, CacheEntry]" = OrderedDict()

    # ------------------------------------------------------------------
    def entry_path(self, key: str) -> Path:
        """On-disk path of ``key`` (sharded by the first key byte)."""
        return self.cache_dir / key[:2] / f"{key}.sptc"

    def get(self, key: str) -> Optional[CacheEntry]:
        """Load an entry, or None on miss/corruption (never partial)."""
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self._count("hits", memory=True)
            return entry
        path = self.entry_path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self._count("misses")
            return None
        entry = self._decode_entry(key, blob)
        if entry is None:
            # Checksum/format failure: drop the file so the recompiled
            # entry replaces it, and report a miss to the caller.
            try:
                path.unlink()
            except OSError:
                pass
            self._count("corrupt")
            self._count("misses")
            return None
        self._count("hits", bytes_read=len(blob))
        self._remember(entry)
        return entry

    def put(
        self,
        key: str,
        trace: ColumnarTrace,
        aux: Optional[Dict[str, object]] = None,
        provenance: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Store an entry atomically; returns the entry path."""
        payload = trace.to_bytes()
        meta = {
            "format": TRACE_CACHE_FORMAT,
            "key": key,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "aux": aux or {},
            "provenance": provenance or {},
        }
        meta_blob = json.dumps(meta, sort_keys=True).encode("utf-8")
        blob = (
            _ENTRY_MAGIC
            + len(meta_blob).to_bytes(8, "little")
            + meta_blob
            + payload
        )
        path = self.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._count("puts", bytes_written=len(blob))
        entry = CacheEntry(
            key=key,
            trace=trace,
            aux=dict(meta["aux"]),
            provenance=dict(meta["provenance"]),
        )
        self._remember(entry)
        return path

    def get_or_compile(
        self,
        key: str,
        compile_fn: Callable[[], Tuple[ColumnarTrace, Dict[str, object]]],
        provenance: Optional[Dict[str, object]] = None,
    ) -> Tuple[CacheEntry, bool]:
        """Load ``key`` or compile-and-store it.

        ``compile_fn`` returns ``(trace, aux)``.  Returns
        ``(entry, hit)``.
        """
        entry = self.get(key)
        if entry is not None:
            return entry, True
        trace, aux = compile_fn()
        self.put(key, trace, aux=aux, provenance=provenance)
        return (
            CacheEntry(
                key=key,
                trace=trace,
                aux=aux,
                provenance=dict(provenance or {}),
            ),
            False,
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Persistent counters plus the current on-disk footprint."""
        counters = self._read_stats()
        entries = 0
        total_bytes = 0
        if self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*/*.sptc"):
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        counters["entries"] = entries
        counters["entry_bytes"] = total_bytes
        counters["cache_dir"] = str(self.cache_dir)
        return counters

    def clear(self) -> int:
        """Delete every entry (and the persistent counters); returns the
        number of entries removed."""
        removed = 0
        if self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*/*.sptc"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
            try:
                (self.cache_dir / "stats.json").unlink()
            except OSError:
                pass
        self._memory.clear()
        return removed

    # ------------------------------------------------------------------
    def _remember(self, entry: CacheEntry) -> None:
        if self.memory_entries == 0:
            return
        self._memory[entry.key] = entry
        self._memory.move_to_end(entry.key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _decode_entry(self, key: str, blob: bytes) -> Optional[CacheEntry]:
        header = len(_ENTRY_MAGIC) + 8
        if len(blob) < header or not blob.startswith(_ENTRY_MAGIC):
            return None
        meta_len = int.from_bytes(blob[len(_ENTRY_MAGIC) : header], "little")
        if len(blob) < header + meta_len:
            return None
        try:
            meta = json.loads(blob[header : header + meta_len])
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(meta, dict):
            return None
        if meta.get("format") != TRACE_CACHE_FORMAT or meta.get("key") != key:
            return None
        payload = blob[header + meta_len :]
        if len(payload) != meta.get("payload_bytes"):
            return None
        if hashlib.sha256(payload).hexdigest() != meta.get("payload_sha256"):
            return None
        try:
            trace = ColumnarTrace.from_bytes(payload)
        except TraceFormatError:
            return None
        return CacheEntry(
            key=key,
            trace=trace,
            aux=dict(meta.get("aux") or {}),
            provenance=dict(meta.get("provenance") or {}),
        )

    # ------------------------------------------------------------------
    # Counters: in-process metrics plus a persistent stats.json
    # ------------------------------------------------------------------
    def _count(
        self,
        kind: str,
        memory: bool = False,
        bytes_read: int = 0,
        bytes_written: int = 0,
    ) -> None:
        increments = {kind: 1}
        if memory:
            increments["memory_hits"] = 1
        if bytes_read:
            increments["bytes_read"] = bytes_read
        if bytes_written:
            increments["bytes_written"] = bytes_written
        for name, amount in increments.items():
            self.registry.counter(f"trace_cache.{name}").inc(amount)
        self._bump_stats(increments)

    def _stats_path(self) -> Path:
        return self.cache_dir / "stats.json"

    def _read_stats(self) -> Dict[str, int]:
        """Load the persistent counters, tolerating a damaged file.

        A truncated, corrupt, or wrong-shaped ``stats.json`` (a crash
        mid-write on a filesystem without atomic replace, a partial
        copy, manual editing) is treated as *zero counters* and
        atomically regenerated — it must never raise into a caller
        that only wanted to compile a trace.
        """
        counters = {name: 0 for name in _STATS_FIELDS}
        path = self._stats_path()
        try:
            raw = path.read_bytes()
        except OSError:
            return counters
        damaged = False
        try:
            data = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            data = None
            damaged = True
        if isinstance(data, dict):
            for name in _STATS_FIELDS:
                value = data.get(name)
                if isinstance(value, int) and value >= 0:
                    counters[name] = value
                elif name in data:
                    damaged = True
        elif data is not None:
            damaged = True
        if damaged:
            # Regenerate a clean file so the damage is not re-read on
            # every future stats bump.
            self._write_stats(counters)
        return counters

    def _write_stats(self, counters: Dict[str, int]) -> None:
        """Atomically replace ``stats.json`` (write-temp + replace)."""
        temp_name = None
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(
                dir=self.cache_dir, prefix=".stats.", suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(counters, handle, sort_keys=True)
            os.replace(temp_name, self._stats_path())
            temp_name = None
        except OSError:
            pass
        finally:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass

    def _bump_stats(self, increments: Dict[str, int]) -> None:
        # Best-effort cross-process counters: read-modify-write with an
        # atomic replace.  Concurrent writers may drop increments, which
        # is acceptable for operational stats (correctness never depends
        # on them).
        counters = self._read_stats()
        for name, amount in increments.items():
            counters[name] = counters.get(name, 0) + amount
        self._write_stats(counters)
