"""VPC traces: ordered command streams plus Table IV statistics.

The paper's evaluation drives its cycle-accurate simulator with VPC
traces generated from instrumented PolyBench sources; Table IV reports
each trace's #PIM-VPC (compute commands) and #move-VPC (TRAN commands).
This module provides the trace container, its statistics, and a simple
line-oriented text serialisation so traces can be stored and replayed.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from repro.isa.encoding import VPC_ENCODED_BYTES, decode_vpc, encode_vpc
from repro.isa.vpc import VPC, VPCOpcode

#: Magic prefix of the binary trace format.
_BINARY_MAGIC = b"VPCT\x01"


class TraceFormatError(ValueError):
    """A trace file is malformed (bad magic, truncated record, garbage).

    Attributes:
        offset: byte offset of the malformed data (binary traces).
        line: 1-based line number of the malformed data (text traces).
    """

    def __init__(
        self,
        message: str,
        offset: Optional[int] = None,
        line: Optional[int] = None,
    ) -> None:
        where = ""
        if offset is not None:
            where = f" at byte offset {offset}"
        elif line is not None:
            where = f" at line {line}"
        super().__init__(message + where)
        self.offset = offset
        self.line = line


@dataclass(frozen=True)
class TraceStats:
    """Aggregate statistics of a VPC trace (the Table IV columns)."""

    pim_vpcs: int
    move_vpcs: int
    elements_processed: int
    elements_moved: int

    @property
    def total_vpcs(self) -> int:
        return self.pim_vpcs + self.move_vpcs


class VPCTrace:
    """An ordered stream of VPCs with incremental statistics."""

    def __init__(self, vpcs: Iterable[VPC] = ()) -> None:
        self._vpcs: List[VPC] = []
        self._pim = 0
        self._move = 0
        self._elements_processed = 0
        self._elements_moved = 0
        for vpc in vpcs:
            self.append(vpc)

    def append(self, vpc: VPC) -> None:
        if not isinstance(vpc, VPC):
            raise TypeError(f"expected VPC, got {type(vpc).__name__}")
        self._vpcs.append(vpc)
        if vpc.is_compute:
            self._pim += 1
            self._elements_processed += vpc.size
        else:
            self._move += 1
            self._elements_moved += vpc.size

    def extend(self, vpcs: Iterable[VPC]) -> None:
        for vpc in vpcs:
            self.append(vpc)

    @property
    def stats(self) -> TraceStats:
        return TraceStats(
            pim_vpcs=self._pim,
            move_vpcs=self._move,
            elements_processed=self._elements_processed,
            elements_moved=self._elements_moved,
        )

    def __len__(self) -> int:
        return len(self._vpcs)

    def __iter__(self) -> Iterator[VPC]:
        return iter(self._vpcs)

    def __getitem__(self, index: int) -> VPC:
        return self._vpcs[index]

    def compute_vpcs(self) -> Iterator[VPC]:
        """Iterate only the PIM (compute) commands."""
        return (v for v in self._vpcs if v.is_compute)

    def move_vpcs(self) -> Iterator[VPC]:
        """Iterate only the TRAN (data-movement) commands."""
        return (v for v in self._vpcs if not v.is_compute)


def _format_vpc(vpc: VPC) -> str:
    if vpc.opcode is VPCOpcode.TRAN:
        return f"TRAN {vpc.src1} {vpc.des} {vpc.size}"
    return f"{vpc.opcode.value} {vpc.src1} {vpc.src2} {vpc.des} {vpc.size}"


def _parse_vpc(line: str, line_no: int) -> VPC:
    parts = line.split()
    try:
        opcode = VPCOpcode(parts[0])
        if opcode is VPCOpcode.TRAN:
            if len(parts) != 4:
                raise ValueError("TRAN takes 3 fields")
            return VPC.tran(int(parts[1]), int(parts[2]), int(parts[3]))
        if len(parts) != 5:
            raise ValueError(f"{opcode.value} takes 4 fields")
        return VPC(
            opcode, int(parts[1]), int(parts[2]), int(parts[3]), int(parts[4])
        )
    except (ValueError, IndexError, KeyError) as exc:
        raise TraceFormatError(
            f"bad trace record {line!r}: {exc}", line=line_no
        ) from exc


def write_trace(trace: VPCTrace, target: Union[str, Path, io.TextIOBase]) -> None:
    """Write a trace in the line-oriented text format.

    Lines starting with ``#`` are comments; each other line is one VPC.
    """
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            write_trace(trace, handle)
        return
    stats = trace.stats
    target.write(f"# vpc trace: pim={stats.pim_vpcs} move={stats.move_vpcs}\n")
    for vpc in trace:
        target.write(_format_vpc(vpc) + "\n")


def read_trace(source: Union[str, Path, io.TextIOBase]) -> VPCTrace:
    """Read a trace written by :func:`write_trace`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return read_trace(handle)
    trace = VPCTrace()
    for line_no, line in enumerate(source, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        trace.append(_parse_vpc(stripped, line_no))
    return trace


def write_trace_binary(
    trace: VPCTrace, target: Union[str, Path, io.BufferedIOBase]
) -> None:
    """Write a trace in the fixed-width binary wire format.

    The file is the magic prefix followed by one 21-byte encoded VPC per
    command — the exact packets the host link carries, so a binary trace
    is also a link-level capture.
    """
    if isinstance(target, (str, Path)):
        with open(target, "wb") as handle:
            write_trace_binary(trace, handle)
        return
    target.write(_BINARY_MAGIC)
    for vpc in trace:
        target.write(encode_vpc(vpc))


def read_trace_binary(
    source: Union[str, Path, io.BufferedIOBase]
) -> VPCTrace:
    """Read a trace written by :func:`write_trace_binary`."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            return read_trace_binary(handle)
    magic = source.read(len(_BINARY_MAGIC))
    if magic != _BINARY_MAGIC:
        raise TraceFormatError(
            f"not a binary VPC trace: expected magic {_BINARY_MAGIC!r}, "
            f"got {magic!r}",
            offset=0,
        )
    trace = VPCTrace()
    offset = len(_BINARY_MAGIC)
    while True:
        packet = source.read(VPC_ENCODED_BYTES)
        if not packet:
            break
        if len(packet) != VPC_ENCODED_BYTES:
            raise TraceFormatError(
                f"truncated record / trailing garbage: got {len(packet)} "
                f"of {VPC_ENCODED_BYTES} bytes",
                offset=offset,
            )
        try:
            trace.append(decode_vpc(packet))
        except ValueError as exc:
            raise TraceFormatError(
                f"undecodable record: {exc}", offset=offset
            ) from exc
        offset += VPC_ENCODED_BYTES
    return trace
