"""SPV010: schedule-aware race detection over columnar traces.

The engine serialises commands through per-subarray busy-until times
(plus one global RM-bus time): a command waits for every subarray it
*acquires* — its home, an operand-copy source, a copy destination — and
then extends their busy times.  That relation is exposed by
:func:`repro.core.scheduler.trace_dependencies`, and it is a *dependency
model*, not one observed interleaving: two commands whose acquired
resource sets are disjoint carry no ordering edge, and a schedule is
free to overlap them.

A word access is therefore *protected* only when it lies inside a
subarray its command acquires.  Ranges that straddle past the acquired
subarray (the same shape SPV002 warns about) touch words through
subarrays the busy-until protocol never locks; if another command's
access overlaps those words, at least one of the two writes, and no
direct edge orders the pair, the program races — the value observed
depends on how the schedule happens to interleave them.

The detector is conservative about ordering: only *direct* edges
(shared acquired subarray, or both holding the global bus) count.
Ordering inherited transitively through a third command is not
credited, so a finding means "the dependency relation itself does not
order these two commands", matching how the scheduler reasons.

Candidate detection is vectorized (accesses whose range spans an
unacquired subarray); traces whose operands respect the one-subarray
placement rule produce zero candidates, so the Python loop below runs
only over actual findings.
"""

from __future__ import annotations

import numpy as np

from repro.verify.diagnostics import make_diagnostic


def check_races(cols, address_map, index, emit) -> None:
    """Emit one SPV010 diagnostic per unordered conflicting pair.

    Args:
        cols: the :class:`~repro.isa.columnar.ColumnarTrace`.
        address_map: device :class:`~repro.rm.address.AddressMap`
            (supplies the subarray width).
        index: the :class:`~repro.verify.dataflow.DataflowIndex` of
            ``cols`` (its access-event table and segment pairs locate
            overlap partners without rescanning the trace).
        emit: diagnostic sink (handles the recording cap).
    """
    # Lazy import: repro.core imports repro.verify for the verification
    # gate, so the dependency model must load on use, not on import.
    from repro.core.scheduler import trace_dependencies

    n = index.n_commands
    if n == 0:
        return
    words_per_subarray = address_map.words_per_subarray
    deps = trace_dependencies(cols, words_per_subarray)

    ev_idx = index.ev_idx
    first_sub = index.ev_start // words_per_subarray
    last_sub = (index.ev_end - 1) // words_per_subarray
    real_events = np.flatnonzero((ev_idx >= 0) & (ev_idx < n))
    positions = ev_idx[real_events]
    lo_sub = first_sub[real_events]
    protected = (lo_sub == last_sub[real_events]) & (
        (lo_sub == deps.home[positions])
        | (lo_sub == deps.remote[positions])
        | (lo_sub == deps.dest[positions])
    )
    candidates = real_events[~protected]
    if not len(candidates):
        return

    reported = set()
    for event in candidates.tolist():
        i = int(ev_idx[event])
        acquired_i = deps.acquired(i)
        start = int(index.ev_start[event])
        end = int(index.ev_end[event])
        writes = bool(index.ev_write[event])
        for subarray in range(int(first_sub[event]), int(last_sub[event]) + 1):
            if subarray in acquired_i:
                continue
            chunk_lo = max(start, subarray * words_per_subarray)
            chunk_hi = min(end, (subarray + 1) * words_per_subarray)
            if chunk_hi <= chunk_lo:
                continue
            seg_lo, seg_hi = index._segment_range(chunk_lo, chunk_hi)
            left = int(
                np.searchsorted(index.pair_seg, seg_lo, side="left")
            )
            right = int(
                np.searchsorted(index.pair_seg, seg_hi, side="left")
            )
            for pair in range(left, right):
                other = int(index.pair_ev[pair])
                j = int(index.p_idx[pair])
                if j < 0 or j >= n or j == i:
                    continue
                if not writes and not bool(index.ev_write[other]):
                    continue
                if (
                    int(index.ev_start[other]) >= chunk_hi
                    or int(index.ev_end[other]) <= chunk_lo
                ):
                    continue
                if deps.ordered(i, j):
                    continue
                key = (min(i, j), max(i, j))
                if key in reported:
                    continue
                reported.add(key)
                first, second = key
                emit(
                    make_diagnostic(
                        "SPV010",
                        f"vpc #{first}",
                        f"{cols[i].opcode.value} (vpc #{i}) and "
                        f"{cols[j].opcode.value} (vpc #{j}) both touch "
                        f"words [{chunk_lo}, {chunk_hi}) with no "
                        f"ordering edge: acquired subarrays "
                        f"{sorted(acquired_i)} vs "
                        f"{sorted(deps.acquired(j))} are disjoint",
                        index=first,
                    )
                )
