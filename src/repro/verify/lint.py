"""Repository-invariant lint for the simulator codebase.

AST-based custom rules the generic linters cannot express, each guarding
an invariant the simulator's correctness leans on:

* **SPL101** — no float ``==`` / ``!=`` in timing/energy accounting
  paths.  Accumulated nanoseconds and picojoules are floats; exact
  equality there silently becomes order-dependent.
* **SPL102** — no direct mutation of nanowire/subarray state outside
  ``repro.core`` / ``repro.rm``.  Higher layers must use the device
  model's methods so operation counters and shift offsets stay honest.
* **SPL103** — every ``@dataclass(frozen=True)`` class named ``*Config``
  must validate itself in ``__post_init__``; configs are the user-facing
  input surface of the simulator.
* **SPL104** — no bare ``assert`` in ``src/repro``: asserts vanish under
  ``python -O``, so they must never guard input validation.

Run via ``repro-streampim lint`` (or ``make lint``); the pass is also a
CI gate.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.verify.diagnostics import (
    Diagnostic,
    VerifyReport,
    make_diagnostic,
)

#: Module paths (relative to the package root, posix form) that belong to
#: the timing/energy accounting surface guarded by SPL101.
TIMING_ENERGY_PATHS = (
    "rm/timing.py",
    "dram/timing.py",
    "sim/",
    "core/",
    "analysis/",
    "baselines/",
)

#: Identifier suffixes that mark a float timing/energy quantity.
_FLOAT_QUANTITY_SUFFIXES = (
    "_ns",
    "_pj",
    "_nj",
    "_mj",
    "_mhz",
    "_ghz",
    "_nm",
)

#: Variable names that look like handles to RM device-state objects.
_DEVICE_STATE_NAME = re.compile(
    r"(nanowire|racetrack|subarray|wire|track)", re.IGNORECASE
)

#: Package subtrees allowed to mutate RM device state directly.
_DEVICE_STATE_OWNERS = ("rm/", "core/")


def _identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_float_quantity(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    name = _identifier(node)
    if name is None:
        return False
    return name.endswith(_FLOAT_QUANTITY_SUFFIXES)


class _Linter(ast.NodeVisitor):
    """Collects diagnostics for one module."""

    def __init__(self, rel_path: str, display_path: str) -> None:
        self.rel_path = rel_path
        self.display_path = display_path
        self.diagnostics: List[Diagnostic] = []
        self._in_timing_path = self.rel_path.startswith(
            TIMING_ENERGY_PATHS
        ) or self.rel_path in TIMING_ENERGY_PATHS

    def _emit(self, rule_id: str, line: int, message: str) -> None:
        self.diagnostics.append(
            make_diagnostic(
                rule_id, f"{self.display_path}:{line}", message
            )
        )

    # -- SPL101 --------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        if self._in_timing_path and any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            sides = [node.left, *node.comparators]
            offender = next(
                (s for s in sides if _is_float_quantity(s)), None
            )
            if offender is not None:
                what = (
                    repr(offender.value)
                    if isinstance(offender, ast.Constant)
                    else _identifier(offender)
                )
                self._emit(
                    "SPL101",
                    node.lineno,
                    f"float equality against {what} in a timing/energy "
                    "accounting module",
                )
        self.generic_visit(node)

    # -- SPL102 --------------------------------------------------------
    def _check_state_mutation(self, target: ast.AST, line: int) -> None:
        if self.rel_path.startswith(_DEVICE_STATE_OWNERS):
            return
        if not isinstance(target, ast.Attribute):
            return
        base = target.value
        if not isinstance(base, ast.Name) or base.id in ("self", "cls"):
            return
        if _DEVICE_STATE_NAME.search(base.id):
            self._emit(
                "SPL102",
                line,
                f"direct mutation of {base.id}.{target.attr} outside "
                "repro.core/repro.rm",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_state_mutation(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_state_mutation(node.target, node.lineno)
        self.generic_visit(node)

    # -- SPL103 --------------------------------------------------------
    @staticmethod
    def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            func = decorator.func
            name = getattr(func, "id", getattr(func, "attr", None))
            if name != "dataclass":
                continue
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "frozen"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
        return False

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name.endswith("Config") and self._is_frozen_dataclass(
            node
        ):
            has_post_init = any(
                isinstance(item, ast.FunctionDef)
                and item.name == "__post_init__"
                for item in node.body
            )
            if not has_post_init:
                self._emit(
                    "SPL103",
                    node.lineno,
                    f"frozen dataclass {node.name!r} has no "
                    "__post_init__ validation",
                )
        self.generic_visit(node)

    # -- SPL104 --------------------------------------------------------
    def visit_Assert(self, node: ast.Assert) -> None:
        self._emit(
            "SPL104",
            node.lineno,
            "bare assert statement (stripped under python -O)",
        )
        self.generic_visit(node)


def lint_source(
    source: str, rel_path: str, display_path: Optional[str] = None
) -> List[Diagnostic]:
    """Lint one module's source text.

    Args:
        source: the module text.
        rel_path: path relative to the package root (posix form) — rule
            scoping keys off it.
        display_path: path to show in diagnostics (defaults to
            ``rel_path``).
    """
    linter = _Linter(rel_path, display_path or rel_path)
    linter.visit(ast.parse(source))
    return linter.diagnostics


def package_root() -> Path:
    """Directory of the installed ``repro`` package (the lint target)."""
    return Path(__file__).resolve().parent.parent


def iter_python_files(root: Path) -> Iterable[Path]:
    yield from sorted(root.rglob("*.py"))


def lint_paths(
    paths: Optional[Sequence[Union[str, Path]]] = None,
) -> VerifyReport:
    """Lint python files/directories (default: the repro package).

    Returns:
        A :class:`VerifyReport`; lint findings are all errors, so
        ``report.ok()`` is the gate.
    """
    if not paths:
        targets: List[Path] = [package_root()]
    else:
        targets = [Path(p) for p in paths]
    root = package_root()
    report = VerifyReport(subject="lint")
    for target in targets:
        files = (
            iter_python_files(target) if target.is_dir() else [target]
        )
        for path in files:
            resolved = path.resolve()
            try:
                rel = resolved.relative_to(root).as_posix()
            except ValueError:
                rel = resolved.name
            try:
                display = str(path)
                report.extend(
                    lint_source(
                        resolved.read_text(encoding="utf-8"),
                        rel,
                        display,
                    )
                )
            except SyntaxError as exc:
                raise SyntaxError(
                    f"cannot lint {path}: {exc}"
                ) from exc
    return report
