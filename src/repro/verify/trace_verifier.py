"""Static verification of VPC traces and placement plans.

The cycle simulator silently assumes invariants that nothing used to
check: VPC operand ranges stay inside the device and inside one subarray
(section IV-C places every vector operand in a single subarray), source
and destination ranges of one VPC do not overlap (undefined per Table
II), dependent compute VPCs are not issued closer together than the RM
processor's pipeline window, move-VPCs never overwrite placed operand
rows, and a placement plan never books the same subarray words twice.

:class:`TraceVerifier` checks all of that in one O(#VPC) pass over a
:class:`~repro.isa.trace.VPCTrace` (plus an optional placement plan) and
reports typed :class:`~repro.verify.diagnostics.Diagnostic` objects —
milliseconds instead of a simulation run, so bad workload generators and
bad placements are caught before (or instead of) ``cycle_sim``.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.rmbus import RMBusConfig
from repro.isa.vpc import VPC, VPCOpcode
from repro.rm.address import AddressMap, DeviceGeometry
from repro.verify.diagnostics import (
    TRACE_RULES,
    Diagnostic,
    VerifyReport,
    make_diagnostic,
    validate_rule_ids,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports us)
    from repro.core.placement import PlacementPlan

#: Default hazard window: the RM processor pipeline is four stages deep
#: (Fig. 11), so up to four in-flight VPCs can overlap execution.
DEFAULT_HAZARD_WINDOW = 4

#: Interval: half-open [start, end) word-address range plus an access tag.
_Interval = Tuple[int, int]


class TraceVerificationError(RuntimeError):
    """Raised when a trace fails pre-execution verification."""

    def __init__(self, report: VerifyReport) -> None:
        self.report = report
        summary = "; ".join(d.render().splitlines()[0] for d in report.errors[:3])
        extra = len(report.errors) - 3
        if extra > 0:
            summary += f"; and {extra} more"
        super().__init__(f"trace verification failed: {summary}")


def _overlap(a: _Interval, b: _Interval) -> bool:
    return a[0] < b[1] and b[0] < a[1]


def _vpc_reads(vpc: VPC) -> List[_Interval]:
    if vpc.opcode is VPCOpcode.TRAN:
        return [(vpc.src1, vpc.src1 + vpc.size)]
    if vpc.opcode is VPCOpcode.SMUL:
        # src1 is the scalar: one word.
        return [
            (vpc.src1, vpc.src1 + 1),
            (vpc.src2, vpc.src2 + vpc.size),
        ]
    return [
        (vpc.src1, vpc.src1 + vpc.size),
        (vpc.src2, vpc.src2 + vpc.size),
    ]


def _vpc_writes(vpc: VPC) -> List[_Interval]:
    if vpc.opcode is VPCOpcode.MUL:
        # A dot product reduces to a single result word.
        return [(vpc.des, vpc.des + 1)]
    return [(vpc.des, vpc.des + vpc.size)]


class TraceVerifier:
    """Walks a trace (and optionally a placement plan) and reports
    every invariant violation as a typed diagnostic.

    Args:
        geometry: device geometry the trace targets (defaults to the
            paper's Table III device).
        plan: optional placement plan; enables the placement rules
            (SPV005 operand overwrite, SPV006 double booking).
        hazard_window: pipeline depth in VPCs; two dependent compute
            VPCs fewer than this many trace positions apart overlap in
            the processor pipeline and hazard (default: the four-stage
            pipeline depth, so distance >= 4 is hazard-free).
        rules: restrict checking to these rule IDs (None = all).
        max_diagnostics: stop recording past this many findings (the
            count of suppressed ones is still reported).
        bus: RM-bus configuration supplying the bounded per-segment
            length for SPV007 (defaults to the paper's segmented bus).
    """

    def __init__(
        self,
        geometry: Optional[DeviceGeometry] = None,
        plan: Optional["PlacementPlan"] = None,
        hazard_window: int = DEFAULT_HAZARD_WINDOW,
        rules: Optional[Sequence[str]] = None,
        max_diagnostics: int = 500,
        bus: Optional["RMBusConfig"] = None,
    ) -> None:
        if hazard_window < 1:
            raise ValueError(
                f"hazard_window must be >= 1, got {hazard_window}"
            )
        if max_diagnostics < 1:
            raise ValueError(
                f"max_diagnostics must be >= 1, got {max_diagnostics}"
            )
        self.geometry = geometry or DeviceGeometry()
        self.address_map = AddressMap(self.geometry)
        self.plan = plan
        self.hazard_window = hazard_window
        # Unknown IDs would silently disable every check (a typo like
        # "SPV08" matches nothing), so reject them up front.
        self.rules = validate_rule_ids(rules, TRACE_RULES)
        self.max_diagnostics = max_diagnostics
        # Geometry-derived bounds are fixed for the verifier's lifetime;
        # cache them so repeated verify() calls don't re-derive them.
        self._total_words = self.address_map.total_words
        self._words_per_subarray = self.address_map.words_per_subarray
        self.bus = bus or RMBusConfig()
        self._segment_words = self.bus.words_per_segment
        self._operand_spans: List[Tuple[int, int, str]] = []
        self._operand_starts: List[int] = []
        if plan is not None:
            self._operand_spans = sorted(self._placed_spans(plan, False))
            self._operand_starts = [s[0] for s in self._operand_spans]

    # ------------------------------------------------------------------
    def _make_emit(self, report: VerifyReport, suppressed: List[int]):
        """Bounded diagnostic sink shared by one verification pass.

        ``suppressed`` is a single-element mutable counter so streamed
        verification can keep one sink (and one ``max_diagnostics``
        budget) across many per-chunk scans.
        """

        def emit(diagnostic: Diagnostic) -> None:
            if len(report.diagnostics) < self.max_diagnostics:
                report.diagnostics.append(diagnostic)
            else:
                suppressed[0] += 1

        return emit

    def verify(self, trace, subject: str = "trace") -> VerifyReport:
        """Run every enabled rule over ``trace``; never raises."""
        report = VerifyReport(subject=subject)
        suppressed = [0]
        emit = self._make_emit(report, suppressed)
        if self.plan is not None:
            for diagnostic in self._check_plan(self.plan):
                emit(diagnostic)
        self._scan_vpcs(trace, emit, 0, [])
        report.suppressed = suppressed[0]
        return report

    def _scan_vpcs(
        self,
        trace,
        emit,
        offset: int,
        recent: List[Tuple[int, List[_Interval], List[_Interval]]],
    ) -> List[Tuple[int, List[_Interval], List[_Interval]]]:
        """Per-VPC rule scan over one (chunk of a) trace.

        ``offset`` is the global trace index of ``trace``'s first
        command and ``recent`` the SPV004 hazard ring carried in from
        the previous chunk — feeding a trace as consecutive chunks
        through this scan emits exactly the diagnostics one whole-trace
        scan emits.  Returns the ring to carry into the next chunk.
        """
        total_words = self._total_words
        words_per_subarray = self._words_per_subarray
        for index, vpc in enumerate(trace, start=offset):
            reads = _vpc_reads(vpc)
            writes = _vpc_writes(vpc)
            location = f"vpc #{index}"
            in_bounds = True
            for start, end in reads + writes:
                if end > total_words:
                    in_bounds = False
                    if self._enabled("SPV001"):
                        emit(
                            make_diagnostic(
                                "SPV001",
                                location,
                                f"{vpc.opcode.value} range [{start}, {end}) "
                                f"exceeds the device's {total_words} words",
                                index=index,
                            )
                        )
                elif (
                    start // words_per_subarray
                    != (end - 1) // words_per_subarray
                    and self._enabled("SPV002")
                ):
                    emit(
                        make_diagnostic(
                            "SPV002",
                            location,
                            f"{vpc.opcode.value} range [{start}, {end}) "
                            f"crosses a subarray boundary (capacity "
                            f"{words_per_subarray} words)",
                            index=index,
                        )
                    )
            if (
                self._enabled("SPV007")
                and vpc.size > self._segment_words
            ):
                emit(
                    make_diagnostic(
                        "SPV007",
                        location,
                        f"{vpc.opcode.value} moves {vpc.size} words in "
                        f"one commanded shift train, exceeding the "
                        f"bounded segment length of "
                        f"{self._segment_words} words",
                        index=index,
                    )
                )
            if self._enabled("SPV003"):
                for diagnostic in self._check_overlap(
                    vpc, reads, writes, index
                ):
                    emit(diagnostic)
            if (
                self._enabled("SPV005")
                and vpc.opcode is VPCOpcode.TRAN
                and self._operand_spans
            ):
                for diagnostic in self._check_operand_overwrite(
                    writes[0], index
                ):
                    emit(diagnostic)
            if self._enabled("SPV004") and in_bounds:
                if vpc.is_compute:
                    for diagnostic in self._check_hazards(
                        index, reads, writes, recent
                    ):
                        emit(diagnostic)
                    recent.append((index, reads, writes))
                # Drop entries outside the window for the *next* VPC.
                recent = [
                    entry
                    for entry in recent
                    if index + 1 - entry[0] < self.hazard_window
                ]
        return recent

    # ------------------------------------------------------------------
    def verify_columnar(self, cols, subject: str = "trace") -> VerifyReport:
        """Verify a :class:`~repro.isa.columnar.ColumnarTrace`.

        When only SPV001 (operand bounds) and/or SPV007 (bounded segment
        length) are enabled — the configurations the event-mode
        pre-replay gate uses — the checks run as a few bulk array
        comparisons; diagnostics are materialised only for offending
        commands, in exactly the order (and with exactly the messages)
        the scalar :meth:`verify` walk produces.  Any broader rule set
        falls back to the scalar walk, which accepts a columnar trace
        directly (it iterates VPCs).
        """
        if self.rules is None or not self.rules <= {"SPV001", "SPV007"}:
            return self.verify(cols, subject=subject)
        report = VerifyReport(subject=subject)
        suppressed = [0]
        emit = self._make_emit(report, suppressed)
        self._scan_columnar_fast(cols, emit, 0)
        report.suppressed = suppressed[0]
        return report

    def _scan_columnar_fast(self, cols, emit, offset: int) -> None:
        """Vectorized SPV001/SPV007 scan over one (chunk of a) trace.

        ``offset`` is the global trace index of ``cols[0]``; emitted
        diagnostics carry whole-trace indices, so per-chunk scans merge
        into exactly the whole-trace result.
        """
        import numpy as np

        if len(cols) == 0:
            return
        from repro.isa.columnar import MUL_BYTE, SMUL_BYTE

        total_words = self._total_words
        opcode = cols.opcode
        size = cols.size
        compute = cols.is_compute
        no_rows = np.zeros(len(cols), dtype=bool)
        if "SPV001" in self.rules:
            # Range ends in the scalar walk's order: reads then writes.
            read1_end = cols.src1 + np.where(opcode == SMUL_BYTE, 1, size)
            read2_end = cols.src2 + size  # meaningful on compute rows
            write_end = cols.des + np.where(opcode == MUL_BYTE, 1, size)
            bad_bounds = (
                (read1_end > total_words)
                | (compute & (read2_end > total_words))
                | (write_end > total_words)
            )
        else:
            bad_bounds = no_rows
        if "SPV007" in self.rules:
            bad_segment = size > self._segment_words
        else:
            bad_segment = no_rows
        bad = bad_bounds | bad_segment
        if not bad.any():
            return

        for local in np.flatnonzero(bad).tolist():
            vpc = cols[local]
            index = offset + local
            if bad_bounds[local]:
                for start, end in _vpc_reads(vpc) + _vpc_writes(vpc):
                    if end <= total_words:
                        continue
                    emit(
                        make_diagnostic(
                            "SPV001",
                            f"vpc #{index}",
                            f"{vpc.opcode.value} range [{start}, {end}) "
                            f"exceeds the device's {total_words} words",
                            index=index,
                        )
                    )
            if bad_segment[local]:
                emit(
                    make_diagnostic(
                        "SPV007",
                        f"vpc #{index}",
                        f"{vpc.opcode.value} moves {vpc.size} words in "
                        f"one commanded shift train, exceeding the "
                        f"bounded segment length of "
                        f"{self._segment_words} words",
                        index=index,
                    )
                )

    # ------------------------------------------------------------------
    def _enabled(self, rule_id: str) -> bool:
        return self.rules is None or rule_id in self.rules

    def _check_overlap(
        self,
        vpc: VPC,
        reads: List[_Interval],
        writes: List[_Interval],
        index: int,
    ):
        for read in reads:
            for write in writes:
                if read == write:
                    # Exactly aligned in-place access is well defined:
                    # an identity TRAN is a no-op copy (the operand
                    # delivery convention for pre-seeded scalars) and an
                    # element-aligned in-place ADD/SMUL reads each word
                    # before rewriting it.  Only partial overlap is
                    # undefined per Table II.
                    continue
                if _overlap(read, write):
                    yield make_diagnostic(
                        "SPV003",
                        f"vpc #{index}",
                        f"{vpc.opcode.value} source [{read[0]}, {read[1]}) "
                        f"overlaps destination [{write[0]}, {write[1]})",
                        index=index,
                    )

    def _check_hazards(
        self,
        index: int,
        reads: List[_Interval],
        writes: List[_Interval],
        recent: List[Tuple[int, List[_Interval], List[_Interval]]],
    ):
        for prev_index, prev_reads, prev_writes in recent:
            # With a `hazard_window`-deep pipeline, VPCs a full window
            # apart no longer overlap: the older one has drained.
            if index - prev_index >= self.hazard_window:
                continue
            kinds = []
            if any(
                _overlap(r, w) for r in reads for w in prev_writes
            ):
                kinds.append("RAW")
            if any(
                _overlap(w, r) for w in writes for r in prev_reads
            ):
                kinds.append("WAR")
            if any(
                _overlap(w, pw) for w in writes for pw in prev_writes
            ):
                kinds.append("WAW")
            if kinds:
                yield make_diagnostic(
                    "SPV004",
                    f"vpc #{index}",
                    f"{'/'.join(kinds)} hazard with compute vpc "
                    f"#{prev_index} ({index - prev_index} apart, "
                    f"pipeline depth {self.hazard_window})",
                    index=index,
                )

    def _check_operand_overwrite(self, write: _Interval, index: int):
        start, end = write
        pos = bisect.bisect_right(self._operand_starts, start)
        # The span just before `pos` may straddle `start`.
        for span_start, span_end, name in self._operand_spans[
            max(0, pos - 1):
        ]:
            if span_start >= end:
                break
            if _overlap((start, end), (span_start, span_end)):
                yield make_diagnostic(
                    "SPV005",
                    f"vpc #{index}",
                    f"TRAN destination [{start}, {end}) overwrites "
                    f"placed rows of operand matrix {name!r} "
                    f"([{span_start}, {span_end}))",
                    index=index,
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _placed_spans(
        plan: "PlacementPlan", include_results: bool
    ) -> List[Tuple[int, int, str]]:
        """(start, end, matrix) spans of placed row slices.

        With ``include_results`` False, only operand-set matrices (and
        their mirrors) are listed — the data a move-VPC must never
        overwrite.
        """
        spans: List[Tuple[int, int, str]] = []
        for handle in plan.matrices.values():
            stack = [handle]
            if handle.mirror is not None:
                stack.append(handle.mirror)
            for item in stack:
                if item.result_set and not include_results:
                    continue
                for slices in item.rows_placement:
                    for piece in slices:
                        spans.append(
                            (
                                piece.address,
                                piece.address + piece.length,
                                item.name,
                            )
                        )
        return spans

    def _check_plan(self, plan: "PlacementPlan"):
        """SPV006: no two row slices may claim the same words."""
        if not self._enabled("SPV006"):
            return
        by_subarray: Dict[
            Tuple[int, int], List[Tuple[int, int, str]]
        ] = {}
        for handle in plan.matrices.values():
            stack = [handle]
            if handle.mirror is not None:
                stack.append(handle.mirror)
            for item in stack:
                for slices in item.rows_placement:
                    for piece in slices:
                        by_subarray.setdefault(
                            piece.subarray_key, []
                        ).append(
                            (
                                piece.address,
                                piece.address + piece.length,
                                item.name,
                            )
                        )
        for key, spans in sorted(by_subarray.items()):
            spans.sort()
            for (s0, e0, n0), (s1, e1, n1) in zip(spans, spans[1:]):
                if s1 < e0:
                    yield make_diagnostic(
                        "SPV006",
                        f"placement {key}",
                        f"matrices {n0!r} and {n1!r} both claim words "
                        f"[{s1}, {min(e0, e1)}) of subarray {key}",
                    )


class StreamingTraceVerifier:
    """Per-chunk verification with whole-trace-identical findings.

    The streamed compile/execute pipeline verifies each
    :class:`~repro.isa.columnar.ColumnarTrace` chunk before it
    executes.  This wrapper keeps the cross-chunk state a whole-trace
    :meth:`TraceVerifier.verify` pass would have had — one report, one
    ``max_diagnostics`` budget, the global command index, and the
    SPV004 hazard ring — so the merged findings after :meth:`finish`
    are exactly (same diagnostics, same order, same suppressed count)
    what one whole-trace ``verify``/``verify_columnar`` call over the
    concatenated chunks produces.

    Plan-level diagnostics (SPV005 placement spans are per-VPC; SPV006
    double booking is plan-only) are emitted once, up front, matching
    the whole-trace pass's plan-first ordering.  When the wrapped
    verifier's rule set is within the vectorized subset
    ({SPV001, SPV007}), each chunk is scanned with the bulk array fast
    path, so the streamed pre-execution gate costs the same few array
    comparisons per chunk as the phased gate.
    """

    def __init__(
        self, verifier: TraceVerifier, subject: str = "trace"
    ) -> None:
        self.verifier = verifier
        self.report = VerifyReport(subject=subject)
        self._suppressed = [0]
        self._emit = verifier._make_emit(self.report, self._suppressed)
        self.offset = 0
        self._recent: List[
            Tuple[int, List[_Interval], List[_Interval]]
        ] = []
        self._finished = False
        self._fast = verifier.rules is not None and verifier.rules <= {
            "SPV001",
            "SPV007",
        }
        if verifier.plan is not None:
            for diagnostic in verifier._check_plan(verifier.plan):
                self._emit(diagnostic)
        self.report.suppressed = self._suppressed[0]

    def feed(self, cols) -> VerifyReport:
        """Verify the next chunk; returns the (running) report.

        The report accumulates across chunks, so ``feed(...).ok()``
        fails as soon as any chunk (or the plan) produced an error —
        the streamed executor uses that to stop before executing a bad
        chunk.
        """
        if self._finished:
            raise RuntimeError("verification already finished")
        if self._fast:
            self.verifier._scan_columnar_fast(cols, self._emit, self.offset)
        else:
            self._recent = self.verifier._scan_vpcs(
                cols, self._emit, self.offset, self._recent
            )
        self.offset += len(cols)
        self.report.suppressed = self._suppressed[0]
        return self.report

    def finish(self) -> VerifyReport:
        """Seal the pass and return the merged report."""
        self._finished = True
        self.report.suppressed = self._suppressed[0]
        return self.report


def verify_trace(
    trace,
    geometry: Optional[DeviceGeometry] = None,
    plan: Optional["PlacementPlan"] = None,
    hazard_window: int = DEFAULT_HAZARD_WINDOW,
    rules: Optional[Sequence[str]] = None,
    subject: str = "trace",
    bus: Optional["RMBusConfig"] = None,
) -> VerifyReport:
    """One-shot convenience wrapper around :class:`TraceVerifier`."""
    verifier = TraceVerifier(
        geometry=geometry,
        plan=plan,
        hazard_window=hazard_window,
        rules=rules,
        bus=bus,
    )
    return verifier.verify(trace, subject=subject)
