"""Typed diagnostics shared by the trace verifier and the repo linter.

Every check emits :class:`Diagnostic` objects carrying a stable rule ID
(``SPV0xx`` for trace/program rules, ``SPL1xx`` for repository lint
rules), a severity, a location (a trace index or a ``file:line``), and a
one-line fix hint.  A :class:`VerifyReport` aggregates them and decides
pass/fail, optionally promoting warnings to errors (``--strict``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class Severity(enum.Enum):
    """Diagnostic severity; strict mode treats WARNING as ERROR."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Rule:
    """One entry of the rule catalogue.

    Attributes:
        rule_id: stable identifier ("SPV001", "SPL104", ...).
        title: short name of the invariant the rule guards.
        severity: default severity of violations.
        hint: one-line fix suggestion attached to every diagnostic.
    """

    rule_id: str
    title: str
    severity: Severity
    hint: str


#: Trace/program static-analysis rules (the ``check`` half).
TRACE_RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "SPV001",
            "address range out of device bounds",
            Severity.ERROR,
            "clamp the operand to the device word space; the workload "
            "generator placed data past the last subarray",
        ),
        Rule(
            "SPV002",
            "operand range overflows its subarray",
            Severity.WARNING,
            "split the vector into per-subarray slices (section IV-C "
            "slicing); a VPC operand must live in one subarray",
        ),
        Rule(
            "SPV003",
            "source/destination ranges overlap within one VPC",
            Severity.ERROR,
            "stage the result in scratch words first; overlapping "
            "src/des is undefined per Table II",
        ),
        Rule(
            "SPV004",
            "data hazard between pipelined compute VPCs",
            Severity.WARNING,
            "separate the dependent VPCs by at least the pipeline "
            "window (or an intervening TRAN that drains the RM bus)",
        ),
        Rule(
            "SPV005",
            "TRAN writes into placed operand data",
            Severity.ERROR,
            "move-VPC destinations must target scratch or result-set "
            "rows; rerun placement with disjoint result sets",
        ),
        Rule(
            "SPV006",
            "placement double-books a subarray row slice",
            Severity.ERROR,
            "two matrices claim the same words of one (bank, subarray); "
            "the placer's cursors are inconsistent",
        ),
        Rule(
            "SPV007",
            "commanded shift exceeds the bounded segment length",
            Severity.ERROR,
            "a transfer longer than one RM-bus segment cannot be "
            "guard-checked per hop (the precondition of shift-fault "
            "recovery); split the VPC into per-segment chunks",
        ),
    )
}

#: Repository-invariant lint rules (the ``lint`` half).
LINT_RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "SPL101",
            "float equality in timing/energy accounting",
            Severity.ERROR,
            "compare accumulated ns/pJ with math.isclose or an explicit "
            "tolerance, never with == / !=",
        ),
        Rule(
            "SPL102",
            "nanowire/subarray state mutated outside repro.core/repro.rm",
            Severity.ERROR,
            "call the device model's methods instead of poking its "
            "attributes from a higher layer",
        ),
        Rule(
            "SPL103",
            "frozen config dataclass without __post_init__ validation",
            Severity.ERROR,
            "add a __post_init__ that rejects out-of-range fields; every "
            "*Config dataclass is a user-facing input surface",
        ),
        Rule(
            "SPL104",
            "bare assert used for input validation",
            Severity.ERROR,
            "raise ValueError/TypeError instead; asserts vanish under "
            "python -O",
        ),
    )
}

ALL_RULES: Dict[str, Rule] = {**TRACE_RULES, **LINT_RULES}


@dataclass(frozen=True)
class Diagnostic:
    """One reported violation.

    Attributes:
        rule_id: catalogue identifier.
        severity: effective severity (catalogue default unless a caller
            overrides it).
        location: where — ``"vpc #12"`` for trace rules, ``"path:line"``
            for lint rules, ``"placement"`` for plan-level rules.
        message: what went wrong, with concrete addresses/names.
        hint: one-line fix suggestion.
        index: trace position for trace rules (None otherwise).
    """

    rule_id: str
    severity: Severity
    location: str
    message: str
    hint: str = ""
    index: Optional[int] = None

    def render(self) -> str:
        tag = self.severity.value
        line = f"{self.rule_id} {tag}: {self.location}: {self.message}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line


def make_diagnostic(
    rule_id: str,
    location: str,
    message: str,
    index: Optional[int] = None,
) -> Diagnostic:
    """Build a diagnostic from the catalogue entry for ``rule_id``."""
    rule = ALL_RULES[rule_id]
    return Diagnostic(
        rule_id=rule_id,
        severity=rule.severity,
        location=location,
        message=message,
        hint=rule.hint,
        index=index,
    )


@dataclass
class VerifyReport:
    """All diagnostics of one verification/lint run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: What was analysed ("trace gemm", "src/repro", ...).
    subject: str = ""
    #: Findings dropped after the verifier's recording cap was hit.
    suppressed: int = 0

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity is Severity.ERROR
        ]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity is Severity.WARNING
        ]

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def rule_ids(self) -> List[str]:
        """Distinct rule IDs present, in first-seen order."""
        seen: Dict[str, None] = {}
        for diagnostic in self.diagnostics:
            seen.setdefault(diagnostic.rule_id, None)
        return list(seen)

    def ok(self, strict: bool = False) -> bool:
        """Whether the run passes (strict promotes warnings to errors)."""
        if strict:
            return not self.diagnostics
        return not self.errors

    def render(self, strict: bool = False) -> str:
        """Human-readable multi-line summary."""
        lines = [d.render() for d in self.diagnostics]
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        verdict = "PASS" if self.ok(strict) else "FAIL"
        strict_note = " (strict)" if strict else ""
        summary = (
            f"{self.subject or 'verification'}: {verdict}{strict_note} — "
            f"{n_err} error(s), {n_warn} warning(s)"
        )
        if self.suppressed:
            summary += f" (+{self.suppressed} suppressed)"
        lines.append(summary)
        return "\n".join(lines)
