"""Typed diagnostics shared by the trace verifier and the repo linter.

Every check emits :class:`Diagnostic` objects carrying a stable rule ID
(``SPV0xx`` for trace/program rules, ``SPL1xx`` for repository lint
rules), a severity, a location (a trace index or a ``file:line``), and a
one-line fix hint.  A :class:`VerifyReport` aggregates them and decides
pass/fail, optionally promoting warnings to errors (``--strict``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


class Severity(enum.Enum):
    """Diagnostic severity; strict mode treats WARNING as ERROR.

    INFO marks optimisation hints (e.g. SPV012 redundant copy): they are
    reported and serialised like any other finding but never fail a
    run, strict or not.
    """

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Rule:
    """One entry of the rule catalogue.

    Attributes:
        rule_id: stable identifier ("SPV001", "SPL104", ...).
        title: short name of the invariant the rule guards.
        severity: default severity of violations.
        hint: one-line fix suggestion attached to every diagnostic.
    """

    rule_id: str
    title: str
    severity: Severity
    hint: str


#: Trace/program static-analysis rules (the ``check`` half).
TRACE_RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "SPV001",
            "address range out of device bounds",
            Severity.ERROR,
            "clamp the operand to the device word space; the workload "
            "generator placed data past the last subarray",
        ),
        Rule(
            "SPV002",
            "operand range overflows its subarray",
            Severity.WARNING,
            "split the vector into per-subarray slices (section IV-C "
            "slicing); a VPC operand must live in one subarray",
        ),
        Rule(
            "SPV003",
            "source/destination ranges overlap within one VPC",
            Severity.ERROR,
            "stage the result in scratch words first; overlapping "
            "src/des is undefined per Table II",
        ),
        Rule(
            "SPV004",
            "data hazard between pipelined compute VPCs",
            Severity.WARNING,
            "separate the dependent VPCs by at least the pipeline "
            "window (or an intervening TRAN that drains the RM bus)",
        ),
        Rule(
            "SPV005",
            "TRAN writes into placed operand data",
            Severity.ERROR,
            "move-VPC destinations must target scratch or result-set "
            "rows; rerun placement with disjoint result sets",
        ),
        Rule(
            "SPV006",
            "placement double-books a subarray row slice",
            Severity.ERROR,
            "two matrices claim the same words of one (bank, subarray); "
            "the placer's cursors are inconsistent",
        ),
        Rule(
            "SPV007",
            "commanded shift exceeds the bounded segment length",
            Severity.ERROR,
            "a transfer longer than one RM-bus segment cannot be "
            "guard-checked per hop (the precondition of shift-fault "
            "recovery); split the VPC into per-segment chunks",
        ),
        Rule(
            "SPV008",
            "read of words with no prior writer or placement init",
            Severity.ERROR,
            "the operand reads nanowire state nothing initialised; "
            "materialize the matrix (placement init) or emit the "
            "producing VPC before the consumer",
        ),
        Rule(
            "SPV009",
            "dead store: written words never read before overwrite/end",
            Severity.WARNING,
            "the stored value is unobservable; drop the VPC or add the "
            "consumer that was meant to read it",
        ),
        Rule(
            "SPV010",
            "schedule-aware race on unserialised word accesses",
            Severity.ERROR,
            "two VPCs touch the same words through subarrays neither "
            "acquires, so no busy-until edge orders them; keep each "
            "operand inside the subarray its VPC serialises on",
        ),
        Rule(
            "SPV011",
            "scratch-slot leak: staged words never consumed",
            Severity.WARNING,
            "a scratch write is neither read nor recycled before "
            "end-of-trace; recycle the slot or wire its consumer",
        ),
        Rule(
            "SPV012",
            "redundant copy: source bytes already resident at dest",
            Severity.INFO,
            "an identical TRAN already ran and neither range was "
            "written since; drop the repeat copy",
        ),
    )
}

#: Rules computed by the whole-trace dataflow pass (``check --deep``),
#: not by the per-VPC :class:`~repro.verify.trace_verifier.TraceVerifier`
#: walk.
DATAFLOW_RULES = frozenset(
    {"SPV008", "SPV009", "SPV010", "SPV011", "SPV012"}
)

#: Repository-invariant lint rules (the ``lint`` half).
LINT_RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "SPL101",
            "float equality in timing/energy accounting",
            Severity.ERROR,
            "compare accumulated ns/pJ with math.isclose or an explicit "
            "tolerance, never with == / !=",
        ),
        Rule(
            "SPL102",
            "nanowire/subarray state mutated outside repro.core/repro.rm",
            Severity.ERROR,
            "call the device model's methods instead of poking its "
            "attributes from a higher layer",
        ),
        Rule(
            "SPL103",
            "frozen config dataclass without __post_init__ validation",
            Severity.ERROR,
            "add a __post_init__ that rejects out-of-range fields; every "
            "*Config dataclass is a user-facing input surface",
        ),
        Rule(
            "SPL104",
            "bare assert used for input validation",
            Severity.ERROR,
            "raise ValueError/TypeError instead; asserts vanish under "
            "python -O",
        ),
    )
}

ALL_RULES: Dict[str, Rule] = {**TRACE_RULES, **LINT_RULES}


def validate_rule_ids(rules, catalogue=None):
    """Normalise a rule-ID selection to a frozenset, rejecting typos.

    ``None`` (meaning "all rules") passes through.  Any ID absent from
    ``catalogue`` (default: every known rule) raises ``ValueError``
    naming the unknown IDs — a silent no-match would disable checks
    without warning.
    """
    if rules is None:
        return None
    known = catalogue if catalogue is not None else ALL_RULES
    selected = frozenset(rules)
    unknown = sorted(selected - set(known))
    if unknown:
        raise ValueError(
            f"unknown rule ID(s): {', '.join(unknown)}; known rules: "
            f"{', '.join(sorted(known))}"
        )
    return selected


@dataclass(frozen=True)
class Diagnostic:
    """One reported violation.

    Attributes:
        rule_id: catalogue identifier.
        severity: effective severity (catalogue default unless a caller
            overrides it).
        location: where — ``"vpc #12"`` for trace rules, ``"path:line"``
            for lint rules, ``"placement"`` for plan-level rules.
        message: what went wrong, with concrete addresses/names.
        hint: one-line fix suggestion.
        index: trace position for trace rules (None otherwise).
    """

    rule_id: str
    severity: Severity
    location: str
    message: str
    hint: str = ""
    index: Optional[int] = None

    def render(self) -> str:
        tag = self.severity.value
        line = f"{self.rule_id} {tag}: {self.location}: {self.message}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line

    def to_dict(self, subject: str = "") -> Dict[str, object]:
        """Stable machine-readable form (the ``--json`` schema).

        Keys (all always present): ``rule``, ``severity``, ``subject``,
        ``location``, ``index`` (trace position or null), ``offset``
        (byte offset of the VPC record in the binary trace encoding, or
        null), ``line`` (source line for lint rules, or null),
        ``message``, ``hint``.
        """
        offset: Optional[int] = None
        if self.index is not None and self.index >= 0:
            from repro.isa.columnar import binary_record_offset

            offset = binary_record_offset(self.index)
        line: Optional[int] = None
        path, sep, tail = self.location.rpartition(":")
        if sep and path and tail.isdigit():
            line = int(tail)
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "subject": subject,
            "location": self.location,
            "index": self.index,
            "offset": offset,
            "line": line,
            "message": self.message,
            "hint": self.hint,
        }


def make_diagnostic(
    rule_id: str,
    location: str,
    message: str,
    index: Optional[int] = None,
) -> Diagnostic:
    """Build a diagnostic from the catalogue entry for ``rule_id``."""
    rule = ALL_RULES[rule_id]
    return Diagnostic(
        rule_id=rule_id,
        severity=rule.severity,
        location=location,
        message=message,
        hint=rule.hint,
        index=index,
    )


@dataclass
class VerifyReport:
    """All diagnostics of one verification/lint run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: What was analysed ("trace gemm", "src/repro", ...).
    subject: str = ""
    #: Findings dropped after the verifier's recording cap was hit.
    suppressed: int = 0

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity is Severity.ERROR
        ]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity is Severity.WARNING
        ]

    @property
    def infos(self) -> List[Diagnostic]:
        return [
            d for d in self.diagnostics if d.severity is Severity.INFO
        ]

    def by_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def rule_ids(self) -> List[str]:
        """Distinct rule IDs present, in first-seen order."""
        seen: Dict[str, None] = {}
        for diagnostic in self.diagnostics:
            seen.setdefault(diagnostic.rule_id, None)
        return list(seen)

    def ok(self, strict: bool = False) -> bool:
        """Whether the run passes (strict promotes warnings to errors).

        INFO findings are hints and never fail, even under strict.
        """
        if strict:
            return not self.errors and not self.warnings
        return not self.errors

    def render(self, strict: bool = False) -> str:
        """Human-readable multi-line summary."""
        lines = [d.render() for d in self.diagnostics]
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        n_info = len(self.infos)
        verdict = "PASS" if self.ok(strict) else "FAIL"
        strict_note = " (strict)" if strict else ""
        summary = (
            f"{self.subject or 'verification'}: {verdict}{strict_note} — "
            f"{n_err} error(s), {n_warn} warning(s)"
        )
        if n_info:
            summary += f", {n_info} hint(s)"
        if self.suppressed:
            summary += f" (+{self.suppressed} suppressed)"
        lines.append(summary)
        return "\n".join(lines)
