"""Static verification: trace/program analysis and repository lint.

Two halves, sharing one diagnostic vocabulary:

* :mod:`repro.verify.trace_verifier` — pre-execution verification of VPC
  traces and placement plans (``SPV`` rules): operand bounds, subarray
  capacity, Table II src/des overlap, pipeline data hazards, operand
  overwrites, and placement double-booking.  Runs in O(#VPC), so it is
  wired in front of every event-mode ``cycle_sim`` run and exposed as
  ``repro-streampim check``.
* :mod:`repro.verify.lint` — AST lint over the simulator source
  (``SPL`` rules), exposed as ``repro-streampim lint`` and gating CI.
* :mod:`repro.verify.dataflow` / :mod:`repro.verify.races` — whole-trace
  dataflow analysis over columnar traces (``SPV008``–``SPV012``): a
  def-use index seeded from the placement plan, plus uninitialised-read,
  dead-store, schedule-aware-race, scratch-leak and redundant-copy
  rules.  Exposed as ``repro-streampim check --deep``.
"""

from repro.verify.dataflow import DataflowAnalyzer, DataflowIndex
from repro.verify.diagnostics import (
    ALL_RULES,
    DATAFLOW_RULES,
    Diagnostic,
    LINT_RULES,
    Rule,
    Severity,
    TRACE_RULES,
    VerifyReport,
    make_diagnostic,
    validate_rule_ids,
)
from repro.verify.lint import lint_paths, lint_source
from repro.verify.trace_verifier import (
    DEFAULT_HAZARD_WINDOW,
    StreamingTraceVerifier,
    TraceVerificationError,
    TraceVerifier,
    verify_trace,
)

__all__ = [
    "ALL_RULES",
    "DATAFLOW_RULES",
    "DataflowAnalyzer",
    "DataflowIndex",
    "Diagnostic",
    "LINT_RULES",
    "Rule",
    "Severity",
    "TRACE_RULES",
    "VerifyReport",
    "make_diagnostic",
    "validate_rule_ids",
    "lint_paths",
    "lint_source",
    "DEFAULT_HAZARD_WINDOW",
    "StreamingTraceVerifier",
    "TraceVerificationError",
    "TraceVerifier",
    "verify_trace",
]
